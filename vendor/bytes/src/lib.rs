//! Minimal, self-contained stand-in for the `bytes` crate.
//!
//! Implements the surface the gluon wire format uses: an owned growable
//! [`BytesMut`], a cheaply-cloneable immutable [`Bytes`] view
//! (`Arc`-backed), and the [`Buf`]/[`BufMut`] traits with little-endian
//! `u32`/`f32` accessors.

use std::ops::Range;
use std::sync::Arc;

/// Write side: append-only byte buffer.
#[derive(Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Resizes to `new_len` bytes, filling any growth with `value`
    /// (mirrors `bytes::BytesMut::resize`).
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Mutable view of the written bytes (the real crate offers this via
    /// `DerefMut<Target = [u8]>`); used for bulk in-place encoding.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Freezes into an immutable, cheaply-cloneable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.buf),
            start: 0,
            end: usize::MAX, // resolved lazily against data.len()
        }
        .normalized()
    }
}

/// Read side: immutable shared byte buffer (a view into `Arc<Vec<u8>>`).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn normalized(mut self) -> Self {
        if self.end == usize::MAX {
            self.end = self.data.len();
        }
        self
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Sub-view over `range` (relative to this view).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice {range:?} out of bounds for buffer of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies `src` into a new owned buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from(src.to_vec())
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.start + n <= self.end, "buffer underflow");
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        let end = buf.len();
        Bytes {
            data: Arc::new(buf),
            start: 0,
            end,
        }
    }
}

/// Sequential little-endian reads that advance a cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// True if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Reads a little-endian `u32`, advancing 4 bytes.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `f32`, advancing 4 bytes.
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32_le(&mut self) -> u32 {
        let b = self.take(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Sequential little-endian appends.
pub trait BufMut {
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `f32` (bit-preserving, including NaN).
    fn put_f32_le(&mut self, v: f32);
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut m = BytesMut::new();
        m.reserve(12);
        m.put_u32_le(7);
        m.put_f32_le(-2.5);
        m.put_f32_le(f32::NAN);
        assert_eq!(m.len(), 12);
        let b = m.freeze();
        assert_eq!(b.len(), 12);
        let mut r = b.clone();
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_f32_le(), -2.5);
        assert!(r.get_f32_le().is_nan());
        assert!(!r.has_remaining());
        // Original view unaffected by the cursor on the clone.
        assert_eq!(b.len(), 12);
        let s = b.slice(4..8);
        assert_eq!(s.len(), 4);
        let mut s2 = s;
        assert_eq!(s2.get_f32_le(), -2.5);
    }

    #[test]
    fn from_vec_and_put_slice() {
        let mut m = BytesMut::new();
        m.put_slice(&[1, 2, 3]);
        m.put_slice(&[]);
        assert_eq!(m.freeze().as_slice(), &[1, 2, 3]);
        let b = Bytes::from(vec![9, 8]);
        assert_eq!(b.as_slice(), &[9, 8]);
        assert_eq!(Bytes::copy_from_slice(b.as_slice()).as_slice(), &[9, 8]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = BytesMut::new().freeze();
        let _ = b.slice(0..1);
    }
}
