//! Figure 6 — "Total accuracy of GraphWord2Vec after each epoch on
//! 1-billion dataset for shared-memory (SM) on 1 host and distributed
//! execution on 32 hosts using Model Combiner (MC) and averaging (AVG)"
//! at learning rates 0.025–0.8.
//!
//! Expected shape: SM and MC(0.025) overlap and converge high;
//! AVG(0.025) converges visibly slower (mini-batch effect); AVG at the
//! 32×-scaled learning rate 0.8 stays at ~0 (divergence).

use gw2v_bench::{
    bench_params, epochs_from_env, obs_init, prepare, scale_from_env, write_json_run,
};
use gw2v_combiner::CombinerKind;
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_core::trainer_seq::SequentialTrainer;
use gw2v_corpus::datasets::{DatasetPreset, Scale};
use gw2v_eval::analogy::evaluate;
use gw2v_util::table::{Align, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    label: String,
    reduction: String,
    learning_rate: f32,
    total_accuracy_per_epoch: Vec<f64>,
}

fn main() {
    obs_init();
    let scale = scale_from_env(Scale::Small);
    let epochs = epochs_from_env(16);
    let hosts = 32;
    let preset = DatasetPreset::by_name("1-billion").expect("preset");
    println!(
        "Figure 6: total accuracy per epoch on {} — SM vs 32-host AVG (lr sweep) vs MC \
         (scale {scale:?}, {epochs} epochs)\n",
        preset.paper_name
    );
    let d = prepare(preset, scale, 42);
    let mut series: Vec<Series> = Vec::new();

    // SM: the sequential shared-memory baseline.
    eprintln!("[fig6] SM (sequential, lr 0.025) ...");
    let params = bench_params(scale, epochs, 1);
    let mut acc = Vec::new();
    SequentialTrainer::new(params.clone()).train_with_callback(&d.corpus, &d.vocab, |_, m| {
        acc.push(evaluate(m, &d.vocab, &d.synth.analogies).total());
    });
    series.push(Series {
        label: "SM lr=0.025".into(),
        reduction: "SM".into(),
        learning_rate: 0.025,
        total_accuracy_per_epoch: acc,
    });

    // Distributed runs: MC at the base lr, AVG across the lr sweep.
    let mut dist_runs: Vec<(CombinerKind, f32)> = vec![(CombinerKind::ModelCombiner, 0.025)];
    for lr in [0.025f32, 0.05, 0.1, 0.2, 0.4, 0.8] {
        dist_runs.push((CombinerKind::Avg, lr));
    }
    for (combiner, lr) in dist_runs {
        eprintln!("[fig6] {} lr={} on {hosts} hosts ...", combiner.label(), lr);
        let mut params = bench_params(scale, epochs, 1);
        params.alpha = lr;
        let mut config = DistConfig::paper_default(hosts);
        config.combiner = combiner;
        let mut acc = Vec::new();
        DistributedTrainer::new(params, config).train_with_callback(&d.corpus, &d.vocab, |_, m| {
            acc.push(evaluate(m, &d.vocab, &d.synth.analogies).total());
        });
        series.push(Series {
            label: format!("{} lr={lr}", combiner.label()),
            reduction: combiner.label().into(),
            learning_rate: lr,
            total_accuracy_per_epoch: acc,
        });
    }

    // Render as a table: one column per series, one row per epoch.
    let mut header = vec!["Epoch".to_owned()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let aligns = vec![Align::Right; header.len()];
    let mut table = Table::new(header).with_aligns(&aligns);
    for e in 0..epochs {
        let mut row = vec![format!("{}", e + 1)];
        for s in &series {
            row.push(
                s.total_accuracy_per_epoch
                    .get(e)
                    .map_or("-".into(), |a| format!("{a:.1}")),
            );
        }
        table.add_row(row);
    }
    print!("{table}");
    println!("\nShape check: MC(0.025) tracks SM; AVG(0.025) lags; AVG(0.8) ~ 0 (diverged).");
    write_json_run("fig6", scale, 1, &series);
}
