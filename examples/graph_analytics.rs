//! The substrate as a general graph-analytics framework: run the classic
//! vertex programs (BFS, SSSP, connected components, PageRank) on a
//! partitioned power-law graph — the D-Galois-style workload of the
//! paper's §2.4 — and inspect the master/mirror communication each one
//! generates.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use graph_word2vec::graph::algos::cc::component_count;
use graph_word2vec::graph::algos::{
    bfs_distributed, cc_distributed, pagerank_distributed, sssp_distributed,
};
use graph_word2vec::graph::gen::{rmat, RMAT_GRAPH500};
use graph_word2vec::graph::partition::partition_blocked;
use graph_word2vec::util::table::{fmt_bytes, Align, Table};

fn main() {
    // A Graph500-style R-MAT graph: 4096 nodes, 32K edges, power-law.
    let g = rmat(12, 8, 2024, RMAT_GRAPH500);
    println!(
        "graph: {} nodes, {} edges (R-MAT scale 12)\n",
        g.n_nodes(),
        g.n_edges()
    );

    let hosts = 8;
    let parted = partition_blocked(&g, hosts);
    parted.verify();
    println!(
        "partitioned over {hosts} hosts, replication factor {:.2}\n",
        parted.replication_factor()
    );

    let mut table = Table::new(vec![
        "algorithm",
        "result",
        "BSP rounds",
        "reduce msgs",
        "broadcast",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    let (levels, stats) = bfs_distributed(&parted, 0);
    let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
    table.add_row(vec![
        "bfs".to_owned(),
        format!("{reached} reached from node 0"),
        format!("{}", stats.rounds),
        format!("{}", stats.reduce_msgs),
        fmt_bytes(stats.broadcast_bytes),
    ]);

    let (dist, stats) = sssp_distributed(&parted, 0);
    let max_finite = dist
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    table.add_row(vec![
        "sssp".to_owned(),
        format!("max finite distance {max_finite}"),
        format!("{}", stats.rounds),
        format!("{}", stats.reduce_msgs),
        fmt_bytes(stats.broadcast_bytes),
    ]);

    let (labels, stats) = cc_distributed(&parted);
    table.add_row(vec![
        "connected components".to_owned(),
        format!("{} components", component_count(&labels)),
        format!("{}", stats.rounds),
        format!("{}", stats.reduce_msgs),
        fmt_bytes(stats.broadcast_bytes),
    ]);

    let (ranks, stats) = pagerank_distributed(&parted, 20);
    let top = ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, r)| format!("node {i} (rank {r:.5})"))
        .unwrap_or_default();
    table.add_row(vec![
        "pagerank (20 iters)".to_owned(),
        format!("top: {top}"),
        format!("{}", stats.rounds),
        format!("{}", stats.reduce_msgs),
        fmt_bytes(stats.broadcast_bytes),
    ]);

    print!("{table}");
    println!(
        "\nThe same partition + BSP + reduce/broadcast machinery drives \
         GraphWord2Vec's training (see distributed_scaling.rs)."
    );
}
