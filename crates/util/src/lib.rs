//! # gw2v-util
//!
//! Shared low-level utilities for the GraphWord2Vec workspace.
//!
//! Everything in this crate is dependency-light and deterministic:
//!
//! * [`rng`] — small, fast, *seedable and cloneable* random number
//!   generators ([`rng::SplitMix64`], [`rng::Pcg32`], [`rng::Xoshiro256`]).
//!   Determinism is load-bearing for the whole system: the PullModel
//!   inspection phase replays the exact RNG stream of the upcoming
//!   compute round, and tests pin distributed runs against sequential
//!   references bit-for-bit.
//! * [`bitvec`] — a fixed-capacity bit vector used by the Gluon-style
//!   communication substrate to track which graph nodes were touched in a
//!   synchronization round.
//! * [`crc32`] — CRC-32 (IEEE) checksums guarding wire frames and training
//!   checkpoints against corruption.
//! * [`fvec`] — `f32` vector kernels (dot, axpy, scale, norm, fused SGNS
//!   gradient step) that the SGNS inner loop is built from.
//! * [`simd`] — the runtime-dispatched backends behind [`fvec`]:
//!   AVX2+FMA where the host supports it, the portable scalar reference
//!   otherwise (or when `GW2V_FORCE_SCALAR=1`).
//! * [`stats`] — online statistics and summary helpers (mean, stddev,
//!   geometric mean) used by the benchmark harness.
//! * [`timer`] — phase timers that accumulate wall-clock time per named
//!   phase (computation vs. communication breakdowns, Figure 9).
//! * [`table`] — a tiny fixed-width table printer for harness output.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bitvec;
pub mod crc32;
pub mod fvec;
pub mod rng;
pub mod simd;
pub mod stats;
pub mod table;
pub mod timer;

pub use bitvec::BitVec;
pub use rng::{Pcg32, Rng64, SplitMix64, Xoshiro256};
pub use stats::OnlineStats;
pub use timer::PhaseTimer;
