//! Minimal, self-contained stand-in for the `serde` crate.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the narrow serialization surface it actually uses: a
//! self-describing [`Value`] tree, [`Serialize`]/[`Deserialize`] traits
//! expressed directly in terms of that tree, and derive macros (via the
//! companion `serde_derive` stub) for plain structs with named fields and
//! field-less enums, honouring `#[serde(skip)]`. The JSON text format lives
//! in the `serde_json` stub.
//!
//! This is intentionally *not* API-compatible with real serde beyond the
//! pieces used here. If the workspace ever gains registry access, dropping
//! these vendored crates and restoring the upstream versions requires no
//! source changes in the workspace crates.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the serde data model, flattened to the
/// variants this workspace needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating point (f32 widened to f64).
    Float(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples).
    Seq(Vec<Value>),
    /// Key-value map with string keys; insertion-ordered.
    Map(Vec<(String, Value)>),
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Looks up a named field, erroring if `self` is not a map or lacks it.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected map while reading field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Numeric view, accepting any of the integer/float variants.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::UInt(x) => Ok(x as f64),
            Value::Int(x) => Ok(x as f64),
            Value::Float(x) => Ok(x),
            // JSON has no NaN/infinity literal; the writer emits null.
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }

    /// Unsigned integer view.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::UInt(x) => Ok(x),
            Value::Int(x) if x >= 0 => Ok(x as u64),
            Value::Float(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Ok(x as u64),
            ref other => Err(Error::custom(format!(
                "expected unsigned integer, got {other:?}"
            ))),
        }
    }

    /// Signed integer view.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::UInt(x) if x <= i64::MAX as u64 => Ok(x as i64),
            Value::Int(x) => Ok(x),
            Value::Float(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Ok(x as i64),
            ref other => Err(Error::custom(format!("expected integer, got {other:?}"))),
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match *self {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }

    /// Sequence view.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }

    /// Map view.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64()?;
                <$t>::try_from(x)
                    .map_err(|_| Error::custom(format!("{x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i64()?;
                <$t>::try_from(x)
                    .map_err(|_| Error::custom(format!("{x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()?.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq()?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; HashMap iteration order is random.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            <(usize, usize)>::from_value(&(3usize, 9usize).to_value()).unwrap(),
            (3, 9)
        );
    }

    #[test]
    fn missing_field_errors() {
        let v = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert!(v.field("a").is_ok());
        assert!(v.field("b").is_err());
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(
            Option::<u32>::from_value(&Some(5u32).to_value()).unwrap(),
            Some(5)
        );
        assert_eq!(
            Option::<u32>::from_value(&Option::<u32>::None.to_value()).unwrap(),
            None
        );
    }
}
