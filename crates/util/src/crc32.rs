//! CRC-32 (IEEE 802.3) checksums.
//!
//! Used by the fault-tolerance layer to detect payload corruption: the
//! wire frames of the threaded cluster engine and the on-disk training
//! checkpoints both carry a CRC-32 trailer. The IEEE polynomial
//! (`0xEDB88320` reflected) detects **all** single-bit errors and all
//! burst errors up to 32 bits — exactly the corruption model the
//! deterministic fault injector produces — so a checksum match after a
//! fault-free round-trip is a bit-exactness witness, and any injected
//! bit-flip is guaranteed to be noticed.
//!
//! Implementation: the standard byte-at-a-time table method with a
//! compile-time generated 256-entry table. Fast enough for message
//! framing (a few GB/s) without SIMD; checksumming is a per-message
//! cost, not a per-row cost.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table, generated at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 hasher.
///
/// Feed bytes with [`Crc32::update`]; [`Crc32::finish`] yields the same
/// value [`crc32`] computes over the concatenation of all updates.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a hasher in its initial state.
    #[inline]
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorbs `bytes` into the checksum.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the checksum of everything absorbed so far.
    #[inline]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
#[inline]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Standard check values for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let data = b"deterministic fault injection".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut h = Crc32::new();
        h.update(b"abc");
        assert_eq!(h.finish(), h.finish());
    }
}
