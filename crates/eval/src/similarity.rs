//! Word-similarity evaluation.
//!
//! The second standard intrinsic evaluation for embeddings (alongside
//! analogies): how well do model cosine similarities rank word pairs
//! against gold judgments? Real benchmarks (WordSim-353, SimLex-999)
//! are not available offline, so the generator's planted relations
//! provide the gold standard: related pairs (`(aᵢ, bᵢ)` of one
//! category, and words sharing a topic) must outrank random pairs.
//! Reported as a Spearman rank correlation, the metric those benchmarks
//! use.

use crate::analogy::word_similarity;
use gw2v_core::model::Word2VecModel;
use gw2v_corpus::synth::AnalogySet;
use gw2v_corpus::vocab::Vocabulary;
use gw2v_util::rng::{Rng64, SplitMix64, Xoshiro256};
use serde::{Deserialize, Serialize};

/// A scored word pair: gold relatedness vs model cosine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScoredPair {
    /// First word.
    pub a: String,
    /// Second word.
    pub b: String,
    /// Gold relatedness in `[0, 1]`.
    pub gold: f64,
    /// Model cosine similarity.
    pub model: f64,
}

/// Result of a similarity evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimilarityReport {
    /// Spearman rank correlation between gold and model scores.
    pub spearman: f64,
    /// Mean model cosine over related (gold = 1) pairs.
    pub mean_related: f64,
    /// Mean model cosine over random (gold = 0) pairs.
    pub mean_random: f64,
    /// Number of pairs evaluated.
    pub n_pairs: usize,
}

/// Builds a similarity benchmark from a planted analogy suite: each
/// question contributes its related pair `(a, b)` with gold 1.0, and a
/// random vocabulary pair with gold 0.0. Evaluates `model` against it.
pub fn evaluate_similarity(
    model: &Word2VecModel,
    vocab: &Vocabulary,
    set: &AnalogySet,
    seed: u64,
) -> SimilarityReport {
    let mut rng = Xoshiro256::new(SplitMix64::new(seed).derive(0x51));
    let mut pairs: Vec<ScoredPair> = Vec::new();
    for cat in &set.categories {
        for q in &cat.questions {
            if let Some(cos) = word_similarity(model, vocab, &q.a, &q.b) {
                pairs.push(ScoredPair {
                    a: q.a.clone(),
                    b: q.b.clone(),
                    gold: 1.0,
                    model: cos as f64,
                });
            }
            // A random pair as a gold-0 foil.
            let x = rng.index(vocab.len()) as u32;
            let y = rng.index(vocab.len()) as u32;
            if x != y {
                pairs.push(ScoredPair {
                    a: vocab.word_of(x).to_owned(),
                    b: vocab.word_of(y).to_owned(),
                    gold: 0.0,
                    model: word_similarity(model, vocab, vocab.word_of(x), vocab.word_of(y))
                        .unwrap_or(0.0) as f64,
                });
            }
        }
    }
    let gold: Vec<f64> = pairs.iter().map(|p| p.gold).collect();
    let scores: Vec<f64> = pairs.iter().map(|p| p.model).collect();
    let related: Vec<f64> = pairs
        .iter()
        .filter(|p| p.gold > 0.5)
        .map(|p| p.model)
        .collect();
    let random: Vec<f64> = pairs
        .iter()
        .filter(|p| p.gold <= 0.5)
        .map(|p| p.model)
        .collect();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    SimilarityReport {
        spearman: spearman(&gold, &scores),
        mean_related: mean(&related),
        mean_random: mean(&random),
        n_pairs: pairs.len(),
    }
}

/// Spearman rank correlation (average ranks for ties).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    if x.len() < 2 {
        return 0.0;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Average ranks (1-based) with ties sharing their mean rank. Also the
/// backbone of the link-prediction AUC ([`crate::linkpred`]).
pub(crate) fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let z = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but nonlinear transform leaves spearman at 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| f64::exp(*v)).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 1.0, 2.0, 2.0];
        let y = [1.0, 1.0, 2.0, 2.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let flat = [3.0, 3.0, 3.0, 3.0];
        assert_eq!(spearman(&flat, &y), 0.0, "zero variance → 0");
    }

    #[test]
    fn spearman_degenerate_inputs() {
        assert_eq!(spearman(&[], &[]), 0.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_degenerate_inputs() {
        assert!(ranks(&[]).is_empty());
        assert_eq!(ranks(&[7.0]), vec![1.0]);
        assert_eq!(ranks(&[3.0, 3.0, 3.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn empty_analogy_set_yields_empty_report() {
        use gw2v_core::model::Word2VecModel;
        use gw2v_corpus::synth::AnalogySet;
        use gw2v_corpus::vocab::VocabBuilder;
        use gw2v_util::fvec::FlatMatrix;

        let mut b = VocabBuilder::new();
        b.add_sentence(&["a", "b"]);
        let vocab = b.build(1);
        let model = Word2VecModel::from_layers(
            FlatMatrix::zeros(vocab.len(), 4),
            FlatMatrix::zeros(vocab.len(), 4),
        );
        let set = AnalogySet { categories: vec![] };
        let report = evaluate_similarity(&model, &vocab, &set, 3);
        assert_eq!(report.n_pairs, 0);
        assert_eq!(report.spearman, 0.0);
        assert_eq!(report.mean_related, 0.0);
        assert_eq!(report.mean_random, 0.0);
    }
}
