//! Analogy evaluation walkthrough: train distributed with the model
//! combiner, run the 14-category analogical-reasoning suite, and answer
//! a few analogies interactively-style (printed).
//!
//! ```text
//! cargo run --release --example analogy_search
//! ```

use graph_word2vec::core::distributed::{DistConfig, DistributedTrainer};
use graph_word2vec::core::params::Hyperparams;
use graph_word2vec::corpus::datasets::{DatasetPreset, Scale};
use graph_word2vec::corpus::shard::Corpus;
use graph_word2vec::corpus::tokenizer::{sentences_from_text, TokenizerConfig};
use graph_word2vec::corpus::vocab::VocabBuilder;
use graph_word2vec::eval::analogy::evaluate;
use graph_word2vec::eval::knn::EmbeddingIndex;
use graph_word2vec::util::fvec;

fn main() {
    let preset = DatasetPreset::by_name("news").expect("preset exists");
    let synth = preset.generate(Scale::Tiny, 7);
    let tok_cfg = TokenizerConfig::default();
    let mut builder = VocabBuilder::new();
    for s in sentences_from_text(&synth.text, tok_cfg.clone()) {
        builder.add_sentence(&s);
    }
    let vocab = builder.build(1);
    let corpus = Corpus::from_text(&synth.text, &vocab, tok_cfg);

    // Distributed training: 8 hosts, Model Combiner, RepModel-Opt.
    let params = Hyperparams {
        dim: 48,
        negative: 5,
        epochs: 10,
        ..Hyperparams::default()
    };
    println!("training on 8 simulated hosts ...");
    let result =
        DistributedTrainer::new(params, DistConfig::paper_default(8)).train(&corpus, &vocab);
    println!(
        "done: {:.1}s virtual ({:.1}s compute + {:.3}s comm), {} moved\n",
        result.virtual_time(),
        result.compute_time,
        result.comm_time,
        graph_word2vec::util::table::fmt_bytes(result.stats.total_bytes()),
    );

    // Full 14-category report.
    let report = evaluate(&result.model, &vocab, &synth.analogies);
    println!(
        "{:<28} {:>6}  {:>5}/{:<5}",
        "category", "acc%", "ok", "tried"
    );
    for cat in &report.categories {
        println!(
            "{:<28} {:>6.1}  {:>5}/{:<5}",
            cat.name,
            cat.accuracy(),
            cat.correct,
            cat.attempted
        );
    }
    println!(
        "\nsemantic {:.1}%  syntactic {:.1}%  total {:.1}%  (skipped {})",
        report.semantic(),
        report.syntactic(),
        report.total(),
        report.skipped()
    );

    // Answer a few analogies by hand with 3CosAdd.
    let index = EmbeddingIndex::new(&result.model);
    println!("\nsample analogies (a : b :: c : ?):");
    for cat in report.categories.iter().take(2) {
        let Some(q) = synth
            .analogies
            .categories
            .iter()
            .find(|c| c.name == cat.name)
            .and_then(|c| c.questions.first())
        else {
            continue;
        };
        let (Some(a), Some(b), Some(c)) = (vocab.id_of(&q.a), vocab.id_of(&q.b), vocab.id_of(&q.c))
        else {
            continue;
        };
        let mut query = vec![0.0f32; result.model.dim()];
        fvec::sub_into(index.vector(b), index.vector(a), &mut query);
        fvec::add_assign(&mut query, index.vector(c));
        if let Some((best, score)) = index.best(&query, &[a, b, c]) {
            let mark = if vocab.word_of(best) == q.expected {
                "✓"
            } else {
                "✗"
            };
            println!(
                "  {} : {} :: {} : {} (cos {:.3}, expected {}) {}",
                q.a,
                q.b,
                q.c,
                vocab.word_of(best),
                score,
                q.expected,
                mark
            );
        }
    }
}
