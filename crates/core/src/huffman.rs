//! Huffman coding of the vocabulary, for hierarchical softmax.
//!
//! Mikolov et al. (2013) offer hierarchical softmax as the alternative
//! to negative sampling: the output distribution is a binary Huffman
//! tree over the vocabulary, so an update touches `O(log V)` inner-node
//! vectors instead of `1 + negative` word vectors, and frequent words
//! (shorter codes) are cheapest. This module builds the tree exactly as
//! `CreateBinaryTree` in the C implementation: repeatedly merge the two
//! least-frequent nodes; each word's `code` is its root-to-leaf bit path
//! and its `point` list the inner-node ids along the way.

use gw2v_corpus::vocab::Vocabulary;

/// Per-word Huffman code and inner-node path.
#[derive(Clone, Debug, Default)]
pub struct HuffmanCode {
    /// Bits from root to leaf (0 = left/first child, 1 = right).
    pub code: Vec<u8>,
    /// Inner-node indices (into the `syn1` matrix) from root to leaf;
    /// same length as `code`.
    pub point: Vec<u32>,
}

/// The Huffman tree over a vocabulary.
#[derive(Clone, Debug)]
pub struct HuffmanTree {
    codes: Vec<HuffmanCode>,
    n_inner: usize,
}

impl HuffmanTree {
    /// Builds the tree from vocabulary counts (ids must be
    /// frequency-descending, which [`Vocabulary`] guarantees).
    pub fn new(vocab: &Vocabulary) -> Self {
        let v = vocab.len();
        assert!(v >= 2, "Huffman tree needs at least two words");
        // The C algorithm: counts array of size 2V (leaves then inner
        // nodes), two monotone pointers walking inward.
        let mut count: Vec<u64> = Vec::with_capacity(2 * v);
        for id in 0..v as u32 {
            count.push(vocab.count_of(id));
        }
        count.resize(2 * v, u64::MAX);
        let mut parent = vec![0usize; 2 * v];
        let mut binary = vec![0u8; 2 * v];
        // pos1 walks down the (descending-sorted) leaves, pos2 up the
        // created inner nodes.
        let mut pos1 = v as isize - 1;
        let mut pos2 = v as isize;
        for a in 0..v - 1 {
            let mut pick = || -> usize {
                if pos1 >= 0 && count[pos1 as usize] < count[pos2 as usize] {
                    pos1 -= 1;
                    (pos1 + 1) as usize
                } else {
                    pos2 += 1;
                    (pos2 - 1) as usize
                }
            };
            let min1 = pick();
            let min2 = pick();
            let inner = v + a;
            count[inner] = count[min1] + count[min2];
            parent[min1] = inner;
            parent[min2] = inner;
            binary[min2] = 1;
        }
        // Walk each leaf to the root, collecting code and points.
        let root = 2 * v - 2;
        let codes = (0..v)
            .map(|leaf| {
                let mut code = Vec::new();
                let mut point = Vec::new();
                let mut node = leaf;
                while node != root {
                    code.push(binary[node]);
                    point.push((parent[node] - v) as u32);
                    node = parent[node];
                }
                code.reverse();
                point.reverse();
                HuffmanCode { code, point }
            })
            .collect();
        Self {
            codes,
            n_inner: v - 1,
        }
    }

    /// The code of word `w`.
    pub fn code_of(&self, w: u32) -> &HuffmanCode {
        &self.codes[w as usize]
    }

    /// Number of inner nodes (= rows of the `syn1` matrix).
    pub fn n_inner(&self) -> usize {
        self.n_inner
    }

    /// Mean code length weighted by word frequency — the expected work
    /// per output evaluation.
    pub fn expected_code_length(&self, vocab: &Vocabulary) -> f64 {
        let total = vocab.total_words() as f64;
        self.codes
            .iter()
            .enumerate()
            .map(|(id, c)| c.code.len() as f64 * vocab.count_of(id as u32) as f64)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw2v_corpus::vocab::VocabBuilder;

    fn vocab_with(counts: &[u64]) -> Vocabulary {
        let mut b = VocabBuilder::new();
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                b.add_token(&format!("w{i:03}"));
            }
        }
        b.build(1)
    }

    #[test]
    fn codes_are_prefix_free() {
        let vocab = vocab_with(&[50, 30, 20, 10, 5, 3, 2, 1]);
        let tree = HuffmanTree::new(&vocab);
        let codes: Vec<&Vec<u8>> = (0..8).map(|i| &tree.code_of(i).code).collect();
        for i in 0..8 {
            for j in 0..8 {
                if i == j {
                    continue;
                }
                let (a, b) = (codes[i], codes[j]);
                let prefix = a.len() <= b.len() && &b[..a.len()] == a.as_slice();
                assert!(!prefix, "code {i} is a prefix of {j}");
            }
        }
    }

    #[test]
    fn frequent_words_get_shorter_codes() {
        let vocab = vocab_with(&[1000, 500, 100, 50, 10, 5, 2, 1]);
        let tree = HuffmanTree::new(&vocab);
        let len_most = tree.code_of(0).code.len();
        let len_least = tree.code_of(7).code.len();
        assert!(len_most < len_least, "{len_most} vs {len_least}");
    }

    #[test]
    fn optimality_against_entropy() {
        // Huffman expected length is within 1 bit of the entropy.
        let counts = [400u64, 200, 150, 100, 80, 40, 20, 10];
        let vocab = vocab_with(&counts);
        let tree = HuffmanTree::new(&vocab);
        let total: f64 = counts.iter().map(|&c| c as f64).sum();
        let entropy: f64 = counts
            .iter()
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum();
        let expected = tree.expected_code_length(&vocab);
        assert!(expected >= entropy - 1e-9, "{expected} < H {entropy}");
        assert!(expected < entropy + 1.0, "{expected} vs H {entropy}");
    }

    #[test]
    fn points_reference_valid_inner_nodes() {
        let vocab = vocab_with(&[9, 7, 5, 3, 2]);
        let tree = HuffmanTree::new(&vocab);
        assert_eq!(tree.n_inner(), 4);
        for w in 0..5 {
            let c = tree.code_of(w);
            assert_eq!(c.code.len(), c.point.len());
            assert!(!c.code.is_empty());
            for &p in &c.point {
                assert!((p as usize) < tree.n_inner());
            }
            // The first point is always the root (inner id V-2 in C terms
            // — here the last-created inner node, index n_inner-1).
            assert_eq!(c.point[0] as usize, tree.n_inner() - 1);
        }
    }

    #[test]
    fn two_word_vocabulary() {
        let vocab = vocab_with(&[3, 1]);
        let tree = HuffmanTree::new(&vocab);
        assert_eq!(tree.n_inner(), 1);
        assert_eq!(tree.code_of(0).code.len(), 1);
        assert_eq!(tree.code_of(1).code.len(), 1);
        assert_ne!(tree.code_of(0).code[0], tree.code_of(1).code[0]);
    }

    #[test]
    fn kraft_inequality_holds_with_equality() {
        // A full binary tree satisfies Σ 2^{-len} = 1.
        let vocab = vocab_with(&[13, 11, 7, 5, 3, 2, 1]);
        let tree = HuffmanTree::new(&vocab);
        let kraft: f64 = (0..7)
            .map(|w| 2f64.powi(-(tree.code_of(w).code.len() as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-12, "{kraft}");
    }
}
