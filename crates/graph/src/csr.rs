//! Compressed-sparse-row graphs.
//!
//! The standard in-memory representation for graph analytics: node `u`'s
//! out-edges are `targets[offsets[u] .. offsets[u+1]]`, with parallel
//! per-edge data. Node ids are dense `u32`s (the vocabulary id space in
//! the Word2Vec formulation).

/// A directed graph in CSR form with edge data `W` (use `()` for
/// unweighted graphs — it occupies no space).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<W = ()> {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    edge_data: Vec<W>,
}

impl<W: Copy> Csr<W> {
    /// Builds a CSR from an edge list `(src, dst, data)`. Edges are
    /// grouped by source with a counting sort; relative order of a node's
    /// out-edges follows input order (stable).
    pub fn from_edges(n_nodes: usize, edges: &[(u32, u32, W)]) -> Self {
        let mut degree = vec![0usize; n_nodes];
        for &(s, d, _) in edges {
            assert!((s as usize) < n_nodes, "source {s} out of range");
            assert!((d as usize) < n_nodes, "target {d} out of range");
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n_nodes + 1);
        offsets.push(0usize);
        for d in &degree {
            let last = *offsets.last().expect("non-empty");
            offsets.push(last + d);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        let mut edge_data: Vec<W> = Vec::with_capacity(edges.len());
        // SAFETY-free approach: fill with the first edge's data then overwrite.
        if let Some(&(_, _, w0)) = edges.first() {
            edge_data.resize(edges.len(), w0);
        }
        for &(s, d, w) in edges {
            let at = cursor[s as usize];
            targets[at] = d;
            edge_data[at] = w;
            cursor[s as usize] += 1;
        }
        Self {
            offsets,
            targets,
            edge_data,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Out-neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Out-edges of `u` as `(target, data)` pairs.
    #[inline]
    pub fn edges(&self, u: u32) -> impl Iterator<Item = (u32, W)> + '_ {
        let r = self.offsets[u as usize]..self.offsets[u as usize + 1];
        self.targets[r.clone()]
            .iter()
            .copied()
            .zip(self.edge_data[r].iter().copied())
    }

    /// Iterates all edges as `(src, dst, data)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (u32, u32, W)> + '_ {
        (0..self.n_nodes() as u32).flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// The reverse graph (every edge flipped), preserving edge data.
    pub fn transpose(&self) -> Self {
        let rev: Vec<(u32, u32, W)> = self.all_edges().map(|(s, d, w)| (d, s, w)).collect();
        Self::from_edges(self.n_nodes(), &rev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> Csr<u32> {
        // 0 -> 1 (w 5), 0 -> 2 (w 1), 1 -> 3 (w 1), 2 -> 3 (w 2)
        Csr::from_edges(4, &[(0, 1, 5), (0, 2, 1), (1, 3, 1), (2, 3, 2)])
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        let e: Vec<(u32, u32)> = g.edges(0).collect();
        assert_eq!(e, vec![(1, 5), (2, 1)]);
    }

    #[test]
    fn empty_graph() {
        let g: Csr = Csr::from_edges(3, &[]);
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn unweighted_uses_unit_type() {
        let g: Csr = Csr::from_edges(2, &[(0, 1, ())]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(std::mem::size_of_val(&g.edge_data[0]), 0);
    }

    #[test]
    fn self_loops_and_parallel_edges_kept() {
        let g: Csr = Csr::from_edges(2, &[(0, 0, ()), (0, 1, ()), (0, 1, ())]);
        assert_eq!(g.neighbors(0), &[0, 1, 1]);
    }

    #[test]
    fn transpose_flips_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.n_edges(), g.n_edges());
        assert_eq!(t.neighbors(3), &[1, 2]);
        let e: Vec<(u32, u32)> = t.edges(1).collect();
        assert_eq!(e, vec![(0, 5)]);
    }

    #[test]
    fn all_edges_roundtrip() {
        let edges = vec![(0u32, 1u32, 7u32), (2, 0, 3), (1, 2, 9), (0, 2, 4)];
        let g = Csr::from_edges(3, &edges);
        let mut got: Vec<(u32, u32, u32)> = g.all_edges().collect();
        let mut want = edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _: Csr = Csr::from_edges(2, &[(0, 5, ())]);
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(
            n in 1usize..30,
            raw in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
        ) {
            let edges: Vec<(u32, u32, ())> = raw
                .into_iter()
                .map(|(s, d)| (s % n as u32, d % n as u32, ()))
                .collect();
            let g = Csr::from_edges(n, &edges);
            let tt = g.transpose().transpose();
            let mut a: Vec<_> = g.all_edges().collect();
            let mut b: Vec<_> = tt.all_edges().collect();
            a.sort_unstable_by_key(|&(s, d, _)| (s, d));
            b.sort_unstable_by_key(|&(s, d, _)| (s, d));
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_degrees_sum_to_edges(
            n in 1usize..30,
            raw in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
        ) {
            let edges: Vec<(u32, u32, ())> = raw
                .into_iter()
                .map(|(s, d)| (s % n as u32, d % n as u32, ()))
                .collect();
            let g = Csr::from_edges(n, &edges);
            let sum: usize = (0..n as u32).map(|u| g.degree(u)).sum();
            prop_assert_eq!(sum, g.n_edges());
        }
    }
}
