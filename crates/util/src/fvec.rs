//! Dense `f32` vector kernels.
//!
//! The SGNS inner loop is built from a handful of kernels — dot product,
//! axpy (`y += a·x`), scale, and a fused gradient step — applied to short
//! (dim ≈ 100–300) vectors. Every public function here routes through the
//! runtime-dispatched table in [`crate::simd`]: hand-written AVX2+FMA
//! implementations where the host supports them, the original 4-way
//! unrolled scalar loops otherwise (or when `GW2V_FORCE_SCALAR=1`). The
//! model-combiner math (projections, norms) reuses the same kernels.

use crate::simd::kernels;

/// Dot product `x · y`. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    (kernels().dot)(x, y)
}

/// `y += a * x` (the BLAS axpy).
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    (kernels().axpy)(a, x, y)
}

/// `x *= a` in place.
#[inline]
pub fn scale(a: f32, x: &mut [f32]) {
    (kernels().scale)(a, x)
}

/// Fused SGNS gradient step: `neu1e += g·wout; wout += g·win`, reading and
/// writing each row once. `wout` is read before it is updated, so this is
/// element-wise equivalent to `axpy(g, wout, neu1e)` followed by
/// `axpy(g, win, wout)` — and bit-identical to that pair on the scalar
/// backend.
#[inline]
pub fn fused_grad_step(g: f32, win: &[f32], wout: &mut [f32], neu1e: &mut [f32]) {
    (kernels().fused_grad_step)(g, win, wout, neu1e)
}

/// Squared Euclidean norm `‖x‖²`.
#[inline]
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

/// Euclidean norm `‖x‖`.
#[inline]
pub fn norm(x: &[f32]) -> f32 {
    norm_sq(x).sqrt()
}

/// `out = x - y`, element-wise, writing into a caller-provided buffer.
#[inline]
pub fn sub_into(x: &[f32], y: &[f32], out: &mut [f32]) {
    (kernels().sub_into)(x, y, out)
}

/// `x += y`, element-wise.
#[inline]
pub fn add_assign(x: &mut [f32], y: &[f32]) {
    (kernels().add_assign)(x, y)
}

/// One-pass `(x·y, ‖x‖², ‖y‖²)`. The fused traversal reads each input
/// once instead of the three passes separate `dot` calls would make; on
/// the scalar backend the three results are bit-identical to three `dot`
/// calls.
#[inline]
pub fn dot_norms(x: &[f32], y: &[f32]) -> (f32, f32, f32) {
    (kernels().dot_norms)(x, y)
}

/// Cosine similarity of two vectors; returns 0 for zero-norm inputs so
/// freshly-initialized (all-zero) training vectors compare as dissimilar
/// rather than NaN.
#[inline]
pub fn cosine(x: &[f32], y: &[f32]) -> f32 {
    let (xy, xx, yy) = dot_norms(x, y);
    let nx = xx.sqrt();
    let ny = yy.sqrt();
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    xy / (nx * ny)
}

/// Normalizes `x` to unit length in place; leaves an all-zero vector
/// untouched. Computes `‖x‖²` once and rescans only for the rescale
/// (two passes total, down from three via `norm` + `scale`).
#[inline]
pub fn normalize(x: &mut [f32]) {
    let n = norm_sq(x).sqrt();
    if n > 0.0 {
        scale(1.0 / n, x);
    }
}

/// Small-matrix GEMM, "NT" shape: `C[m×n] += A[m×k] · B[n×k]ᵀ`, all
/// row-major. `C[i][j]` accumulates `row_i(A) · row_j(B)` — the HogBatch
/// score kernel, where `A` gathers input rows, `B` gathers target rows,
/// and `k` is the embedding dimension. Accumulate semantics: zero `c`
/// first for a fresh product.
#[inline]
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    (kernels().gemm_nt)(m, n, k, a, b, c)
}

/// Small-matrix GEMM, "TN" shape: `C[m×n] += A[k×m]ᵀ · B[k×n]`, all
/// row-major. `C[i][j]` accumulates `Σ_l A[l][i] · B[l][j]` — the
/// HogBatch rank-`k` update kernel, where `A` is the tiny gradient
/// matrix, `B` gathers rows, and `n` is the embedding dimension.
#[inline]
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    (kernels().gemm_tn)(m, n, k, a, b, c)
}

/// A flat matrix of `rows` vectors of dimension `dim`, stored row-major in
/// one contiguous allocation.
///
/// This is the storage layout for both model layers (`syn0`, `syn1neg`):
/// contiguous rows keep each word's vector on a handful of cache lines and
/// make zero-copy row borrowing trivial.
#[derive(Clone, Debug, PartialEq)]
pub struct FlatMatrix {
    data: Vec<f32>,
    rows: usize,
    dim: usize,
}

impl FlatMatrix {
    /// Creates a `rows × dim` matrix of zeros.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            data: vec![0.0; rows * dim],
            rows,
            dim,
        }
    }

    /// Takes ownership of an existing buffer; `data.len()` must equal
    /// `rows * dim`.
    pub fn from_vec(data: Vec<f32>, rows: usize, dim: usize) -> Self {
        assert_eq!(data.len(), rows * dim, "buffer size mismatch");
        Self { data, rows, dim }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// Mutably borrows row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// Mutably borrows two distinct rows at once (the SGNS update touches
    /// an embedding row and a training row of *different* matrices, but the
    /// combiner tests need intra-matrix pairs). Panics if `a == b`.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(a, b, "two_rows_mut requires distinct rows");
        let d = self.dim;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * d);
            (&mut lo[a * d..a * d + d], &mut hi[..d])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * d);
            let (x, y) = (&mut hi[..d], &mut lo[b * d..b * d + d]);
            (x, y)
        }
    }

    /// The whole backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole backing buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_dot(x: &[f32], y: &[f32]) -> f32 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn dot_matches_naive_various_lengths() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 100, 101, 200] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25 - 3.0).collect();
            let y: Vec<f32> = (0..n).map(|i| 1.0 / (i as f32 + 1.0)).collect();
            let d = dot(&x, &y);
            let nd = naive_dot(&x, &y);
            assert!(
                (d - nd).abs() <= 1e-4 * (1.0 + nd.abs()),
                "n={n}: {d} vs {nd}"
            );
        }
    }

    #[test]
    fn axpy_matches_naive() {
        for n in [1usize, 3, 4, 9, 64, 65] {
            let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let mut y: Vec<f32> = (0..n).map(|i| (i as f32) * -0.5).collect();
            let mut y2 = y.clone();
            axpy(0.3, &x, &mut y);
            for i in 0..n {
                y2[i] += 0.3 * x[i];
            }
            // The dispatched backend may use FMA, which rounds once where
            // the naive mul+add rounds twice — allow that single-rounding
            // difference. (Bitwise agreement with the scalar reference is
            // pinned separately in `simd`'s tests and tests/prop_simd.rs.)
            for i in 0..n {
                assert!(
                    (y[i] - y2[i]).abs() <= 1e-6 * (1.0 + y2[i].abs()),
                    "n={n}, lane {i}: {} vs {}",
                    y[i],
                    y2[i]
                );
            }
        }
    }

    #[test]
    fn norm_and_normalize() {
        let mut v = vec![3.0f32, 4.0];
        assert!((norm(&v) - 5.0).abs() < 1e-6);
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0f32; 8];
        normalize(&mut z);
        assert!(z.iter().all(|&x| x == 0.0), "zero vector stays zero");
    }

    #[test]
    fn cosine_basics() {
        let x = [1.0f32, 0.0];
        let y = [0.0f32, 2.0];
        assert!((cosine(&x, &x) - 1.0).abs() < 1e-6);
        assert!(cosine(&x, &y).abs() < 1e-6);
        assert_eq!(cosine(&x, &[0.0, 0.0]), 0.0);
        let neg = [-2.0f32, 0.0];
        assert!((cosine(&x, &neg) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn flat_matrix_rows() {
        let mut m = FlatMatrix::zeros(3, 4);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(0), &[0.0; 4]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 4);
    }

    #[test]
    fn two_rows_mut_disjoint_both_orders() {
        let mut m = FlatMatrix::zeros(4, 2);
        for r in 0..4 {
            let v = r as f32;
            m.row_mut(r).copy_from_slice(&[v, v]);
        }
        {
            let (a, b) = m.two_rows_mut(1, 3);
            assert_eq!(a, &[1.0, 1.0]);
            assert_eq!(b, &[3.0, 3.0]);
            a[0] = 10.0;
            b[0] = 30.0;
        }
        {
            let (a, b) = m.two_rows_mut(3, 1);
            assert_eq!(a[0], 30.0);
            assert_eq!(b[0], 10.0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn two_rows_mut_same_row_panics() {
        let mut m = FlatMatrix::zeros(2, 2);
        let _ = m.two_rows_mut(1, 1);
    }

    #[test]
    fn sub_into_and_add_assign_are_inverse() {
        let x = [5.0f32, -1.0, 2.5];
        let y = [1.0f32, 1.0, 1.0];
        let mut d = [0.0f32; 3];
        sub_into(&x, &y, &mut d);
        let mut back = y;
        add_assign(&mut back, &d);
        assert_eq!(back, x);
    }

    proptest! {
        #[test]
        fn prop_dot_symmetric(x in proptest::collection::vec(-10.0f32..10.0, 0..64)) {
            let y: Vec<f32> = x.iter().rev().copied().collect();
            prop_assert!((dot(&x, &y) - dot(&y, &x)).abs() < 1e-3);
        }

        #[test]
        fn prop_cauchy_schwarz(
            x in proptest::collection::vec(-10.0f32..10.0, 1..64),
        ) {
            let y: Vec<f32> = x.iter().map(|v| v * 0.5 + 1.0).collect();
            let lhs = dot(&x, &y).abs();
            let rhs = norm(&x) * norm(&y);
            prop_assert!(lhs <= rhs * (1.0 + 1e-4) + 1e-4);
        }

        #[test]
        fn prop_normalize_unit(x in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
            prop_assume!(norm(&x) > 1e-3);
            let mut v = x.clone();
            normalize(&mut v);
            prop_assert!((norm(&v) - 1.0).abs() < 1e-3);
            // Direction preserved: cosine with the original is 1.
            prop_assert!((cosine(&v, &x) - 1.0).abs() < 1e-3);
        }
    }
}
