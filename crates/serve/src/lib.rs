//! # gw2v-serve — the read path for trained embeddings
//!
//! Training (gw2v-core) produces GW2VCKP1 checkpoints and word2vec-format
//! text models; this crate is the subsystem that *answers queries* from
//! them. It is deliberately decoupled from the trainers — the store is
//! immutable once loaded, so serving needs none of the synchronization
//! machinery and can lay data out purely for read throughput.
//!
//! The pipeline is:
//!
//! 1. **Load** ([`store`]): a checkpoint holds one replica per simulated
//!    host. The canonical model assigns each node the row held by its
//!    master's *effective* host (dead masters are adopted cyclically), so
//!    [`ShardedStore::from_checkpoint`] replays the liveness map and
//!    gathers exactly the rows `assemble_canonical_live` would — the
//!    stored vectors are bitwise-equal to what the trainer saved.
//! 2. **Shard**: rows are hash-partitioned into `n_shards` shards, each a
//!    contiguous [`FlatMatrix`](gw2v_util::fvec::FlatMatrix) so the
//!    `gemm_nt` microkernel can stream them, with per-row inverse norms
//!    precomputed once at load time.
//! 3. **Query** ([`query`]): similarity and analogy queries are batched
//!    into a matrix, normalized once, and scored against every shard with
//!    one GEMM per shard. Ranking uses scores quantized to 1e-6 with
//!    ascending-id tie-breaks, which makes the served output byte-identical
//!    across SIMD backends (see [`query::quantize`]).
//!
//! Everything is instrumented through gw2v-obs: `serve.queries`,
//! `serve.batches`, `serve.oov`, and the `serve.query_ns` /
//! `serve.shard_scan_ns` log-bucketed histograms that the load harness
//! reads back for p50/p99 reporting.

#![deny(missing_docs)]

pub mod query;
pub mod store;

pub use query::{Answer, Hit, Query, QueryEngine};
pub use store::{ServeError, Shard, ShardedStore};
