//! Minimal `derive(Serialize, Deserialize)` for the vendored serde stub.
//!
//! Parses the derive input by hand (no `syn`/`quote` available offline) and
//! supports exactly the shapes this workspace uses:
//!
//! - non-generic structs with named fields (`#[serde(skip)]` honoured; a
//!   skipped field deserializes via `Default::default()`), and
//! - non-generic enums whose variants all carry no data (serialized as the
//!   variant name string).
//!
//! Anything else panics at compile time with a clear message rather than
//! silently producing wrong code.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let s = match self {{ {arms} }};\n\
                         ::serde::Value::Str(::std::string::String::from(s))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stub derive: generated invalid code")
}

/// Derives the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default(),\n", f.name)
                    } else {
                        format!(
                            "{0}: ::serde::Deserialize::from_value(v.field(\"{0}\")?)?,\n",
                            f.name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str()? {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stub derive: generated invalid code")
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes (`#[...]`, including doc comments).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _bracket = iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        other => panic!("serde stub derive: expected item name, got {other:?}"),
                    };
                    let body = match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                        other => panic!(
                            "serde stub derive: only non-generic braced structs/enums are \
                             supported (while deriving for `{name}`, got {other:?})"
                        ),
                    };
                    return if kw == "struct" {
                        Item::Struct {
                            name,
                            fields: parse_named_fields(body.stream()),
                        }
                    } else {
                        Item::Enum {
                            name,
                            variants: parse_unit_variants(body.stream()),
                        }
                    };
                }
                // `pub`, `pub(crate)` etc. — keep scanning.
            }
            // Visibility restriction group `(crate)`, stray tokens — skip.
            _ => {}
        }
    }
    panic!("serde stub derive: no struct or enum found in input");
}

/// Returns true if an attribute group (the `[...]` token tree after `#`)
/// is `[serde(skip)]` (or contains `skip` among the serde arguments).
fn attr_is_serde_skip(group: &Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let mut skip = false;
        // Leading attributes on the field.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.next() {
                if attr_is_serde_skip(&g) {
                    skip = true;
                }
            }
        }
        // Visibility.
        while matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                panic!("serde stub derive: expected field name (named fields only), got {other:?}")
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Leading attributes (doc comments) on the variant.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        match iter.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(other) => panic!(
                "serde stub derive: only unit enum variants are supported \
                 (variant `{name}` carries data: {other:?})"
            ),
        }
    }
    variants
}
