//! The distributed protocol on the threaded cluster engine.
//!
//! [`ThreadedTrainer`] runs Algorithm 1 with one OS thread per host on
//! the gw2v-gluon threaded fabric: real message passing (CRC-framed,
//! NAK/resend reliable), real barriers, real crashes. It is the
//! demonstration that the protocol the BSP simulator models — including
//! the fault-tolerance story of DESIGN.md §3d — executes correctly under
//! genuine concurrency:
//!
//! * a faultless run produces a model **bit-identical** to
//!   [`crate::DistributedTrainer`]'s (same RNG streams, same fold order);
//! * drops and bit-flips are detected (CRC / timeout) and repaired by
//!   retransmission, leaving the result bit-identical to a clean run;
//! * a crashed host's shard is adopted by the next alive host, which
//!   re-derives the dead worklist's position deterministically (raw token
//!   counts are RNG-free) and continues it on the recovery RNG stream —
//!   the same rule the simulator applies, so degraded runs also match the
//!   simulator bit-for-bit;
//! * a `kill=E` directive stops the whole cluster after epoch `E`.
//!
//! What the threaded engine deliberately does **not** do: PullModel
//! (inspection is sequential-engine only, see DESIGN.md §3), virtual
//! time accounting (`compute_time`/`comm_time` are reported as zero —
//! wall time is the real measurement here), and checkpoint/resume
//! (epoch-boundary checkpointing lives in the simulator, which is what
//! experiments script against).

use crate::distributed::{DistConfig, TrainResult};
use crate::model::Word2VecModel;
use crate::params::Hyperparams;
use crate::schedule::LrSchedule;
use crate::setup::{TrainSetup, HOST_RNG_BASE, RECOVERY_RNG_BASE};
use crate::sgns::{train_sentence, ReplicaStore, TrainScratch};
use gw2v_corpus::shard::{Corpus, CorpusShard};
use gw2v_corpus::vocab::Vocabulary;
use gw2v_faults::{counters, FaultPlan};
use gw2v_gluon::liveness::Liveness;
use gw2v_gluon::plan::{SyncConfig, SyncPlan};
use gw2v_gluon::threaded::{
    run_cluster_with, sync_round_threaded_degraded, ClusterConfig, ClusterError,
    ThreadedSyncScratch,
};
use gw2v_gluon::volume::CommStats;
use gw2v_gluon::ModelReplica;
use gw2v_util::fvec::FlatMatrix;
use gw2v_util::rng::{SplitMix64, Xoshiro256};
use std::time::Instant;

/// A dead host's shard, carried forward by its adopter.
struct Ward {
    host: usize,
    rng: Xoshiro256,
    processed: u64,
}

/// What each host thread hands back to the coordinator.
struct HostOutcome {
    crashed: bool,
    layers: Vec<FlatMatrix>,
    stats: CommStats,
    pairs: u64,
}

/// Tokens host `d` has processed by the start of `(epoch, s)`: full
/// epochs' worth of its shard plus this epoch's earlier chunks. Raw
/// token counts are independent of any RNG stream, so an adopter can
/// recompute a dead host's schedule position exactly.
fn processed_at(shard: &CorpusShard<'_>, epoch: usize, s: usize, s_count: usize) -> u64 {
    let mut total = epoch as u64 * shard.total_tokens() as u64;
    for s_prior in 0..s {
        total += shard.round_chunk(s_prior, s_count).total_tokens() as u64;
    }
    total
}

/// The distributed trainer on the threaded cluster engine.
pub struct ThreadedTrainer {
    /// Hyperparameters.
    pub params: Hyperparams,
    /// Cluster configuration ([`SyncPlan::PullModel`] is rejected — the
    /// inspection handshake is sequential-engine only).
    pub config: DistConfig,
    faults: FaultPlan,
    cluster: ClusterConfig,
}

impl ThreadedTrainer {
    /// Creates a trainer.
    pub fn new(params: Hyperparams, config: DistConfig) -> Self {
        assert!(config.n_hosts > 0);
        assert!(config.sync_rounds > 0);
        assert!(
            config.plan != SyncPlan::PullModel,
            "PullModel is sequential-engine only (DESIGN.md §3)"
        );
        Self {
            params,
            config,
            faults: FaultPlan::none(),
            cluster: ClusterConfig::default(),
        }
    }

    /// Installs a fault plan; drops, flips, stragglers and crashes are
    /// injected for real (withheld frames, corrupted bytes, `sleep`s,
    /// exiting threads).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Overrides the reliable-transport timing knobs.
    pub fn with_cluster_config(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Trains on one thread per host. Returns the canonical model (every
    /// survivor's replica agrees after the final broadcast) or the first
    /// cluster-fabric error.
    pub fn train(&self, corpus: &Corpus, vocab: &Vocabulary) -> Result<TrainResult, ClusterError> {
        let p = &self.params;
        let cfg = &self.config;
        let h_count = cfg.n_hosts;
        let s_count = cfg.sync_rounds;
        let wall_start = Instant::now();

        let setup = TrainSetup::new(vocab, p);
        let init = Word2VecModel::init(vocab.len(), p.dim, p.seed);
        let root = SplitMix64::new(p.seed);
        let schedule = LrSchedule::new(
            p.alpha,
            p.min_alpha_frac,
            corpus.total_tokens() as u64,
            p.epochs,
        );
        let sync_cfg = SyncConfig {
            plan: cfg.plan,
            combiner: cfg.combiner,
        };
        let killed = self
            .faults
            .kill_after_epoch
            .is_some_and(|e| e + 1 < p.epochs);

        let outcomes = run_cluster_with(
            h_count,
            self.faults.clone(),
            self.cluster,
            |ctx| -> Result<HostOutcome, ClusterError> {
                let h = ctx.host;
                let train_ctx = setup.ctx(p);
                let mut replica = ModelReplica::new(vec![init.syn0.clone(), init.syn1neg.clone()]);
                let mut rng = Xoshiro256::new(root.derive(HOST_RNG_BASE + h as u64));
                let shard = corpus.partition(h, h_count);
                let mut stats = CommStats::default();
                let mut pairs = 0u64;
                let mut processed = 0u64;
                let mut scratch = TrainScratch::default();
                let mut sync_scratch = ThreadedSyncScratch::new();
                let mut live = Liveness::all(h_count);
                let mut wards: Vec<Ward> = Vec::new();

                for epoch in 0..p.epochs {
                    for s in 0..s_count {
                        let g = epoch * s_count + s;
                        if ctx.plan().crash_round(h) == Some(g) {
                            ctx.mark_self_dead();
                            return Ok(HostOutcome {
                                crashed: true,
                                layers: Vec::new(),
                                stats,
                                pairs,
                            });
                        }
                        // Peers scheduled to die this round: confirm each
                        // death through the runtime registry, then degrade
                        // the deterministic view every survivor shares.
                        let mut someone_died = false;
                        for peer in 0..h_count {
                            if peer != h
                                && live.is_alive(peer)
                                && ctx.plan().crash_round(peer) == Some(g)
                            {
                                ctx.await_death(peer);
                                live.mark_dead(peer);
                                someone_died = true;
                            }
                        }
                        if someone_died {
                            for d in 0..h_count {
                                if live.is_alive(d)
                                    || live.adopter_of(d) != Some(h)
                                    || wards.iter().any(|w| w.host == d)
                                {
                                    continue;
                                }
                                counters::bump(counters::RECOVERED_ADOPT);
                                wards.push(Ward {
                                    host: d,
                                    rng: Xoshiro256::new(root.derive(RECOVERY_RNG_BASE + d as u64)),
                                    processed: processed_at(
                                        &corpus.partition(d, h_count),
                                        epoch,
                                        s,
                                        s_count,
                                    ),
                                });
                            }
                            wards.sort_by_key(|w| w.host);
                        }
                        ctx.maybe_straggle(g);

                        // Own chunk first, then adopted chunks in dead-host
                        // order — the simulator applies updates to this
                        // replica in exactly this sequence.
                        for sentence in shard.round_chunk(s, s_count).sentences() {
                            let alpha = schedule.alpha_for_host(processed, h_count);
                            let mut store = ReplicaStore {
                                replica: &mut replica,
                            };
                            pairs += train_sentence(
                                &mut store,
                                sentence,
                                alpha,
                                &train_ctx,
                                &mut rng,
                                &mut scratch,
                            );
                            processed += sentence.len() as u64;
                        }
                        for w in wards.iter_mut() {
                            let ward_shard = corpus.partition(w.host, h_count);
                            for sentence in ward_shard.round_chunk(s, s_count).sentences() {
                                let alpha = schedule.alpha_for_host(w.processed, h_count);
                                let mut store = ReplicaStore {
                                    replica: &mut replica,
                                };
                                pairs += train_sentence(
                                    &mut store,
                                    sentence,
                                    alpha,
                                    &train_ctx,
                                    &mut w.rng,
                                    &mut scratch,
                                );
                                w.processed += sentence.len() as u64;
                            }
                        }

                        sync_round_threaded_degraded(
                            &ctx,
                            &mut replica,
                            &sync_cfg,
                            &mut stats,
                            &mut sync_scratch,
                            &live,
                        )?;
                    }
                    if ctx.plan().kill_after_epoch == Some(epoch) && epoch + 1 < p.epochs {
                        // Whole-cluster stop; the lowest alive host counts it.
                        if (0..h_count).find(|&x| live.is_alive(x)) == Some(h) {
                            counters::bump(counters::INJECTED_KILL);
                        }
                        break;
                    }
                }
                Ok(HostOutcome {
                    crashed: false,
                    layers: replica.layers,
                    stats,
                    pairs,
                })
            },
        );

        let mut stats = CommStats::default();
        let mut pairs_trained = 0u64;
        let mut rounds = 0u64;
        let mut survivor_layers: Option<Vec<FlatMatrix>> = None;
        for outcome in outcomes {
            let outcome = outcome?;
            stats.merge(&outcome.stats);
            rounds = rounds.max(outcome.stats.rounds);
            pairs_trained += outcome.pairs;
            if !outcome.crashed && survivor_layers.is_none() {
                survivor_layers = Some(outcome.layers);
            }
        }
        stats.rounds = rounds;
        let mut it = survivor_layers
            .expect("at least one host survives")
            .into_iter();
        let model =
            Word2VecModel::from_layers(it.next().expect("syn0"), it.next().expect("syn1neg"));
        Ok(TrainResult {
            model,
            stats,
            compute_time: 0.0,
            comm_time: 0.0,
            wall_time: wall_start.elapsed().as_secs_f64(),
            pairs_trained,
            killed,
            resumed_from: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::DistributedTrainer;
    use gw2v_combiner::CombinerKind;
    use gw2v_corpus::tokenizer::TokenizerConfig;
    use gw2v_corpus::vocab::VocabBuilder;
    use gw2v_gluon::cost::CostModel;

    fn corpus(n_sentences: usize) -> (Corpus, Vocabulary) {
        let mut text = String::new();
        for i in 0..n_sentences {
            match i % 3 {
                0 => text.push_str("a0 a1 a2 a3 a1 a2\n"),
                1 => text.push_str("b0 b1 b2 b3 b1 b2\n"),
                _ => text.push_str("c0 c1 a1 b1 c2 c0\n"),
            }
        }
        let mut b = VocabBuilder::new();
        for tok in text.split_whitespace() {
            b.add_token(tok);
        }
        let vocab = b.build(1);
        let cfg = TokenizerConfig {
            lowercase: false,
            max_sentence_len: 6,
        };
        (Corpus::from_text(&text, &vocab, cfg), vocab)
    }

    fn cfg(n_hosts: usize, rounds: usize) -> DistConfig {
        DistConfig {
            n_hosts,
            sync_rounds: rounds,
            plan: SyncPlan::RepModelOpt,
            combiner: CombinerKind::ModelCombiner,
            cost: CostModel::infiniband_56g(),
        }
    }

    #[test]
    fn faultless_threaded_matches_simulator_bitwise() {
        let (corpus, vocab) = corpus(90);
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let sim = DistributedTrainer::new(params.clone(), cfg(3, 2)).train(&corpus, &vocab);
        let thr = ThreadedTrainer::new(params, cfg(3, 2))
            .train(&corpus, &vocab)
            .expect("faultless cluster run");
        assert_eq!(sim.model, thr.model, "engines must agree bit-for-bit");
        assert_eq!(sim.pairs_trained, thr.pairs_trained);
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
        assert_eq!(sim.stats.rounds, thr.stats.rounds);
    }

    #[test]
    fn pull_model_is_rejected() {
        let result = std::panic::catch_unwind(|| {
            ThreadedTrainer::new(
                Hyperparams::test_scale(),
                DistConfig {
                    plan: SyncPlan::PullModel,
                    ..cfg(2, 2)
                },
            )
        });
        assert!(result.is_err());
    }
}
