//! Engine-equivalence integration tests: the threaded cluster engine
//! must train bit-identically to the deterministic sequential engine,
//! end-to-end through the real SGNS operator (not just the synthetic
//! workloads the unit tests use).

use graph_word2vec::combiner::CombinerKind;
use graph_word2vec::core::model::Word2VecModel;
use graph_word2vec::core::params::Hyperparams;
use graph_word2vec::core::schedule::LrSchedule;
use graph_word2vec::core::setup::{TrainSetup, HOST_RNG_BASE};
use graph_word2vec::core::sgns::{train_sentence, ReplicaStore, TrainScratch};
use graph_word2vec::corpus::datasets::{DatasetPreset, Scale};
use graph_word2vec::corpus::shard::Corpus;
use graph_word2vec::corpus::tokenizer::{sentences_from_text, TokenizerConfig};
use graph_word2vec::corpus::vocab::{VocabBuilder, Vocabulary};
use graph_word2vec::gluon::plan::{SyncConfig, SyncPlan};
use graph_word2vec::gluon::sync::{assemble_canonical, sync_round};
use graph_word2vec::gluon::threaded::{run_cluster, sync_round_threaded};
use graph_word2vec::gluon::volume::CommStats;
use graph_word2vec::gluon::ModelReplica;
use graph_word2vec::util::rng::{SplitMix64, Xoshiro256};

fn prepare() -> (Vocabulary, Corpus, Hyperparams) {
    let preset = DatasetPreset::by_name("1-billion").expect("preset");
    let synth = preset.generate(Scale::Tiny, 99);
    let cfg = TokenizerConfig::default();
    let mut b = VocabBuilder::new();
    for s in sentences_from_text(&synth.text, cfg.clone()) {
        b.add_sentence(&s);
    }
    let vocab = b.build(1);
    // Shrink the corpus so the threaded run stays fast.
    let corpus = Corpus::from_sentences(
        Corpus::from_text(&synth.text, &vocab, cfg)
            .sentences()
            .iter()
            .take(300)
            .cloned()
            .collect(),
    );
    let params = Hyperparams {
        dim: 16,
        window: 3,
        negative: 3,
        epochs: 2,
        seed: 5,
        ..Hyperparams::default()
    };
    (vocab, corpus, params)
}

/// Drives one host's training + threaded sync, mirroring what the
/// sequential `DistributedTrainer` does per host.
fn threaded_train(
    vocab: &Vocabulary,
    corpus: &Corpus,
    params: &Hyperparams,
    n_hosts: usize,
    rounds: usize,
    combiner: CombinerKind,
) -> Vec<graph_word2vec::util::fvec::FlatMatrix> {
    let setup = TrainSetup::new(vocab, params);
    let init = Word2VecModel::init(vocab.len(), params.dim, params.seed);
    let schedule = LrSchedule::new(
        params.alpha,
        params.min_alpha_frac,
        corpus.total_tokens() as u64,
        params.epochs,
    );
    let sync_cfg = SyncConfig {
        plan: SyncPlan::RepModelOpt,
        combiner,
    };
    let replicas = run_cluster(n_hosts, |ctx| {
        let ctx_train = setup.ctx(params);
        let mut replica = ModelReplica::new(vec![init.syn0.clone(), init.syn1neg.clone()]);
        let mut rng =
            Xoshiro256::new(SplitMix64::new(params.seed).derive(HOST_RNG_BASE + ctx.host as u64));
        let mut scratch = TrainScratch::default();
        let mut stats = CommStats::default();
        let mut processed = 0u64;
        let shard = corpus.partition(ctx.host, n_hosts);
        for _epoch in 0..params.epochs {
            for s in 0..rounds {
                let chunk = shard.round_chunk(s, rounds);
                for sentence in chunk.sentences() {
                    let alpha = schedule.alpha_for_host(processed, n_hosts);
                    let mut store = ReplicaStore {
                        replica: &mut replica,
                    };
                    train_sentence(
                        &mut store,
                        sentence,
                        alpha,
                        &ctx_train,
                        &mut rng,
                        &mut scratch,
                    );
                    processed += sentence.len() as u64;
                }
                sync_round_threaded(&ctx, &mut replica, &sync_cfg, &mut stats)
                    .expect("faultless sync round");
            }
        }
        replica
    });
    assemble_canonical(&replicas)
}

/// The same schedule on the sequential engine.
fn sequential_train(
    vocab: &Vocabulary,
    corpus: &Corpus,
    params: &Hyperparams,
    n_hosts: usize,
    rounds: usize,
    combiner: CombinerKind,
) -> Vec<graph_word2vec::util::fvec::FlatMatrix> {
    let setup = TrainSetup::new(vocab, params);
    let init = Word2VecModel::init(vocab.len(), params.dim, params.seed);
    let schedule = LrSchedule::new(
        params.alpha,
        params.min_alpha_frac,
        corpus.total_tokens() as u64,
        params.epochs,
    );
    let sync_cfg = SyncConfig {
        plan: SyncPlan::RepModelOpt,
        combiner,
    };
    let mut replicas: Vec<ModelReplica> = (0..n_hosts)
        .map(|_| ModelReplica::new(vec![init.syn0.clone(), init.syn1neg.clone()]))
        .collect();
    let mut rngs: Vec<Xoshiro256> = (0..n_hosts)
        .map(|h| Xoshiro256::new(SplitMix64::new(params.seed).derive(HOST_RNG_BASE + h as u64)))
        .collect();
    let mut processed = vec![0u64; n_hosts];
    let mut scratch = TrainScratch::default();
    let mut stats = CommStats::default();
    let ctx_train = setup.ctx(params);
    for _epoch in 0..params.epochs {
        for s in 0..rounds {
            for h in 0..n_hosts {
                let shard = corpus.partition(h, n_hosts);
                let chunk = shard.round_chunk(s, rounds);
                for sentence in chunk.sentences() {
                    let alpha = schedule.alpha_for_host(processed[h], n_hosts);
                    let mut store = ReplicaStore {
                        replica: &mut replicas[h],
                    };
                    train_sentence(
                        &mut store,
                        sentence,
                        alpha,
                        &ctx_train,
                        &mut rngs[h],
                        &mut scratch,
                    );
                    processed[h] += sentence.len() as u64;
                }
            }
            sync_round(&mut replicas, &sync_cfg, None, &mut stats);
        }
    }
    assemble_canonical(&replicas)
}

#[test]
fn threaded_engine_trains_bit_identically_to_sequential() {
    let (vocab, corpus, params) = prepare();
    for combiner in [CombinerKind::ModelCombiner, CombinerKind::Avg] {
        let seq = sequential_train(&vocab, &corpus, &params, 3, 2, combiner);
        let thr = threaded_train(&vocab, &corpus, &params, 3, 2, combiner);
        assert_eq!(seq, thr, "{combiner:?}: engines must agree bitwise");
    }
}
