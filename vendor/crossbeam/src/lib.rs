//! Minimal, self-contained stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` (with blocking,
//! non-blocking and timed receives) is used by the workspace (the threaded
//! Gluon engine); this maps it onto `std::sync::mpsc`, which provides the
//! same FIFO-per-sender semantics the engine's barrier-phased protocol
//! relies on.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel; clonable across threads.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have disconnected.
    #[derive(Debug)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is ready.
        pub fn try_recv(&self) -> Result<T, std::sync::mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            h.join().unwrap();
            drop(tx);
            let got: Vec<u32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
