//! Ablation study (not in the paper — design-choice validation from
//! DESIGN.md §4): combiner variants, negative-sampler implementations,
//! and the incremental vs pairwise-tree model-combiner fold.

use gw2v_bench::{
    bench_params, epochs_from_env, obs_init, prepare, scale_from_env, write_json_run,
};
use gw2v_combiner::CombinerKind;
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_core::params::SamplerChoice;
use gw2v_corpus::datasets::{DatasetPreset, Scale};
use gw2v_eval::analogy::evaluate;
use gw2v_gluon::plan::SyncPlan;
use gw2v_gluon::wire::WireMode;
use gw2v_util::table::{fmt_secs, Align, Table};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    study: String,
    variant: String,
    total_accuracy: f64,
    virtual_secs: f64,
    comm_bytes: u64,
}

fn main() {
    obs_init();
    let scale = scale_from_env(Scale::Tiny);
    let epochs = epochs_from_env(8);
    let hosts = 8;
    let preset = DatasetPreset::by_name("1-billion").expect("preset");
    println!(
        "Ablations on {} at {hosts} hosts (scale {scale:?}, {epochs} epochs)\n",
        preset.paper_name
    );
    let d = prepare(preset, scale, 42);
    let mut rows = Vec::new();

    // Study 1: reduction operator.
    for combiner in [
        CombinerKind::ModelCombiner,
        CombinerKind::ModelCombinerPairwise,
        CombinerKind::Avg,
        CombinerKind::Sum,
    ] {
        eprintln!("[ablation] combiner {} ...", combiner.label());
        let params = bench_params(scale, epochs, 1);
        let mut config = DistConfig::paper_default(hosts);
        config.combiner = combiner;
        let result = DistributedTrainer::new(params, config).train(&d.corpus, &d.vocab);
        let report = evaluate(&result.model, &d.vocab, &d.synth.analogies);
        rows.push(AblationRow {
            study: "combiner".into(),
            variant: combiner.label().into(),
            total_accuracy: report.total(),
            virtual_secs: result.virtual_time(),
            comm_bytes: result.stats.total_bytes(),
        });
    }

    // Study 2: negative-sampling table vs alias method.
    for sampler in [SamplerChoice::Table, SamplerChoice::Alias] {
        eprintln!("[ablation] sampler {sampler:?} ...");
        let mut params = bench_params(scale, epochs, 1);
        params.sampler = sampler;
        let config = DistConfig::paper_default(hosts);
        let result = DistributedTrainer::new(params, config).train(&d.corpus, &d.vocab);
        let report = evaluate(&result.model, &d.vocab, &d.synth.analogies);
        rows.push(AblationRow {
            study: "sampler".into(),
            variant: format!("{sampler:?}"),
            total_accuracy: report.total(),
            virtual_secs: result.virtual_time(),
            comm_bytes: result.stats.total_bytes(),
        });
    }

    // Study 3: wire payload mode. Memo drops the 4-byte id per entry on
    // a cache hit; delta ships a changed-row bitmask plus changed rows
    // against a per-key shadow; quant ships u8 codes with a per-row
    // scale/offset pair. Id+value, memo, and delta must be bit-identical
    // in accuracy — they change bytes, never arithmetic — while quant is
    // deterministically lossy (bounded accuracy delta, biggest byte cut).
    for plan in [
        SyncPlan::RepModelNaive,
        SyncPlan::RepModelOpt,
        SyncPlan::PullModel,
    ] {
        for wire in [
            WireMode::IdValue,
            WireMode::Memo,
            WireMode::Delta,
            WireMode::Quant,
        ] {
            eprintln!("[ablation] wire {}/{} ...", plan.label(), wire.label());
            let params = bench_params(scale, epochs, 1);
            let mut config = DistConfig::paper_default(hosts);
            config.plan = plan;
            config.wire = wire;
            let result = DistributedTrainer::new(params, config).train(&d.corpus, &d.vocab);
            let report = evaluate(&result.model, &d.vocab, &d.synth.analogies);
            rows.push(AblationRow {
                study: "wire".into(),
                variant: format!("{}/{}", plan.label(), wire.label()),
                total_accuracy: report.total(),
                virtual_secs: result.virtual_time(),
                comm_bytes: result.stats.total_bytes(),
            });
        }
    }

    let mut table = Table::new(vec!["Study", "Variant", "Total acc", "Virt time", "Volume"])
        .with_aligns(&[
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    for r in &rows {
        table.add_row(vec![
            r.study.clone(),
            r.variant.clone(),
            format!("{:.2}", r.total_accuracy),
            fmt_secs(r.virtual_secs),
            gw2v_util::table::fmt_bytes(r.comm_bytes),
        ]);
    }
    print!("{table}");
    println!("\nExpected: MC ≈ MC-PW ≫ AVG; SUM degraded or diverged; Table ≈ Alias accuracy;");
    println!("memo/delta wire == id-value accuracy at ≤ volume (strictly lower for naive);");
    println!("quant wire: every plan cut to the (12+dim)/(4+4dim) fraction of id-value volume,");
    println!("accuracy within a few points (lossy). Delta can undercut quant on the naive plan,");
    println!("whose dense lists are mostly unchanged rows.");
    write_json_run("ablation", scale, 1, &rows);
}
