//! Phrase detection (`word2phrase`).
//!
//! Mikolov et al. (2013) §4 ship a preprocessing pass that joins
//! frequently co-occurring word pairs into single tokens ("new york" →
//! "new_york") before training, scoring each bigram as
//!
//! ```text
//! score(a, b) = (count(ab) − δ) / (count(a) · count(b)) · total
//! ```
//!
//! and joining pairs whose score exceeds a threshold. This module
//! implements that pass as a corpus→corpus transformation; the original
//! tool is run repeatedly to build longer phrases, which works here too
//! (joined tokens become ordinary words in the next round).

use std::collections::HashMap;

/// Phrase-detection parameters.
#[derive(Clone, Debug)]
pub struct PhraseConfig {
    /// Discount `δ`: bigrams rarer than this can never join (the C
    /// tool's `-min-count`, default 5).
    pub discount: u64,
    /// Minimum score for joining (the C tool's `-threshold`, default 100).
    pub threshold: f64,
    /// Separator placed between joined words.
    pub separator: char,
}

impl Default for PhraseConfig {
    fn default() -> Self {
        Self {
            discount: 5,
            threshold: 100.0,
            separator: '_',
        }
    }
}

/// Bigram statistics gathered in one pass over sentences.
#[derive(Debug, Default)]
pub struct PhraseModel {
    unigrams: HashMap<String, u64>,
    bigrams: HashMap<(String, String), u64>,
    total: u64,
}

impl PhraseModel {
    /// Counts unigrams and adjacent bigrams over tokenized sentences.
    /// Bigrams never span sentence boundaries.
    pub fn count<S: AsRef<str>>(sentences: &[Vec<S>]) -> Self {
        let mut model = PhraseModel::default();
        for sentence in sentences {
            for (i, tok) in sentence.iter().enumerate() {
                let w = tok.as_ref();
                *model.unigrams.entry(w.to_owned()).or_insert(0) += 1;
                model.total += 1;
                if i + 1 < sentence.len() {
                    let pair = (w.to_owned(), sentence[i + 1].as_ref().to_owned());
                    *model.bigrams.entry(pair).or_insert(0) += 1;
                }
            }
        }
        model
    }

    /// The score of a bigram under `config` (0 if unseen or below the
    /// discount).
    pub fn score(&self, a: &str, b: &str, config: &PhraseConfig) -> f64 {
        let ab = match self.bigrams.get(&(a.to_owned(), b.to_owned())) {
            Some(&c) if c > config.discount => c,
            _ => return 0.0,
        };
        let ca = *self.unigrams.get(a).unwrap_or(&0);
        let cb = *self.unigrams.get(b).unwrap_or(&0);
        if ca == 0 || cb == 0 {
            return 0.0;
        }
        (ab - config.discount) as f64 / (ca as f64 * cb as f64) * self.total as f64
    }

    /// Rewrites sentences, greedily joining qualifying bigrams
    /// left-to-right (a joined pair's second word cannot start another
    /// join, matching the C tool's streaming behaviour).
    pub fn apply<S: AsRef<str>>(
        &self,
        sentences: &[Vec<S>],
        config: &PhraseConfig,
    ) -> Vec<Vec<String>> {
        sentences
            .iter()
            .map(|sentence| {
                let mut out: Vec<String> = Vec::with_capacity(sentence.len());
                let mut i = 0;
                while i < sentence.len() {
                    let a = sentence[i].as_ref();
                    if i + 1 < sentence.len() {
                        let b = sentence[i + 1].as_ref();
                        if self.score(a, b, config) > config.threshold {
                            out.push(format!("{a}{}{b}", config.separator));
                            i += 2;
                            continue;
                        }
                    }
                    out.push(a.to_owned());
                    i += 1;
                }
                out
            })
            .collect()
    }
}

/// One full word2phrase pass: count then apply.
pub fn detect_phrases<S: AsRef<str>>(
    sentences: &[Vec<S>],
    config: &PhraseConfig,
) -> Vec<Vec<String>> {
    PhraseModel::count(sentences).apply(sentences, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sents(text: &str) -> Vec<Vec<String>> {
        text.lines()
            .map(|l| l.split_whitespace().map(str::to_owned).collect())
            .collect()
    }

    fn repeat_line(line: &str, n: usize) -> String {
        std::iter::repeat_n(line, n).collect::<Vec<_>>().join("\n")
    }

    #[test]
    fn frequent_bigram_joins() {
        // "new york" always adjacent; "the" everywhere (never joins with
        // its varying successors).
        let text = repeat_line("the new york subway", 50) + "\n" + &repeat_line("the a b", 50);
        let sentences = sents(&text);
        // score(new, york) = (50−2)/(50·50)·350 ≈ 6.7;
        // score(the, new) = (50−2)/(100·50)·350 ≈ 3.4 — threshold between.
        let cfg = PhraseConfig {
            discount: 2,
            threshold: 5.0,
            separator: '_',
        };
        let out = detect_phrases(&sentences, &cfg);
        assert!(out[0].contains(&"new_york".to_owned()), "{:?}", out[0]);
        assert!(out[0].contains(&"the".to_owned()));
    }

    #[test]
    fn rare_bigram_does_not_join() {
        let text = repeat_line("alpha beta", 3)
            + "\n"
            + &repeat_line("alpha gamma", 100)
            + "\n"
            + &repeat_line("delta beta", 100);
        let sentences = sents(&text);
        let cfg = PhraseConfig {
            discount: 5,
            threshold: 10.0,
            separator: '_',
        };
        let out = detect_phrases(&sentences, &cfg);
        // "alpha beta" occurs only 3 times (≤ discount): never joined.
        assert!(out[0].iter().all(|w| !w.contains('_')), "{:?}", out[0]);
    }

    #[test]
    fn greedy_no_overlap() {
        // "a b" qualifies; after joining, "b c" must not also consume b.
        let text = repeat_line("a b c", 100);
        let sentences = sents(&text);
        let cfg = PhraseConfig {
            discount: 1,
            threshold: 0.5,
            separator: '_',
        };
        let out = detect_phrases(&sentences, &cfg);
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[0][0], "a_b");
        assert_eq!(out[0][1], "c");
    }

    #[test]
    fn no_cross_sentence_bigrams() {
        let sentences = sents("x\ny\nx\ny\nx\ny");
        let model = PhraseModel::count(&sentences);
        let cfg = PhraseConfig::default();
        assert_eq!(model.score("x", "y", &cfg), 0.0);
    }

    #[test]
    fn score_formula() {
        let text = repeat_line("p q", 10);
        let sentences = sents(&text);
        let model = PhraseModel::count(&sentences);
        let cfg = PhraseConfig {
            discount: 0,
            threshold: 0.0,
            separator: '_',
        };
        // count(pq)=10, count(p)=count(q)=10, total=20 → 10/(100)·20 = 2.
        let s = model.score("p", "q", &cfg);
        assert!((s - 2.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn iterated_passes_build_trigrams() {
        let text = repeat_line("new york city council", 100);
        let sentences = sents(&text);
        let cfg = PhraseConfig {
            discount: 1,
            threshold: 0.5,
            separator: '_',
        };
        let pass1 = detect_phrases(&sentences, &cfg);
        let pass2 = detect_phrases(&pass1, &cfg);
        assert!(
            pass2[0]
                .iter()
                .any(|w| w == "new_york_city_council" || w == "new_york_city"),
            "{:?}",
            pass2[0]
        );
    }
}
