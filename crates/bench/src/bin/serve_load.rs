//! Closed-loop load harness for the gw2v-serve query engine.
//!
//! Trains a small model through the real distributed path (so the store
//! loads from an actual GW2VCKP1 checkpoint), then replays a synthetic
//! 80% similarity / 20% analogy query mix at each configured concurrency
//! level. Every request is timed client-side into both a per-level
//! histogram (for the table below) and the global `serve.request_ns`
//! instrument, and the run snapshot — per-level throughput plus p50/p90/
//! p99 latency — lands in `results/serve_load.json`.
//!
//! Knobs (environment):
//!
//! | Variable            | Default   | Meaning                          |
//! |---------------------|-----------|----------------------------------|
//! | `GW2V_SCALE`        | `tiny`    | Corpus scale for the model       |
//! | `SERVE_CONCURRENCY` | `1,2,4,8` | Client thread counts to sweep    |
//! | `SERVE_REQUESTS`    | `2000`    | Requests per concurrency level   |
//! | `SERVE_K`           | `10`      | Top-k per query                  |
//! | `SERVE_SHARDS`      | `8`       | Store shard count                |
//! | `SERVE_DIM`         | `128`     | Embedding dimensionality         |
//! | `SERVE_HOSTS`       | `4`       | Simulated hosts for training     |

use gw2v_bench::{obs_init, prepare, scale_from_env, write_json_run};
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_core::params::Hyperparams;
use gw2v_corpus::datasets::{DatasetPreset, Scale};
use gw2v_obs::LogHistogram;
use gw2v_serve::{Query, QueryEngine, ShardedStore};
use gw2v_util::table::{Align, Table};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    concurrency: usize,
    requests: usize,
    qps: f64,
    mean_us: f64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_usizes(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v
            .split(',')
            .filter_map(|x| x.trim().parse().ok())
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Deterministic 80/20 sim/analogy mix over the vocabulary.
fn query_mix(n_words: u32, n: usize, word_of: impl Fn(u32) -> String) -> Vec<Query> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    (0..n)
        .map(|_| {
            if next(10) < 8 {
                Query::Similar {
                    word: word_of(next(n_words as u64) as u32),
                }
            } else {
                Query::Analogy {
                    a: word_of(next(n_words as u64) as u32),
                    b: word_of(next(n_words as u64) as u32),
                    c: word_of(next(n_words as u64) as u32),
                }
            }
        })
        .collect()
}

fn main() {
    obs_init();
    let scale = scale_from_env(Scale::Tiny);
    let levels = env_usizes("SERVE_CONCURRENCY", &[1, 2, 4, 8]);
    let requests = env_usize("SERVE_REQUESTS", 2000);
    let k = env_usize("SERVE_K", 10);
    let n_shards = env_usize("SERVE_SHARDS", 8);
    let dim = env_usize("SERVE_DIM", 128);
    let hosts = env_usize("SERVE_HOSTS", 4);
    let seed = 42u64;

    let preset = DatasetPreset::by_name("1-billion").expect("builtin preset");
    eprintln!("[serve_load] preparing {} ({scale:?}) ...", preset.name);
    let d = prepare(preset, scale, seed);
    let params = Hyperparams {
        dim,
        epochs: 1,
        negative: 5,
        min_count: 1,
        seed: 1,
        ..Hyperparams::default()
    };

    // Train through the distributed engine with checkpointing on, then
    // load the store from the checkpoint — the exact serving path.
    let ckdir = std::env::temp_dir().join(format!("gw2v-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckdir);
    eprintln!("[serve_load] training {hosts}-host model (dim {dim}) ...");
    let t_train = Instant::now();
    DistributedTrainer::new(params, DistConfig::paper_default(hosts))
        .with_checkpointing(&ckdir, 1)
        .train(&d.corpus, &d.vocab);
    eprintln!(
        "[serve_load] trained in {:.1}s; loading store ...",
        t_train.elapsed().as_secs_f64()
    );
    let t_load = Instant::now();
    let (store, summary) = ShardedStore::load(&ckdir, n_shards).expect("checkpoint loads");
    eprintln!(
        "[serve_load] store: {} x {} vectors, {} shards, epoch {} ({:.3}s load)",
        store.len(),
        store.dim(),
        store.n_shards(),
        summary.epoch,
        t_load.elapsed().as_secs_f64()
    );

    let n_words = d.vocab.len() as u32;
    let queries = query_mix(n_words, requests, |id| d.vocab.word_of(id).to_owned());

    let mut table = Table::new(vec![
        "Threads", "Requests", "QPS", "mean µs", "p50 µs", "p90 µs", "p99 µs", "max µs",
    ])
    .with_aligns(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut rows = Vec::new();
    for &c in &levels {
        let c = c.max(1);
        let hist = LogHistogram::new();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for chunk in queries.chunks(queries.len().div_ceil(c)) {
                let (store, vocab, hist) = (&store, &d.vocab, &hist);
                scope.spawn(move || {
                    let engine = QueryEngine::new(store, vocab);
                    for q in chunk {
                        let t = Instant::now();
                        let answer = engine.answer(q, k);
                        let ns = t.elapsed().as_nanos() as u64;
                        hist.record(ns);
                        gw2v_obs::observe("serve.request_ns", ns);
                        assert!(answer.hits.is_ok(), "in-vocab query must answer");
                    }
                });
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        let s = hist.summary();
        let us = |ns: u64| ns as f64 / 1000.0;
        let row = Row {
            concurrency: c,
            requests: queries.len(),
            qps: queries.len() as f64 / wall,
            mean_us: s.mean / 1000.0,
            p50_us: us(s.p50),
            p90_us: us(s.p90),
            p99_us: us(s.p99),
            max_us: us(s.max),
        };
        table.add_row(vec![
            format!("{c}"),
            format!("{}", row.requests),
            format!("{:.0}", row.qps),
            format!("{:.1}", row.mean_us),
            format!("{:.1}", row.p50_us),
            format!("{:.1}", row.p90_us),
            format!("{:.1}", row.p99_us),
            format!("{:.1}", row.max_us),
        ]);
        rows.push(row);
    }
    print!("{table}");
    write_json_run("serve_load", scale, seed, &rows);
    let _ = std::fs::remove_dir_all(&ckdir);
}
