#!/usr/bin/env bash
# Benchmark snapshot: run the criterion microbenches twice — once with the
# runtime-dispatched kernels (AVX2+FMA where available) and once with
# GW2V_FORCE_SCALAR=1 — and emit a machine-readable JSON file with the
# per-benchmark ns/iter for both backends and the scalar/simd speedup.
#
# Usage:
#   scripts/bench_snapshot.sh [output.json]
#
# Defaults to BENCH_<YYYY-MM-DD>.json in the repo root. The per-benchmark
# measurement budget can be tuned with GW2V_BENCH_MS (ms, default 300).
#
# The vendored criterion stub prints one line per benchmark:
#   BENCH_RESULT\t<group>/<id>\t<ns_per_iter>\t<iters>
# which is all this script parses — no jq or python required.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_$(date +%F).json}"
BENCHES=(sgns_kernels combiner_ops sync_plans epoch_end_to_end serve_query)

echo "building benches (release)..." >&2
cargo build --release --benches -q

run_backend() { # $1 = "1" to force scalar, $2 = output tsv
    local force="$1" out="$2"
    : >"$out"
    for b in "${BENCHES[@]}"; do
        echo "running $b (GW2V_FORCE_SCALAR=$force)..." >&2
        GW2V_FORCE_SCALAR="$force" cargo bench -q -p gw2v-bench --bench "$b" 2>/dev/null |
            grep -a $'^BENCH_RESULT\t' >>"$out"
    done
}

SCALAR_TSV="$(mktemp)"
SIMD_TSV="$(mktemp)"
trap 'rm -f "$SCALAR_TSV" "$SIMD_TSV"' EXIT

run_backend 1 "$SCALAR_TSV"
run_backend 0 "$SIMD_TSV"

awk -F'\t' -v date="$(date +%F)" -v host="$(uname -sm)" '
    FNR == 1 { file++ }
    file == 1 { scalar[$2] = $3; order[++n] = $2 }
    file == 2 { simd[$2] = $3 }
    END {
        printf "{\n"
        printf "  \"date\": \"%s\",\n", date
        printf "  \"host\": \"%s\",\n", host
        printf "  \"unit\": \"ns_per_iter\",\n"
        printf "  \"benchmarks\": [\n"
        for (i = 1; i <= n; i++) {
            id = order[i]
            sp = (simd[id] > 0) ? scalar[id] / simd[id] : 0
            printf "    {\"id\": \"%s\", \"scalar_ns\": %.1f, \"simd_ns\": %.1f, \"speedup\": %.3f}%s\n", \
                id, scalar[id], simd[id], sp, (i < n ? "," : "")
        }
        printf "  ]\n}\n"
    }
' "$SCALAR_TSV" "$SIMD_TSV" >"$OUT"

echo "wrote $OUT" >&2
grep -o '{"id"[^}]*}' "$OUT" >&2
