//! Communication volume accounting.
//!
//! Figure 9 of the paper annotates each configuration with the total
//! communication volume (TB) and splits execution time into computation
//! and communication. These counters are the source of both numbers in
//! the reproduction: every payload byte that crosses the simulated wire
//! is counted here, per phase and per host.

use serde::{Deserialize, Serialize};

/// Byte/message counters for one synchronization round, per host.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundVolume {
    /// Bytes sent by each host (reduce payloads it ships to masters plus
    /// broadcast payloads it ships to mirrors).
    pub sent: Vec<u64>,
    /// Bytes received by each host.
    pub recv: Vec<u64>,
    /// Messages sent by each host (one message = one node's row).
    pub msgs: Vec<u64>,
}

impl RoundVolume {
    /// Zeroed counters for `n_hosts` hosts.
    pub fn new(n_hosts: usize) -> Self {
        Self {
            sent: vec![0; n_hosts],
            recv: vec![0; n_hosts],
            msgs: vec![0; n_hosts],
        }
    }

    /// Records a transfer of `bytes` from `from` to `to`.
    #[inline]
    pub fn record(&mut self, from: usize, to: usize, bytes: u64) {
        self.sent[from] += bytes;
        self.recv[to] += bytes;
        self.msgs[from] += 1;
    }

    /// Total bytes moved this round (each byte counted once).
    pub fn total_bytes(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// The busiest host's `sent + recv` bytes — the round's network
    /// bottleneck under a full-duplex, non-blocking fabric.
    pub fn max_host_bytes(&self) -> u64 {
        self.sent
            .iter()
            .zip(&self.recv)
            .map(|(s, r)| s + r)
            .max()
            .unwrap_or(0)
    }
}

/// Accumulated statistics over a whole training run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Number of synchronization rounds performed.
    pub rounds: u64,
    /// Total bytes shipped mirror→master.
    pub reduce_bytes: u64,
    /// Total bytes shipped master→mirror.
    pub broadcast_bytes: u64,
    /// Total mirror→master messages (rows).
    pub reduce_msgs: u64,
    /// Total master→mirror messages (rows).
    pub broadcast_msgs: u64,
}

impl CommStats {
    /// Grand total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.reduce_bytes + self.broadcast_bytes
    }

    /// Merges another accumulation into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.rounds += other.rounds;
        self.reduce_bytes += other.reduce_bytes;
        self.broadcast_bytes += other.broadcast_bytes;
        self.reduce_msgs += other.reduce_msgs;
        self.broadcast_msgs += other.broadcast_msgs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_both_sides() {
        let mut v = RoundVolume::new(3);
        v.record(0, 2, 100);
        v.record(1, 2, 50);
        v.record(2, 0, 25);
        assert_eq!(v.sent, vec![100, 50, 25]);
        assert_eq!(v.recv, vec![25, 0, 150]);
        assert_eq!(v.msgs, vec![1, 1, 1]);
        assert_eq!(v.total_bytes(), 175);
        // Host 2: sent 25 + recv 150 = 175 is the max.
        assert_eq!(v.max_host_bytes(), 175);
    }

    #[test]
    fn empty_round() {
        let v = RoundVolume::new(2);
        assert_eq!(v.total_bytes(), 0);
        assert_eq!(v.max_host_bytes(), 0);
    }

    #[test]
    fn stats_merge() {
        let mut a = CommStats {
            rounds: 1,
            reduce_bytes: 10,
            broadcast_bytes: 20,
            reduce_msgs: 1,
            broadcast_msgs: 2,
        };
        let b = CommStats {
            rounds: 2,
            reduce_bytes: 5,
            broadcast_bytes: 5,
            reduce_msgs: 3,
            broadcast_msgs: 4,
        };
        a.merge(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.total_bytes(), 40);
        assert_eq!(a.reduce_msgs, 4);
        assert_eq!(a.broadcast_msgs, 6);
    }
}
