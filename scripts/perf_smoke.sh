#!/usr/bin/env bash
# Perf smoke: the two regressions this repo has actually shipped, turned
# into cheap CI assertions.
#
#   1. The parallel path must be *faster* than the baseline it replaced:
#      epoch/hogbatch_2threads < epoch/hogwild_2threads.
#   2. SIMD must never lose to scalar on the wire codec: every `wire/*`
#      bench's scalar/simd speedup must be >= GW2V_WIRE_MIN_SPEEDUP.
#      Both backends bottom out in the same memcpy on the SoA layout, so
#      healthy runs sit at 1.0–1.7x with a few percent of run-to-run
#      jitter; the default floor of 0.9 tolerates that jitter while
#      still catching a real kernel regression (the interleaved-layout
#      bug this guards against measured 0.64x).
#   3. The compressed codecs must actually pay for themselves: every
#      `wire/delta_*` and `wire/quant_*` bench must hit
#      GW2V_QUANT_MIN_SPEEDUP (default 1.0) vs forced-scalar — these
#      kernels do real arithmetic (bit-compare scatter, u8 quantize),
#      so SIMD losing to scalar means the dispatch table regressed.
#      Healthy runs: delta ~1.1x, quant encode ~8x.
#   4. Compressed payloads must stay ordered on a repeat-heavy Naive
#      workload: delta <= memo <= classic total bytes, pinned by the
#      `conformance_naive_wire_bytes_ordering` test.
#
# Parses the vendored criterion stub's output:
#   BENCH_RESULT\t<group>/<id>\t<ns_per_iter>\t<iters>
set -euo pipefail

cd "$(dirname "$0")/.."

MIN_SPEEDUP="${GW2V_WIRE_MIN_SPEEDUP:-0.9}"
QUANT_MIN_SPEEDUP="${GW2V_QUANT_MIN_SPEEDUP:-1.0}"

echo "building benches (release)..." >&2
cargo build --release --benches -q

bench() { # $1 = bench name, $2 = GW2V_FORCE_SCALAR value
    GW2V_FORCE_SCALAR="$2" cargo bench -q -p gw2v-bench --bench "$1" 2>/dev/null |
        grep -a $'^BENCH_RESULT\t'
}

echo "running epoch benches (dispatched)..." >&2
EPOCH="$(bench epoch_end_to_end 0)"
HB="$(awk -F'\t' '$2 == "epoch/hogbatch_2threads" { print $3 }' <<<"$EPOCH")"
HW="$(awk -F'\t' '$2 == "epoch/hogwild_2threads" { print $3 }' <<<"$EPOCH")"
awk -v hb="$HB" -v hw="$HW" 'BEGIN {
    if (hb + 0 <= 0 || hw + 0 <= 0) {
        print "FAIL: missing epoch/hogbatch_2threads or epoch/hogwild_2threads"
        exit 1
    }
    printf "epoch/hogbatch_2threads %.1f ms vs epoch/hogwild_2threads %.1f ms (%.2fx)\n", \
        hb / 1e6, hw / 1e6, hw / hb
    if (hb >= hw) {
        print "FAIL: hogbatch_2threads is not faster than hogwild_2threads"
        exit 1
    }
}'

echo "running wire benches (dispatched + forced-scalar)..." >&2
SIMD_TSV="$(mktemp)"
SCALAR_TSV="$(mktemp)"
trap 'rm -f "$SIMD_TSV" "$SCALAR_TSV"' EXIT
bench sync_plans 0 | awk -F'\t' '$2 ~ /^wire\// { print $2 "\t" $3 }' >"$SIMD_TSV"
bench sync_plans 1 | awk -F'\t' '$2 ~ /^wire\// { print $2 "\t" $3 }' >"$SCALAR_TSV"

awk -F'\t' -v min="$MIN_SPEEDUP" -v qmin="$QUANT_MIN_SPEEDUP" '
    FNR == 1 { file++ }
    file == 1 { simd[$1] = $2; order[++n] = $1 }
    file == 2 { scalar[$1] = $2 }
    END {
        if (n == 0) { print "FAIL: no wire/* benches found"; exit 1 }
        seen_compressed = 0
        bad = 0
        for (i = 1; i <= n; i++) {
            id = order[i]
            floor = min
            if (id ~ /^wire\/(delta|quant)_/) { floor = qmin; seen_compressed++ }
            sp = (simd[id] > 0) ? scalar[id] / simd[id] : 0
            verdict = (sp >= floor) ? "ok" : "FAIL"
            if (sp < floor) bad++
            printf "%-28s scalar %10.1f ns  simd %10.1f ns  speedup %.3f  floor %.2f  %s\n", \
                id, scalar[id], simd[id], sp, floor, verdict
        }
        if (seen_compressed < 4) {
            printf "FAIL: expected 4 wire/delta_* + wire/quant_* benches, found %d\n", \
                seen_compressed
            exit 1
        }
        if (bad > 0) {
            print "FAIL: " bad " wire bench(es) below their speedup floor"
            exit 1
        }
    }
' "$SIMD_TSV" "$SCALAR_TSV"

echo "running wire byte-ordering assertion (delta <= memo <= classic, Naive plan)..." >&2
cargo test --release -q -p graph-word2vec --test conformance \
    conformance_naive_wire_bytes_ordering

echo "perf smoke passed" >&2
