//! Single-source shortest paths.
//!
//! The paper's §2.4 uses SSSP to explain the graph-analytics model: node
//! label = tentative distance, operator = edge relaxation, reduction =
//! minimum. The distributed version is topology-driven Bellman-Ford: each
//! BSP round relaxes every local edge, then a min-reduce sync reconciles
//! proxies; the fixed point is reached when a round produces no update
//! anywhere.

use crate::bsp::{BspRuntime, SyncStats};
use crate::csr::Csr;
use crate::partition::Partitioned;

/// Unreachable marker.
pub const INF: u64 = u64::MAX;

/// Sequential reference: Dijkstra with a binary heap.
pub fn sssp_sequential(g: &Csr<u32>, source: u32) -> Vec<u64> {
    let mut dist = vec![INF; g.n_nodes()];
    let mut heap = std::collections::BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(std::cmp::Reverse((0u64, source)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in g.edges(u) {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(std::cmp::Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Distributed Bellman-Ford over a partitioned graph. Returns the
/// canonical distances and the communication statistics.
pub fn sssp_distributed(parted: &Partitioned<u32>, source: u32) -> (Vec<u64>, SyncStats) {
    let mut rt: BspRuntime<u64, u32> =
        BspRuntime::new(parted, |g| if g == source { 0 } else { INF });
    loop {
        // Compute phase: relax every local edge on every host.
        for host in 0..parted.parts.len() {
            let part = &parted.parts[host];
            let (labels, touched) = rt.host_mut(host);
            for u in 0..part.local_graph.n_nodes() as u32 {
                let du = labels[u as usize];
                if du == INF {
                    continue;
                }
                for (v, w) in part.local_graph.edges(u) {
                    let nd = du + w as u64;
                    if nd < labels[v as usize] {
                        labels[v as usize] = nd;
                        touched.set(v as usize);
                    }
                }
            }
        }
        // Min-reduce synchronization.
        let (any_touched, _) = rt.sync(|canonical, incoming| {
            if incoming < *canonical {
                *canonical = incoming;
                true
            } else {
                false
            }
        });
        if !any_touched {
            break;
        }
    }
    let dist = (0..parted.n_nodes as u32)
        .map(|g| rt.read_canonical(g))
        .collect();
    (dist, *rt.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::partition_blocked;
    use proptest::prelude::*;

    #[test]
    fn line_graph() {
        // 0 -(2)-> 1 -(3)-> 2
        let g = Csr::from_edges(3, &[(0, 1, 2u32), (1, 2, 3)]);
        assert_eq!(sssp_sequential(&g, 0), vec![0, 2, 5]);
        for hosts in [1, 2, 3] {
            let p = partition_blocked(&g, hosts);
            let (d, _) = sssp_distributed(&p, 0);
            assert_eq!(d, vec![0, 2, 5], "hosts={hosts}");
        }
    }

    #[test]
    fn unreachable_nodes_stay_inf() {
        let g = Csr::from_edges(4, &[(0, 1, 1u32)]);
        let p = partition_blocked(&g, 2);
        let (d, _) = sssp_distributed(&p, 0);
        assert_eq!(d, vec![0, 1, INF, INF]);
    }

    #[test]
    fn shorter_path_via_detour() {
        // Direct 0->2 costs 10; detour 0->1->2 costs 3.
        let g = Csr::from_edges(3, &[(0, 2, 10u32), (0, 1, 1), (1, 2, 2)]);
        let p = partition_blocked(&g, 3);
        let (d, _) = sssp_distributed(&p, 0);
        assert_eq!(d, vec![0, 1, 3]);
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let g = gen::uniform_random(50, 300, 9, seed);
            let want = sssp_sequential(&g, 0);
            for hosts in [1, 2, 4, 7] {
                let p = partition_blocked(&g, hosts);
                let (got, _) = sssp_distributed(&p, 0);
                assert_eq!(got, want, "seed={seed} hosts={hosts}");
            }
        }
    }

    #[test]
    fn matches_on_grid_long_diameter() {
        let g = gen::grid(12, 5);
        let want = sssp_sequential(&g, 0);
        let p = partition_blocked(&g, 4);
        let (got, stats) = sssp_distributed(&p, 0);
        assert_eq!(got, want);
        // Grid diameter forces multiple BSP rounds.
        assert!(stats.rounds >= 3, "rounds = {}", stats.rounds);
    }

    #[test]
    fn matches_on_rmat() {
        let g = gen::rmat(7, 6, 77, gen::RMAT_GRAPH500);
        let want = sssp_sequential(&g, 0);
        let p = partition_blocked(&g, 5);
        let (got, _) = sssp_distributed(&p, 0);
        assert_eq!(got, want);
    }

    #[test]
    fn communication_happens_beyond_one_host() {
        let g = gen::uniform_random(40, 200, 5, 4);
        let p1 = partition_blocked(&g, 1);
        let (_, s1) = sssp_distributed(&p1, 0);
        assert_eq!(s1.reduce_msgs, 0, "single host never communicates");
        let p4 = partition_blocked(&g, 4);
        let (_, s4) = sssp_distributed(&p4, 0);
        assert!(s4.reduce_msgs > 0);
        assert!(s4.broadcast_msgs > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_distributed_matches_sequential(
            n in 2usize..40,
            n_hosts in 1usize..6,
            raw in proptest::collection::vec((0u32..40, 0u32..40, 1u32..10), 1..150),
        ) {
            let edges: Vec<(u32, u32, u32)> = raw
                .into_iter()
                .map(|(s, d, w)| (s % n as u32, d % n as u32, w))
                .collect();
            let g = Csr::from_edges(n, &edges);
            let want = sssp_sequential(&g, 0);
            let p = partition_blocked(&g, n_hosts);
            let (got, _) = sssp_distributed(&p, 0);
            prop_assert_eq!(got, want);
        }
    }
}
