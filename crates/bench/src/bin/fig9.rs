//! Figure 9 — "Breakdown of execution time into computation and
//! communication [...] along with the total communication volume
//! presented on the bars for all 3 variants" at 2(3), 8(12), 32(48)
//! hosts on each dataset.
//!
//! Expected shape: computation scales down with hosts; communication
//! volume grows with hosts (replication × sync frequency);
//! RepModel-Opt moves ~2× less volume than RepModel-Naive; PullModel
//! sits between them.

use gw2v_bench::{
    bench_params, datasets_from_env, epochs_from_env, hosts_from_env, obs_init, prepare,
    scale_from_env, write_json_run,
};
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_corpus::datasets::Scale;
use gw2v_gluon::plan::SyncPlan;
use gw2v_util::table::{fmt_bytes, fmt_secs, Align, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    dataset: String,
    plan: String,
    hosts: usize,
    sync_frequency: usize,
    compute_secs: f64,
    comm_secs: f64,
    comm_volume_bytes: u64,
    reduce_bytes: u64,
    broadcast_bytes: u64,
}

fn main() {
    obs_init();
    let scale = scale_from_env(Scale::Small);
    let epochs = epochs_from_env(1);
    let host_counts = hosts_from_env(&[2, 8, 32]);
    let plans = [
        SyncPlan::RepModelNaive,
        SyncPlan::RepModelOpt,
        SyncPlan::PullModel,
    ];
    println!(
        "Figure 9: computation/communication breakdown and volume \
         (scale {scale:?}, {epochs} epoch(s))\n"
    );
    let mut bars = Vec::new();
    for preset in datasets_from_env() {
        eprintln!("[fig9] preparing {} ...", preset.name);
        let d = prepare(preset, scale, 42);
        let params = bench_params(scale, epochs, 1);
        let mut table = Table::new(vec!["Plan", "Hosts(S)", "Compute", "Comm", "Volume"])
            .with_aligns(&[
                Align::Left,
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for plan in plans {
            for &hosts in &host_counts {
                eprintln!(
                    "[fig9] {} {} hosts={hosts} ...",
                    preset.paper_name,
                    plan.label()
                );
                let mut config = DistConfig::paper_default(hosts);
                config.plan = plan;
                let result =
                    DistributedTrainer::new(params.clone(), config).train(&d.corpus, &d.vocab);
                let freq = config.sync_rounds;
                table.add_row(vec![
                    plan.label().to_owned(),
                    format!("{hosts}({freq})"),
                    fmt_secs(result.compute_time),
                    fmt_secs(result.comm_time),
                    fmt_bytes(result.stats.total_bytes()),
                ]);
                bars.push(Bar {
                    dataset: preset.paper_name.to_owned(),
                    plan: plan.label().to_owned(),
                    hosts,
                    sync_frequency: freq,
                    compute_secs: result.compute_time,
                    comm_secs: result.comm_time,
                    comm_volume_bytes: result.stats.total_bytes(),
                    reduce_bytes: result.stats.reduce_bytes,
                    broadcast_bytes: result.stats.broadcast_bytes,
                });
            }
        }
        println!("--- {} ---", preset.paper_name);
        print!("{table}");
        // The paper's headline ratio: Opt volume vs Naive volume at 32 hosts.
        let vol = |plan: &str| {
            bars.iter()
                .find(|b| b.dataset == preset.paper_name && b.hosts == 32 && b.plan == plan)
                .map(|b| b.comm_volume_bytes)
        };
        if let (Some(naive), Some(opt)) = (vol("RepModel-Naive"), vol("RepModel-Opt")) {
            println!(
                "Naive/Opt volume ratio at 32 hosts: {:.2}x (paper: ~2x)\n",
                naive as f64 / opt as f64
            );
        }
    }
    write_json_run("fig9", scale, 1, &bars);
}
