//! The metrics registry: named counters, gauges, and histograms.
//!
//! A [`MetricsRegistry`] is a name → instrument map guarded by one mutex;
//! the mutex is taken only when an instrument handle is created or a
//! snapshot is read. The handles themselves ([`Counter`], [`Gauge`],
//! [`Histogram`]) are cheap `Arc`s over atomics and can be cached across
//! rounds by hot code. Every recording method first checks the global
//! [`crate::enabled`] flag — one relaxed atomic load — so a disabled
//! registry costs a predicted branch per call site and nothing else.

use crate::hist::{HistSummary, LogHistogram};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter handle.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Relaxed);
        }
    }

    /// Adds 1 (no-op while metrics are disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

/// A last-write-wins `f64` gauge handle (stored as bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

/// A handle to a log-bucketed histogram (see [`LogHistogram`]).
#[derive(Clone, Debug)]
pub struct Histogram {
    hist: Arc<LogHistogram>,
}

impl Histogram {
    /// Records one observation (no-op while metrics are disabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if crate::enabled() {
            self.hist.record(v);
        }
    }

    /// Records a duration in integer nanoseconds.
    #[inline]
    pub fn observe_secs(&self, secs: f64) {
        self.observe((secs.max(0.0) * 1e9) as u64);
    }

    /// Read access to the underlying histogram.
    pub fn inner(&self) -> &LogHistogram {
        &self.hist
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    hists: BTreeMap<String, Arc<LogHistogram>>,
}

/// A named collection of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let cell = inner
            .counters
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            cell: Arc::clone(cell),
        }
    }

    /// Returns (registering on first use) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let cell = inner
            .gauges
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits())));
        Gauge {
            bits: Arc::clone(cell),
        }
    }

    /// Returns (registering on first use) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let cell = inner
            .hists
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(LogHistogram::new()));
        Histogram {
            hist: Arc::clone(cell),
        }
    }

    /// A serializable point-in-time snapshot of every instrument.
    ///
    /// Instruments that never recorded anything are omitted, so the
    /// snapshot reflects what actually ran.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Relaxed)))
                .filter(|&(_, v)| v != 0)
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Relaxed))))
                .filter(|&(_, v)| v != 0.0)
                .collect(),
            histograms: inner
                .hists
                .iter()
                .filter(|(_, h)| h.count() > 0)
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Zeroes every instrument (handles stay valid).
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("registry poisoned");
        for c in inner.counters.values() {
            c.store(0, Relaxed);
        }
        for g in inner.gauges.values() {
            g.store(0.0f64.to_bits(), Relaxed);
        }
        for h in inner.hists.values() {
            h.reset();
        }
    }
}

/// A serializable snapshot of a [`MetricsRegistry`] — the uniform
/// `metrics` block embedded in every benchmark JSON record.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name (non-zero only).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (non-zero only).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name (non-empty only).
    pub histograms: BTreeMap<String, HistSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests toggle the global enabled flag; they live in one #[test]
    // body to avoid interleaving with each other.
    #[test]
    fn registry_roundtrip() {
        let r = MetricsRegistry::new();
        crate::set_enabled(true);

        let c = r.counter("pairs");
        c.add(3);
        c.inc();
        assert_eq!(c.value(), 4);
        // Same name → same instrument.
        assert_eq!(r.counter("pairs").value(), 4);

        let g = r.gauge("lr");
        g.set(0.025);
        assert_eq!(g.value(), 0.025);

        let h = r.histogram("round_ns");
        h.observe(1000);
        h.observe(3000);
        assert_eq!(h.inner().count(), 2);

        let snap = r.snapshot();
        assert_eq!(snap.counters["pairs"], 4);
        assert_eq!(snap.gauges["lr"], 0.025);
        assert_eq!(snap.histograms["round_ns"].count, 2);

        // Disabled handles are inert but readable.
        crate::set_enabled(false);
        c.add(100);
        g.set(9.0);
        h.observe(5);
        assert_eq!(c.value(), 4);
        assert_eq!(g.value(), 0.025);
        assert_eq!(h.inner().count(), 2);

        // Reset zeroes everything; untouched instruments are omitted.
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
