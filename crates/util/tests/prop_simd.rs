//! SIMD-vs-scalar equivalence suite.
//!
//! The dispatched kernels (`fvec::*`, AVX2+FMA on hosts that support it)
//! must agree with the portable scalar reference (`simd::scalar::*`) on
//! every input shape the trainers produce:
//!
//! * all lengths 0..=512, including every non-multiple-of-8 tail, so both
//!   the 16-wide/8-wide vector bodies and the scalar tail paths are hit;
//! * within a scaled ~2-ULP-per-accumulation tolerance for reductions
//!   (the two backends sum in different association orders) and a 1-ULP
//!   FMA tolerance for element-wise kernels (FMA rounds `a*x + y` once,
//!   mul+add rounds twice);
//! * bit-exactly for kernels with one rounding per element (`scale`,
//!   `sub_into`, `add_assign`);
//! * propagating NaN/∞ identically (a lane is NaN under one backend iff
//!   it is NaN under the other).
//!
//! Run with `GW2V_FORCE_SCALAR=1` the dispatched side *is* the scalar
//! reference and every comparison collapses to exact equality — which is
//! how the seed's pre-SIMD results are reproduced.

use gw2v_util::fvec;
use gw2v_util::simd::scalar;
use proptest::prelude::*;

/// Relative closeness for element-wise FMA-vs-mul+add differences:
/// one rounding of difference on a term of magnitude `scale`.
fn fma_close(a: f32, b: f32, scale: f32) -> bool {
    if a == b || (a.is_nan() && b.is_nan()) {
        return true;
    }
    (a - b).abs() <= 2.0 * f32::EPSILON * (scale + a.abs().max(b.abs())) + 1e-30
}

/// Closeness for reductions over `n` terms whose absolute sum is
/// `abs_sum`: the backends associate differently, so allow ~2 ULP per
/// accumulation step, scaled by the mass actually summed.
fn reduce_close(a: f32, b: f32, n: usize, abs_sum: f32) -> bool {
    if a == b || (a.is_nan() && b.is_nan()) {
        return true;
    }
    let steps = (n as f32).max(8.0);
    (a - b).abs() <= 2.0 * f32::EPSILON * steps * (abs_sum + a.abs().max(b.abs())) + 1e-30
}

/// Deterministic patterned vector: varied signs and magnitudes, no two
/// adjacent lanes equal, so lane-shuffling bugs can't cancel out.
fn pattern(n: usize, salt: u32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let k = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            let mag = ((k >> 8) & 0xFF) as f32 / 32.0 - 4.0;
            if k & 1 == 0 {
                mag
            } else {
                -mag * 0.75
            }
        })
        .collect()
}

#[test]
fn dot_matches_scalar_all_lengths_0_to_512() {
    for n in 0..=512usize {
        let x = pattern(n, 1);
        let y = pattern(n, 2);
        let got = fvec::dot(&x, &y);
        let want = scalar::dot(&x, &y);
        let abs_sum: f32 = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum();
        assert!(
            reduce_close(got, want, n, abs_sum),
            "dot n={n}: {got} vs {want}"
        );
    }
}

#[test]
fn dot_norms_matches_scalar_all_lengths_0_to_512() {
    for n in 0..=512usize {
        let x = pattern(n, 3);
        let y = pattern(n, 4);
        let (xy, xx, yy) = fvec::dot_norms(&x, &y);
        let (sxy, sxx, syy) = scalar::dot_norms(&x, &y);
        let mass =
            |p: &[f32], q: &[f32]| -> f32 { p.iter().zip(q).map(|(a, b)| (a * b).abs()).sum() };
        assert!(reduce_close(xy, sxy, n, mass(&x, &y)), "xy n={n}");
        assert!(reduce_close(xx, sxx, n, mass(&x, &x)), "xx n={n}");
        assert!(reduce_close(yy, syy, n, mass(&y, &y)), "yy n={n}");
    }
}

#[test]
fn axpy_matches_scalar_all_lengths_0_to_512() {
    for n in 0..=512usize {
        let a = 0.37f32;
        let x = pattern(n, 5);
        let mut y = pattern(n, 6);
        let mut y_ref = y.clone();
        fvec::axpy(a, &x, &mut y);
        scalar::axpy(a, &x, &mut y_ref);
        for i in 0..n {
            assert!(
                fma_close(y[i], y_ref[i], (a * x[i]).abs()),
                "axpy n={n} lane {i}: {} vs {}",
                y[i],
                y_ref[i]
            );
        }
    }
}

#[test]
fn fused_grad_step_matches_scalar_all_lengths_0_to_512() {
    for n in 0..=512usize {
        let g = -0.21f32;
        let win = pattern(n, 7);
        let mut wout = pattern(n, 8);
        let mut neu1e = pattern(n, 9);
        let wout_old = wout.clone();
        let mut wout_ref = wout.clone();
        let mut neu1e_ref = neu1e.clone();
        fvec::fused_grad_step(g, &win, &mut wout, &mut neu1e);
        scalar::fused_grad_step(g, &win, &mut wout_ref, &mut neu1e_ref);
        for i in 0..n {
            // neu1e's FMA multiplies g by the *pre-update* wout.
            assert!(
                fma_close(neu1e[i], neu1e_ref[i], (g * wout_old[i]).abs()),
                "fused neu1e n={n} lane {i}"
            );
            assert!(
                fma_close(wout[i], wout_ref[i], (g * win[i]).abs()),
                "fused wout n={n} lane {i}"
            );
        }
    }
}

#[test]
fn wire_codec_matches_scalar_bitwise_all_lengths_0_to_512() {
    // encode_rows/decode_rows move bits without arithmetic, so the
    // dispatched backend must agree with the scalar reference byte-for-
    // byte (encode) and bit-for-bit (decode) on every length, including
    // every non-multiple-of-8 tail. NaN payloads, denormals and -0.0 all
    // ride through f32::from_bits untouched.
    let k = gw2v_util::simd::kernels();
    for n in 0..=512usize {
        let values: Vec<f32> = (0..n)
            .map(|i| {
                let bits = (i as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(0x7fc0_0000 * (i as u32 % 3));
                f32::from_bits(bits)
            })
            .collect();

        let mut enc = vec![0u8; n * 4];
        let mut enc_ref = vec![0u8; n * 4];
        (k.encode_rows)(&values, &mut enc);
        scalar::encode_rows(&values, &mut enc_ref);
        assert_eq!(enc, enc_ref, "encode_rows n={n}");

        let mut dec = vec![0.0f32; n];
        let mut dec_ref = vec![0.0f32; n];
        (k.decode_rows)(&enc, &mut dec);
        scalar::decode_rows(&enc_ref, &mut dec_ref);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&dec), bits(&dec_ref), "decode_rows n={n}");
        assert_eq!(
            bits(&dec),
            bits(&values),
            "decode must invert encode exactly, n={n}"
        );
    }
}

#[test]
fn single_rounding_kernels_match_scalar_bitwise() {
    // scale, sub_into, and add_assign perform exactly one IEEE operation
    // per lane on both backends, so the results must be bit-identical.
    for n in 0..=512usize {
        let x = pattern(n, 10);
        let y = pattern(n, 11);

        let mut s = x.clone();
        let mut s_ref = x.clone();
        fvec::scale(1.7, &mut s);
        scalar::scale(1.7, &mut s_ref);
        assert_eq!(s, s_ref, "scale n={n}");

        let mut d = vec![0.0; n];
        let mut d_ref = vec![0.0; n];
        fvec::sub_into(&x, &y, &mut d);
        scalar::sub_into(&x, &y, &mut d_ref);
        assert_eq!(d, d_ref, "sub_into n={n}");

        let mut a = x.clone();
        let mut a_ref = x.clone();
        fvec::add_assign(&mut a, &y);
        scalar::add_assign(&mut a_ref, &y);
        assert_eq!(a, a_ref, "add_assign n={n}");
    }
}

#[test]
fn nan_and_infinity_propagate_identically() {
    // Specials planted in the vector body, at a lane straddling the
    // 8-wide boundary, and in the scalar tail.
    let specials = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
    for n in [1usize, 7, 8, 9, 16, 19, 67] {
        for &s in &specials {
            for pos in [0, n / 2, n - 1] {
                let mut x = pattern(n, 12);
                x[pos] = s;
                let y = pattern(n, 13);

                let got = fvec::dot(&x, &y);
                let want = scalar::dot(&x, &y);
                assert_eq!(
                    got.is_nan(),
                    want.is_nan(),
                    "dot NaN-ness n={n} pos={pos} s={s}"
                );
                if !want.is_nan() {
                    assert_eq!(got, want, "dot special n={n} pos={pos} s={s}");
                }

                let mut y1 = y.clone();
                let mut y2 = y.clone();
                fvec::axpy(1.5, &x, &mut y1);
                scalar::axpy(1.5, &x, &mut y2);
                for i in 0..n {
                    assert_eq!(
                        y1[i].is_nan(),
                        y2[i].is_nan(),
                        "axpy NaN lane n={n} pos={pos} lane={i}"
                    );
                    if !y2[i].is_nan() {
                        assert_eq!(y1[i], y2[i], "axpy lane n={n} pos={pos} lane={i}");
                    }
                }

                // inf − inf and inf + (−inf) must turn into NaN on both.
                let mut d1 = vec![0.0; n];
                let mut d2 = vec![0.0; n];
                fvec::sub_into(&x, &x, &mut d1);
                scalar::sub_into(&x, &x, &mut d2);
                assert_eq!(
                    d1.iter().map(|v| v.is_nan()).collect::<Vec<_>>(),
                    d2.iter().map(|v| v.is_nan()).collect::<Vec<_>>(),
                    "sub_into NaN pattern n={n} pos={pos} s={s}"
                );
            }
        }
    }
}

proptest! {
    #[test]
    fn prop_dot_matches_scalar(
        pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 0..512)
    ) {
        let (x, y): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let got = fvec::dot(&x, &y);
        let want = scalar::dot(&x, &y);
        let abs_sum: f32 = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum();
        prop_assert!(
            reduce_close(got, want, x.len(), abs_sum),
            "n={}: {} vs {}", x.len(), got, want
        );
    }

    #[test]
    fn prop_dot_norms_matches_three_dots(
        pairs in proptest::collection::vec((-20.0f32..20.0, -20.0f32..20.0), 0..512)
    ) {
        let (x, y): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let (xy, xx, yy) = fvec::dot_norms(&x, &y);
        let n = x.len();
        let mass = |p: &[f32], q: &[f32]| -> f32 {
            p.iter().zip(q).map(|(a, b)| (a * b).abs()).sum()
        };
        prop_assert!(reduce_close(xy, fvec::dot(&x, &y), n, mass(&x, &y)));
        prop_assert!(reduce_close(xx, fvec::dot(&x, &x), n, mass(&x, &x)));
        prop_assert!(reduce_close(yy, fvec::dot(&y, &y), n, mass(&y, &y)));
    }

    #[test]
    fn prop_axpy_matches_scalar(
        a in -4.0f32..4.0,
        pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 0..512)
    ) {
        let (x, y0): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let mut y = y0.clone();
        let mut y_ref = y0;
        fvec::axpy(a, &x, &mut y);
        scalar::axpy(a, &x, &mut y_ref);
        for i in 0..x.len() {
            prop_assert!(
                fma_close(y[i], y_ref[i], (a * x[i]).abs()),
                "lane {}: {} vs {}", i, y[i], y_ref[i]
            );
        }
    }

    #[test]
    fn prop_fused_grad_step_is_axpy_pair(
        g in -2.0f32..2.0,
        triples in proptest::collection::vec(
            (-20.0f32..20.0, -20.0f32..20.0, -20.0f32..20.0), 0..512)
    ) {
        // The fused kernel must equal the two-axpy sequence it replaces,
        // computed by the scalar reference (which is exactly that pair).
        let n = triples.len();
        let mut win = Vec::with_capacity(n);
        let mut wout = Vec::with_capacity(n);
        let mut neu1e = Vec::with_capacity(n);
        for (a, b, c) in triples {
            win.push(a);
            wout.push(b);
            neu1e.push(c);
        }
        let wout_old = wout.clone();
        let (mut wout_ref, mut neu1e_ref) = (wout.clone(), neu1e.clone());
        scalar::axpy(g, &wout_old, &mut neu1e_ref);
        scalar::axpy(g, &win, &mut wout_ref);
        fvec::fused_grad_step(g, &win, &mut wout, &mut neu1e);
        for i in 0..n {
            // neu1e's FMA multiplies g by the *pre-update* wout.
            prop_assert!(fma_close(neu1e[i], neu1e_ref[i], (g * wout_old[i]).abs()));
            prop_assert!(fma_close(wout[i], wout_ref[i], (g * win[i]).abs()));
        }
    }

    #[test]
    fn prop_gemm_nt_matches_scalar(
        m in 0usize..9,
        n in 0usize..34,
        k in 0usize..72,
        salt in 0u32..1000,
    ) {
        let a = pattern(m * k, salt);
        let b = pattern(n * k, salt.wrapping_add(1));
        let c0 = pattern(m * n, salt.wrapping_add(2));
        let mut c = c0.clone();
        let mut c_ref = c0;
        fvec::gemm_nt(m, n, k, &a, &b, &mut c);
        scalar::gemm_nt(m, n, k, &a, &b, &mut c_ref);
        for i in 0..m {
            for j in 0..n {
                let abs_sum: f32 = (0..k)
                    .map(|p| (a[i * k + p] * b[j * k + p]).abs())
                    .sum();
                prop_assert!(
                    reduce_close(c[i * n + j], c_ref[i * n + j], k, abs_sum),
                    "nt ({},{},{}) elem ({},{}): {} vs {}",
                    m, n, k, i, j, c[i * n + j], c_ref[i * n + j]
                );
            }
        }
    }

    #[test]
    fn prop_gemm_tn_matches_scalar(
        m in 0usize..9,
        n in 0usize..72,
        k in 0usize..34,
        salt in 0u32..1000,
    ) {
        let a = pattern(k * m, salt);
        let b = pattern(k * n, salt.wrapping_add(1));
        let c0 = pattern(m * n, salt.wrapping_add(2));
        let mut c = c0.clone();
        let mut c_ref = c0;
        fvec::gemm_tn(m, n, k, &a, &b, &mut c);
        scalar::gemm_tn(m, n, k, &a, &b, &mut c_ref);
        for i in 0..m {
            for j in 0..n {
                let abs_sum: f32 = (0..k)
                    .map(|l| (a[l * m + i] * b[l * n + j]).abs())
                    .sum();
                prop_assert!(
                    reduce_close(c[i * n + j], c_ref[i * n + j], k, abs_sum),
                    "tn ({},{},{}) elem ({},{}): {} vs {}",
                    m, n, k, i, j, c[i * n + j], c_ref[i * n + j]
                );
            }
        }
    }

    #[test]
    fn prop_quantize_matches_scalar_bitwise_and_bounds_error(
        dim in 1usize..48,
        rows in proptest::collection::vec(-100.0f32..100.0, 1..480),
    ) {
        // Truncate to whole rows; quantize through the dispatched table
        // and the scalar reference — codes, scales, and offsets must be
        // bit-identical (the kernels are FMA-free and round ties-to-even
        // on both backends by contract), and reconstruction must land
        // within half a quantization step per element.
        let n = rows.len() / dim;
        prop_assume!(n > 0);
        let values = &rows[..n * dim];
        let k = gw2v_util::simd::kernels();
        let mut s = vec![0.0f32; n];
        let mut o = vec![0.0f32; n];
        let mut c = vec![0u8; n * dim];
        let (mut s_ref, mut o_ref, mut c_ref) = (s.clone(), o.clone(), c.clone());
        (k.quantize_rows)(values, dim, &mut s, &mut o, &mut c);
        scalar::quantize_rows(values, dim, &mut s_ref, &mut o_ref, &mut c_ref);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&s), bits(&s_ref), "scales");
        prop_assert_eq!(bits(&o), bits(&o_ref), "offsets");
        prop_assert_eq!(&c, &c_ref, "codes");

        let mut back = vec![0.0f32; n * dim];
        let mut back_ref = vec![0.0f32; n * dim];
        (k.dequantize_rows)(&c, dim, &s, &o, &mut back);
        scalar::dequantize_rows(&c_ref, dim, &s_ref, &o_ref, &mut back_ref);
        prop_assert_eq!(bits(&back), bits(&back_ref), "dequant");
        for r in 0..n {
            let tol = s[r] * 0.5 + 1e-4 * (1.0 + o[r].abs());
            for i in 0..dim {
                let (v, b) = (values[r * dim + i], back[r * dim + i]);
                prop_assert!(
                    (v - b).abs() <= tol,
                    "row {} lane {}: {} vs {} (tol {})", r, i, v, b, tol
                );
            }
        }
    }

    #[test]
    fn prop_single_rounding_kernels_bitwise(
        a in -4.0f32..4.0,
        pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 0..512)
    ) {
        let (x, y): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let mut s = x.clone();
        let mut s_ref = x.clone();
        fvec::scale(a, &mut s);
        scalar::scale(a, &mut s_ref);
        prop_assert_eq!(s, s_ref);

        let n = x.len();
        let mut d = vec![0.0; n];
        let mut d_ref = vec![0.0; n];
        fvec::sub_into(&x, &y, &mut d);
        scalar::sub_into(&x, &y, &mut d_ref);
        prop_assert_eq!(d, d_ref);

        let mut t = x.clone();
        let mut t_ref = x;
        fvec::add_assign(&mut t, &y);
        scalar::add_assign(&mut t_ref, &y);
        prop_assert_eq!(t, t_ref);
    }
}
