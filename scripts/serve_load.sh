#!/usr/bin/env bash
# Serving load snapshot: train a small model through the distributed
# path, load it into the sharded store from its GW2VCKP1 checkpoint, and
# replay a synthetic 80/20 similarity/analogy mix closed-loop at each
# concurrency level. Writes results/serve_load.json (provenance + the
# gw2v-obs metrics snapshot + per-level throughput and p50/p90/p99
# latency) and prints the latency table.
#
# Usage:
#   scripts/serve_load.sh
#
# Knobs (all optional, see crates/bench/src/bin/serve_load.rs):
#   GW2V_SCALE=tiny|small|medium   corpus scale            (default tiny)
#   SERVE_CONCURRENCY=1,2,4,8      client thread sweep
#   SERVE_REQUESTS=2000            requests per level
#   SERVE_K=10 SERVE_SHARDS=8 SERVE_DIM=128 SERVE_HOSTS=4
#   GW2V_FORCE_SCALAR=1            pin the scalar kernels
set -euo pipefail

cd "$(dirname "$0")/.."

echo "building serve_load (release)..." >&2
cargo build --release -q -p gw2v-bench --bin serve_load

mkdir -p results
./target/release/serve_load
echo "wrote results/serve_load.json" >&2
