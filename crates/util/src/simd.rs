//! Runtime-dispatched SIMD kernels for the dense `f32` hot paths.
//!
//! Every kernel exists twice: a portable scalar reference in [`scalar`]
//! (the exact 4-way-unrolled code the workspace shipped with, kept
//! bit-for-bit stable so forced-scalar runs reproduce historical results)
//! and a hand-written AVX2+FMA implementation in the private `avx2`
//! module. A process-wide dispatch table is selected once, on first use,
//! by [`kernels`]:
//!
//! 1. if the `GW2V_FORCE_SCALAR` environment variable is set to `1` or
//!    `true`, the scalar table is used unconditionally (tests, benches,
//!    and bit-exact reproduction of pre-SIMD results);
//! 2. otherwise, on x86/x86_64 hosts where `is_x86_feature_detected!`
//!    reports both `avx2` and `fma`, the vector table is used;
//! 3. otherwise the scalar table is the portable fallback.
//!
//! The public entry points in [`crate::fvec`] route through this table, so
//! callers never name a backend. [`backend_name`] reports which table won,
//! for logs and bench output.
//!
//! # Numerics
//!
//! The AVX2 kernels use fused multiply-add and 8/16-lane reassociation;
//! results may differ from the scalar reference by a couple of ULPs per
//! element (reductions like `dot` additionally reassociate the sum).
//! NaN and ±∞ propagate the same way in both backends. The property suite
//! in `tests/prop_simd.rs` pins scalar/SIMD agreement across lengths
//! 0–512, including non-multiple-of-8 tails and non-finite inputs.

use std::sync::OnceLock;

/// Signature of the one-pass `(x·y, x·x, y·y)` kernel.
pub type DotNormsFn = fn(x: &[f32], y: &[f32]) -> (f32, f32, f32);

/// The per-backend kernel function table.
///
/// # Dispatch contract
///
/// * The table is chosen **once per process** (on the first [`kernels`]
///   call) and never changes afterwards: a run is entirely scalar or
///   entirely AVX2, so intermediate results compose bit-identically
///   across every crate in the workspace.
/// * Every entry accepts **any slice length**, including zero and
///   non-multiple-of-lane-width tails; vector backends must handle the
///   tail with the scalar reference code so the last elements are not
///   special-cased differently between backends.
/// * All slices must have matching lengths (debug-asserted);
///   `fused_grad_step` requires `win`, `wout`, and `neu1e` to be
///   non-overlapping, which Rust's borrow rules already guarantee for
///   safe callers.
/// * A backend may reassociate reductions and use FMA (see the module
///   docs on numerics) but must propagate NaN/±∞ identically to the
///   scalar reference and must never read or write out of bounds —
///   new backends are gated by `tests/prop_simd.rs` before dispatch.
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    /// Dot product `x · y`.
    pub dot: fn(x: &[f32], y: &[f32]) -> f32,
    /// `y += a · x`.
    pub axpy: fn(a: f32, x: &[f32], y: &mut [f32]),
    /// `x *= a`.
    pub scale: fn(a: f32, x: &mut [f32]),
    /// `out = x - y`.
    pub sub_into: fn(x: &[f32], y: &[f32], out: &mut [f32]),
    /// `x += y`.
    pub add_assign: fn(x: &mut [f32], y: &[f32]),
    /// One-pass `(x·y, x·x, y·y)` for cosine similarity.
    pub dot_norms: DotNormsFn,
    /// Fused SGNS gradient step: `neu1e += g·wout; wout += g·win`, reading
    /// each row once (`wout` is read before it is updated).
    pub fused_grad_step: fn(g: f32, win: &[f32], wout: &mut [f32], neu1e: &mut [f32]),
    /// Bulk wire encode: serializes `values` as little-endian IEEE-754
    /// bytes into `out` (`out.len() == 4·values.len()`), bit-preserving
    /// (NaN payloads survive).
    pub encode_rows: fn(values: &[f32], out: &mut [u8]),
    /// Bulk wire decode: the exact inverse of `encode_rows`
    /// (`src.len() == 4·values.len()`).
    pub decode_rows: fn(src: &[u8], values: &mut [f32]),
}

static SCALAR_KERNELS: Kernels = Kernels {
    dot: scalar::dot,
    axpy: scalar::axpy,
    scale: scalar::scale,
    sub_into: scalar::sub_into,
    add_assign: scalar::add_assign,
    dot_norms: scalar::dot_norms,
    fused_grad_step: scalar::fused_grad_step,
    encode_rows: scalar::encode_rows,
    decode_rows: scalar::decode_rows,
};

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
static AVX2_KERNELS: Kernels = Kernels {
    dot: |x, y| unsafe { avx2::dot(x, y) },
    axpy: |a, x, y| unsafe { avx2::axpy(a, x, y) },
    scale: |a, x| unsafe { avx2::scale(a, x) },
    sub_into: |x, y, out| unsafe { avx2::sub_into(x, y, out) },
    add_assign: |x, y| unsafe { avx2::add_assign(x, y) },
    dot_norms: |x, y| unsafe { avx2::dot_norms(x, y) },
    fused_grad_step: |g, win, wout, neu1e| unsafe { avx2::fused_grad_step(g, win, wout, neu1e) },
    encode_rows: |values, out| unsafe { avx2::encode_rows(values, out) },
    decode_rows: |src, values| unsafe { avx2::decode_rows(src, values) },
};

struct Selected {
    kernels: &'static Kernels,
    name: &'static str,
}

static SELECTED: OnceLock<Selected> = OnceLock::new();

fn select() -> Selected {
    if force_scalar() {
        return Selected {
            kernels: &SCALAR_KERNELS,
            name: "scalar (forced by GW2V_FORCE_SCALAR)",
        };
    }
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Selected {
                kernels: &AVX2_KERNELS,
                name: "avx2+fma",
            };
        }
    }
    Selected {
        kernels: &SCALAR_KERNELS,
        name: "scalar",
    }
}

/// True if `GW2V_FORCE_SCALAR` requests the scalar backend.
pub fn force_scalar() -> bool {
    matches!(
        std::env::var("GW2V_FORCE_SCALAR").as_deref(),
        Ok("1") | Ok("true")
    )
}

/// The process-wide kernel table (selected once, on first call).
#[inline]
pub fn kernels() -> &'static Kernels {
    SELECTED.get_or_init(select).kernels
}

/// Human-readable name of the selected backend.
pub fn backend_name() -> &'static str {
    SELECTED.get_or_init(select).name
}

/// Portable scalar reference kernels.
///
/// These are the workspace's original 4-way-unrolled loops, moved here
/// verbatim: their exact operation order is load-bearing, because forced
/// scalar runs (`GW2V_FORCE_SCALAR=1`) must reproduce pre-dispatch results
/// bit-for-bit, and the SIMD property tests compare against them.
pub mod scalar {
    /// Dot product `x · y` with four independent accumulators, folded as
    /// `(s0 + s1) + (s2 + s3)`.
    #[inline]
    pub fn dot(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let chunks = n / 4;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for i in 0..chunks {
            let b = i * 4;
            s0 += x[b] * y[b];
            s1 += x[b + 1] * y[b + 1];
            s2 += x[b + 2] * y[b + 2];
            s3 += x[b + 3] * y[b + 3];
        }
        let mut s = (s0 + s1) + (s2 + s3);
        for i in chunks * 4..n {
            s += x[i] * y[i];
        }
        s
    }

    /// `y += a * x`.
    #[inline]
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let chunks = n / 4;
        for i in 0..chunks {
            let b = i * 4;
            y[b] += a * x[b];
            y[b + 1] += a * x[b + 1];
            y[b + 2] += a * x[b + 2];
            y[b + 3] += a * x[b + 3];
        }
        for i in chunks * 4..n {
            y[i] += a * x[i];
        }
    }

    /// `x *= a`.
    #[inline]
    pub fn scale(a: f32, x: &mut [f32]) {
        for v in x {
            *v *= a;
        }
    }

    /// `out = x - y`.
    #[inline]
    pub fn sub_into(x: &[f32], y: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        debug_assert_eq!(x.len(), out.len());
        for i in 0..x.len() {
            out[i] = x[i] - y[i];
        }
    }

    /// `x += y`.
    #[inline]
    pub fn add_assign(x: &mut [f32], y: &[f32]) {
        axpy(1.0, y, x);
    }

    /// One-pass `(x·y, x·x, y·y)`. Each reduction uses the same four
    /// accumulators and fold order as [`dot`], so the three results are
    /// bit-identical to three separate `dot` calls.
    #[inline]
    pub fn dot_norms(x: &[f32], y: &[f32]) -> (f32, f32, f32) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let chunks = n / 4;
        let mut xy = [0.0f32; 4];
        let mut xx = [0.0f32; 4];
        let mut yy = [0.0f32; 4];
        for i in 0..chunks {
            let b = i * 4;
            for l in 0..4 {
                let (a, c) = (x[b + l], y[b + l]);
                xy[l] += a * c;
                xx[l] += a * a;
                yy[l] += c * c;
            }
        }
        let mut sxy = (xy[0] + xy[1]) + (xy[2] + xy[3]);
        let mut sxx = (xx[0] + xx[1]) + (xx[2] + xx[3]);
        let mut syy = (yy[0] + yy[1]) + (yy[2] + yy[3]);
        for i in chunks * 4..n {
            let (a, c) = (x[i], y[i]);
            sxy += a * c;
            sxx += a * a;
            syy += c * c;
        }
        (sxy, sxx, syy)
    }

    /// Fused SGNS gradient step. Element-wise this is exactly
    /// `axpy(g, wout, neu1e)` followed by `axpy(g, win, wout)`: each lane
    /// is independent, so fusing the loops preserves bitwise results.
    #[inline]
    pub fn fused_grad_step(g: f32, win: &[f32], wout: &mut [f32], neu1e: &mut [f32]) {
        debug_assert_eq!(win.len(), wout.len());
        debug_assert_eq!(win.len(), neu1e.len());
        for i in 0..win.len() {
            let w = wout[i];
            neu1e[i] += g * w;
            wout[i] = w + g * win[i];
        }
    }

    /// Serializes `values` as little-endian IEEE-754 bytes into `out`.
    /// Pure bit movement (`to_bits` → `to_le_bytes`), so the result is
    /// identical on every backend, including NaN payloads.
    #[inline]
    pub fn encode_rows(values: &[f32], out: &mut [u8]) {
        debug_assert_eq!(out.len(), values.len() * 4);
        for (v, b) in values.iter().zip(out.chunks_exact_mut(4)) {
            b.copy_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Deserializes little-endian IEEE-754 bytes from `src` into
    /// `values`; the exact inverse of [`encode_rows`].
    #[inline]
    pub fn decode_rows(src: &[u8], values: &mut [f32]) {
        debug_assert_eq!(src.len(), values.len() * 4);
        for (v, b) in values.iter_mut().zip(src.chunks_exact(4)) {
            *v = f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
    }
}

/// AVX2+FMA kernels. Callers must have verified `avx2` and `fma` support
/// (the dispatch table in [`select`] does).
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Horizontal sum of the 8 lanes.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        // Register-only intrinsics are safe inside a matching
        // #[target_feature] fn; no inner unsafe block needed.
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let quad = _mm_add_ps(lo, hi);
        let duo = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
        let one = _mm_add_ss(duo, _mm_movehdup_ps(duo));
        _mm_cvtss_f32(one)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        // SAFETY: all loads stay within `n` elements of the slices.
        unsafe {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 16 <= n {
                acc0 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)), acc0);
                acc1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(i + 8)),
                    _mm256_loadu_ps(yp.add(i + 8)),
                    acc1,
                );
                i += 16;
            }
            if i + 8 <= n {
                acc0 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)), acc0);
                i += 8;
            }
            let mut s = hsum(_mm256_add_ps(acc0, acc1));
            while i < n {
                s = x[i].mul_add(y[i], s);
                i += 1;
            }
            s
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        // SAFETY: all loads/stores stay within `n` elements.
        unsafe {
            let va = _mm256_set1_ps(a);
            let mut i = 0usize;
            while i + 8 <= n {
                let v = _mm256_fmadd_ps(va, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
                _mm256_storeu_ps(yp.add(i), v);
                i += 8;
            }
            while i < n {
                y[i] = a.mul_add(x[i], y[i]);
                i += 1;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn scale(a: f32, x: &mut [f32]) {
        let n = x.len();
        let xp = x.as_mut_ptr();
        // SAFETY: all loads/stores stay within `n` elements.
        unsafe {
            let va = _mm256_set1_ps(a);
            let mut i = 0usize;
            while i + 8 <= n {
                _mm256_storeu_ps(xp.add(i), _mm256_mul_ps(va, _mm256_loadu_ps(xp.add(i))));
                i += 8;
            }
            while i < n {
                x[i] *= a;
                i += 1;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sub_into(x: &[f32], y: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        debug_assert_eq!(x.len(), out.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let op = out.as_mut_ptr();
        // SAFETY: all loads/stores stay within `n` elements.
        unsafe {
            let mut i = 0usize;
            while i + 8 <= n {
                _mm256_storeu_ps(
                    op.add(i),
                    _mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i))),
                );
                i += 8;
            }
            while i < n {
                out[i] = x[i] - y[i];
                i += 1;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn add_assign(x: &mut [f32], y: &[f32]) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_mut_ptr();
        let yp = y.as_ptr();
        // SAFETY: all loads/stores stay within `n` elements.
        unsafe {
            let mut i = 0usize;
            while i + 8 <= n {
                _mm256_storeu_ps(
                    xp.add(i),
                    _mm256_add_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i))),
                );
                i += 8;
            }
            while i < n {
                x[i] += y[i];
                i += 1;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_norms(x: &[f32], y: &[f32]) -> (f32, f32, f32) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        // SAFETY: all loads stay within `n` elements.
        unsafe {
            let mut axy = _mm256_setzero_ps();
            let mut axx = _mm256_setzero_ps();
            let mut ayy = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 8 <= n {
                let vx = _mm256_loadu_ps(xp.add(i));
                let vy = _mm256_loadu_ps(yp.add(i));
                axy = _mm256_fmadd_ps(vx, vy, axy);
                axx = _mm256_fmadd_ps(vx, vx, axx);
                ayy = _mm256_fmadd_ps(vy, vy, ayy);
                i += 8;
            }
            let mut sxy = hsum(axy);
            let mut sxx = hsum(axx);
            let mut syy = hsum(ayy);
            while i < n {
                let (a, c) = (x[i], y[i]);
                sxy = a.mul_add(c, sxy);
                sxx = a.mul_add(a, sxx);
                syy = c.mul_add(c, syy);
                i += 1;
            }
            (sxy, sxx, syy)
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn fused_grad_step(g: f32, win: &[f32], wout: &mut [f32], neu1e: &mut [f32]) {
        debug_assert_eq!(win.len(), wout.len());
        debug_assert_eq!(win.len(), neu1e.len());
        let n = win.len();
        let ip = win.as_ptr();
        let op = wout.as_mut_ptr();
        let np = neu1e.as_mut_ptr();
        // SAFETY: all loads/stores stay within `n` elements; the three
        // slices are disjoint by Rust's aliasing rules.
        unsafe {
            let vg = _mm256_set1_ps(g);
            let mut i = 0usize;
            while i + 8 <= n {
                let vout = _mm256_loadu_ps(op.add(i));
                let vn = _mm256_fmadd_ps(vg, vout, _mm256_loadu_ps(np.add(i)));
                _mm256_storeu_ps(np.add(i), vn);
                let vw = _mm256_fmadd_ps(vg, _mm256_loadu_ps(ip.add(i)), vout);
                _mm256_storeu_ps(op.add(i), vw);
                i += 8;
            }
            while i < n {
                let w = wout[i];
                neu1e[i] = g.mul_add(w, neu1e[i]);
                wout[i] = g.mul_add(win[i], w);
                i += 1;
            }
        }
    }

    /// Bulk little-endian encode. On x86 the in-memory representation of
    /// an `f32` *is* its little-endian wire form, so eight rows move per
    /// 32-byte unaligned store; the tail falls back to the scalar
    /// reference, which performs the identical bit movement.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn encode_rows(values: &[f32], out: &mut [u8]) {
        debug_assert_eq!(out.len(), values.len() * 4);
        let n = values.len();
        let vp = values.as_ptr();
        let op = out.as_mut_ptr();
        // SAFETY: every 8-lane load reads within `values` and every
        // 32-byte store writes within `out` (checked by the bound above).
        unsafe {
            let mut i = 0usize;
            while i + 8 <= n {
                let v = _mm256_loadu_ps(vp.add(i));
                _mm256_storeu_si256(op.add(i * 4) as *mut __m256i, _mm256_castps_si256(v));
                i += 8;
            }
            if i < n {
                super::scalar::encode_rows(&values[i..], &mut out[i * 4..]);
            }
        }
    }

    /// Bulk little-endian decode; exact inverse of [`encode_rows`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn decode_rows(src: &[u8], values: &mut [f32]) {
        debug_assert_eq!(src.len(), values.len() * 4);
        let n = values.len();
        let sp = src.as_ptr();
        let vp = values.as_mut_ptr();
        // SAFETY: every 32-byte load reads within `src` and every 8-lane
        // store writes within `values` (checked by the bound above).
        unsafe {
            let mut i = 0usize;
            while i + 8 <= n {
                let v = _mm256_loadu_si256(sp.add(i * 4) as *const __m256i);
                _mm256_storeu_ps(vp.add(i), _mm256_castsi256_ps(v));
                i += 8;
            }
            if i < n {
                super::scalar::decode_rows(&src[i * 4..], &mut values[i..]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_stable_and_named() {
        let a = kernels() as *const Kernels;
        let b = kernels() as *const Kernels;
        assert_eq!(a, b, "dispatch table must be selected exactly once");
        let name = backend_name();
        assert!(
            name.contains("scalar") || name == "avx2+fma",
            "unexpected backend name {name:?}"
        );
    }

    #[test]
    fn scalar_fused_grad_step_matches_axpy_pair_bitwise() {
        let dims = [0usize, 1, 3, 8, 15, 64, 100, 200];
        for &d in &dims {
            let g = 0.37f32;
            let win: Vec<f32> = (0..d).map(|i| (i as f32) * 0.11 - 2.0).collect();
            let mut wout: Vec<f32> = (0..d).map(|i| 1.0 / (i as f32 + 1.5)).collect();
            let mut neu1e: Vec<f32> = (0..d).map(|i| (i as f32) * -0.05).collect();
            let mut wout_ref = wout.clone();
            let mut neu1e_ref = neu1e.clone();
            scalar::axpy(g, &wout_ref, &mut neu1e_ref);
            scalar::axpy(g, &win, &mut wout_ref);
            scalar::fused_grad_step(g, &win, &mut wout, &mut neu1e);
            assert_eq!(wout, wout_ref, "wout diverged at dim {d}");
            assert_eq!(neu1e, neu1e_ref, "neu1e diverged at dim {d}");
        }
    }

    #[test]
    fn scalar_dot_norms_matches_three_dots_bitwise() {
        for d in [0usize, 1, 2, 5, 8, 33, 128, 200] {
            let x: Vec<f32> = (0..d).map(|i| (i as f32).sin()).collect();
            let y: Vec<f32> = (0..d).map(|i| (i as f32 * 0.7).cos()).collect();
            let (xy, xx, yy) = scalar::dot_norms(&x, &y);
            assert_eq!(xy.to_bits(), scalar::dot(&x, &y).to_bits());
            assert_eq!(xx.to_bits(), scalar::dot(&x, &x).to_bits());
            assert_eq!(yy.to_bits(), scalar::dot(&y, &y).to_bits());
        }
    }

    #[test]
    fn scalar_codec_round_trips_bitwise() {
        for d in [0usize, 1, 3, 7, 8, 9, 63, 64, 200] {
            let values: Vec<f32> = (0..d)
                .map(|i| f32::from_bits(0x7fc0_0001u32.wrapping_mul(i as u32 + 1)))
                .collect();
            let mut bytes = vec![0u8; d * 4];
            scalar::encode_rows(&values, &mut bytes);
            let mut back = vec![0.0f32; d];
            scalar::decode_rows(&bytes, &mut back);
            for (a, b) in values.iter().zip(&back) {
                assert_eq!(a.to_bits(), b.to_bits(), "dim {d}");
            }
        }
    }

    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    #[test]
    fn avx2_codec_bit_identical_to_scalar_when_supported() {
        if !(std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma"))
        {
            return;
        }
        let k = &AVX2_KERNELS;
        for d in [0usize, 1, 7, 8, 9, 15, 16, 17, 100, 333] {
            let values: Vec<f32> = (0..d).map(|i| (i as f32) * 0.37 - 11.5).collect();
            let mut simd_bytes = vec![0u8; d * 4];
            let mut ref_bytes = vec![0u8; d * 4];
            (k.encode_rows)(&values, &mut simd_bytes);
            scalar::encode_rows(&values, &mut ref_bytes);
            assert_eq!(simd_bytes, ref_bytes, "encode diverged at dim {d}");
            let mut simd_vals = vec![0.0f32; d];
            let mut ref_vals = vec![0.0f32; d];
            (k.decode_rows)(&ref_bytes, &mut simd_vals);
            scalar::decode_rows(&ref_bytes, &mut ref_vals);
            for (a, b) in simd_vals.iter().zip(&ref_vals) {
                assert_eq!(a.to_bits(), b.to_bits(), "decode diverged at dim {d}");
            }
        }
    }

    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    #[test]
    fn avx2_table_close_to_scalar_when_supported() {
        if !(std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma"))
        {
            return;
        }
        let k = &AVX2_KERNELS;
        for d in [0usize, 1, 7, 8, 9, 64, 100, 200] {
            let x: Vec<f32> = (0..d).map(|i| (i as f32) * 0.013 - 1.0).collect();
            let y: Vec<f32> = (0..d).map(|i| ((i * 7) % 13) as f32 * 0.1 - 0.5).collect();
            let simd = (k.dot)(&x, &y);
            let reference = scalar::dot(&x, &y);
            assert!(
                (simd - reference).abs() <= 1e-4 * (1.0 + reference.abs()),
                "dim {d}: {simd} vs {reference}"
            );
        }
    }
}
