//! # gw2v-graph
//!
//! A from-scratch distributed graph-analytics substrate — the D-Galois /
//! Gemini analogue the paper builds on (paper §2.4).
//!
//! * [`csr`] — compressed-sparse-row graphs with optional edge data.
//! * [`gen`] — graph generators (uniform random, grid, R-MAT power-law)
//!   for substrate validation.
//! * [`partition`] — distributed partitions with the master/mirror proxy
//!   model: edges are partitioned across hosts; every endpoint of a local
//!   edge gets a local *proxy*, one host holds the canonical *master*
//!   proxy, the rest hold *mirrors*. Includes the blocked edge-cut policy
//!   used for classic graph algorithms and the full-replication policy
//!   GraphWord2Vec uses (every host has a proxy for every node, paper
//!   §4.2).
//! * [`bsp`] — a bulk-synchronous runtime over partitions: hosts compute
//!   on their local proxies, then a synchronization step ships touched
//!   mirrors to masters (reduce) and changed masters back to mirrors
//!   (broadcast), exactly the Gluon protocol, with byte-level accounting.
//! * [`worklist`] — chunked active-vertex worklists for data-driven
//!   algorithms.
//! * [`algos`] — BFS, SSSP (Bellman-Ford), connected components and
//!   PageRank written against the BSP runtime, each validated against a
//!   sequential reference; these are the "classic graph analytics" proof
//!   that the substrate is a real framework, not a Word2Vec one-off.

#![deny(missing_docs)]

pub mod algos;
pub mod bsp;
pub mod csr;
pub mod gen;
pub mod partition;
pub mod worklist;

pub use bsp::{BspRuntime, SyncStats};
pub use csr::Csr;
pub use partition::{partition_blocked, HostPartition, Partitioned};
