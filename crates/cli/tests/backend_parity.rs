//! Byte-level backend parity for `gw2v serve`.
//!
//! Kernel dispatch (AVX2+FMA vs scalar) is decided once per process, so
//! this test spawns the real binary twice over the same checkpoint and
//! query file — once with the runtime-dispatched kernels and once with
//! `GW2V_FORCE_SCALAR=1` — and asserts the two output files are
//! byte-identical. This is the serving layer's acceptance criterion: the
//! canonical scalar rescore (see `gw2v-serve`'s module docs) makes the
//! served JSON independent of which SIMD backend scanned the shards.

use std::path::PathBuf;
use std::process::Command;

fn gw2v() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gw2v"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gw2v_parity_{}_{name}", std::process::id()))
}

fn run_ok(cmd: &mut Command) {
    let out = cmd.output().expect("spawn gw2v");
    assert!(
        out.status.success(),
        "gw2v failed: {:?}\nstdout: {}\nstderr: {}",
        cmd.get_args().collect::<Vec<_>>(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_output_is_byte_identical_across_backends() {
    let corpus = tmp("corpus.txt");
    let model = tmp("model.txt");
    let ckdir = tmp("ck");
    let queries = tmp("queries.txt");
    let _ = std::fs::remove_dir_all(&ckdir);

    run_ok(gw2v().args([
        "generate",
        "--out",
        corpus.to_str().unwrap(),
        "--scale",
        "tiny",
        "--tokens",
        "20000",
    ]));
    run_ok(gw2v().args([
        "train",
        "--input",
        corpus.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
        "--trainer",
        "dist",
        "--hosts",
        "3",
        "--dim",
        "24",
        "--epochs",
        "2",
        "--negative",
        "4",
        "--checkpoint-dir",
        ckdir.to_str().unwrap(),
    ]));

    // A mix that exercises similarity, analogy, OOV errors, and parse
    // errors — every output shape the serializer can produce.
    let mut lines = String::from("# parity probe\n");
    for i in (0..40).step_by(3) {
        lines.push_str(&format!("sim bg{i}\n"));
    }
    for i in (0..30).step_by(5) {
        lines.push_str(&format!("analogy bg{i} bg{} bg{}\n", i + 1, i + 2));
    }
    lines.push_str("sim zz_not_a_word\nbogus line\n");
    std::fs::write(&queries, lines).unwrap();

    let serve_with = |force_scalar: &str, out: &PathBuf| {
        run_ok(
            gw2v()
                .args([
                    "serve",
                    "--checkpoint",
                    ckdir.to_str().unwrap(),
                    "--vocab",
                    corpus.to_str().unwrap(),
                    "--queries",
                    queries.to_str().unwrap(),
                    "--out",
                    out.to_str().unwrap(),
                    "--k",
                    "10",
                    "--shards",
                    "8",
                    "--batch",
                    "16",
                ])
                .env("GW2V_FORCE_SCALAR", force_scalar),
        );
    };

    let out_dispatched = tmp("out_dispatched.jsonl");
    let out_scalar = tmp("out_scalar.jsonl");
    serve_with("0", &out_dispatched);
    serve_with("1", &out_scalar);

    let a = std::fs::read(&out_dispatched).unwrap();
    let b = std::fs::read(&out_scalar).unwrap();
    assert!(
        a.windows(7).any(|w| w == b"\"hits\":"),
        "output should contain ranked hits"
    );
    assert_eq!(
        a, b,
        "serve output must be byte-identical between the dispatched and \
         forced-scalar backends"
    );

    std::fs::remove_dir_all(&ckdir).ok();
    for f in [&corpus, &model, &queries, &out_dispatched, &out_scalar] {
        std::fs::remove_file(f).ok();
    }
}
