//! The sequential synchronization engine.
//!
//! Executes one full Gluon synchronization (reduce + broadcast) across
//! all host replicas, deterministically, within the calling thread:
//! hosts are visited in id order, nodes in id order, so a given input
//! always produces the same model — the property the PullModel
//! inspection replay and all the equivalence tests rely on. The
//! threaded engine ([`crate::threaded`]) reproduces this order exactly
//! by folding incoming messages in source-host order.
//!
//! Semantics (identical across plans — plans only change which payloads
//! cross the wire, paper §4.4):
//!
//! * For every node touched on ≥ 1 host, each touching host contributes
//!   `delta = current − base` (its accumulated SGD movement this round).
//! * Deltas are folded at the master in host-id order with the
//!   configured combiner (for `Avg`, the divisor is the number of
//!   *touching* hosts, as in Gluon where only updated proxies
//!   participate in the reduction).
//! * `canonical = base + combined` replaces the master row and is
//!   broadcast to mirror replicas (all of them for RepModel plans; each
//!   host's next-round access set for PullModel).

use crate::liveness::Liveness;
use crate::plan::{AccessSets, SyncConfig, SyncPlan};
use crate::replica::ModelReplica;
use crate::volume::{CommStats, RoundVolume};
use crate::wire::{entry_bytes, quant_entry_bytes, value_bytes, Channel, WireState};
use gw2v_combiner::{CombineAccumulator, CombinerKind};
use gw2v_graph::partition::{master_block, master_host};
use gw2v_util::bitvec::BitVec;
use gw2v_util::fvec::FlatMatrix;

/// Sentinel in [`NodeAccSlab::slot_of`]: no accumulator assigned.
const NO_SLOT: u32 = u32::MAX;

/// A recyclable pool of per-node [`CombineAccumulator`]s.
///
/// The reduce phase needs one accumulator per node touched this round —
/// a sparse subset of the graph. Earlier versions materialized
/// `Vec<Option<CombineAccumulator>>` over *all* nodes every round; this
/// slab instead keeps a dense pool of accumulators (sized by the
/// high-water mark of concurrently touched nodes) plus an O(1) node→slot
/// index, so steady-state rounds assign, fold, and release without
/// touching the heap. Slots are released in O(touched), not O(nodes).
#[derive(Debug, Default)]
pub(crate) struct NodeAccSlab {
    /// node id → pool index, [`NO_SLOT`] when unassigned. Sized `n_nodes`.
    slot_of: Vec<u32>,
    /// Reusable accumulators; `pool[..used]` are live this layer.
    pool: Vec<CombineAccumulator>,
    /// Nodes holding slots, for O(touched) release.
    touched: Vec<u32>,
    used: usize,
}

impl NodeAccSlab {
    /// Sizes the node→slot index (no-op when already `n_nodes` wide).
    pub(crate) fn ensure_nodes(&mut self, n_nodes: usize) {
        if self.slot_of.len() != n_nodes {
            debug_assert_eq!(self.used, 0, "resize mid-round");
            self.slot_of.clear();
            self.slot_of.resize(n_nodes, NO_SLOT);
        }
    }

    /// The accumulator for `node`, assigning (and recycling) a pool slot
    /// on the node's first touch this round.
    pub(crate) fn acc_mut(
        &mut self,
        node: u32,
        kind: CombinerKind,
        dim: usize,
    ) -> &mut CombineAccumulator {
        let slot = self.slot_of[node as usize];
        let idx = if slot == NO_SLOT {
            let idx = self.used;
            if idx == self.pool.len() {
                self.pool.push(CombineAccumulator::new(kind, dim));
            } else {
                self.pool[idx].reset(kind, dim);
            }
            self.slot_of[node as usize] = idx as u32;
            self.touched.push(node);
            self.used += 1;
            idx
        } else {
            slot as usize
        };
        &mut self.pool[idx]
    }

    /// Finishes `node`'s reduction into `out`; the slot stays assigned
    /// until [`NodeAccSlab::release_all`].
    pub(crate) fn finish_into(&mut self, node: u32, out: &mut [f32]) {
        let slot = self.slot_of[node as usize];
        assert_ne!(slot, NO_SLOT, "node {node} has no accumulator");
        self.pool[slot as usize].finish_into(out);
    }

    /// Returns every slot to the pool without deallocating.
    pub(crate) fn release_all(&mut self) {
        for &n in &self.touched {
            self.slot_of[n as usize] = NO_SLOT;
        }
        self.touched.clear();
        self.used = 0;
    }
}

/// Reusable working memory for [`sync_round_with_scratch`].
///
/// Holds the accumulator slab, the updated-nodes bit vector, and the
/// delta/canonical/combined row buffers a round needs. Constructed empty
/// and grown on first use; after the first round on a given model shape,
/// subsequent rounds perform **zero steady-state heap allocation** in the
/// reduce/broadcast path (the `ModelCombinerPairwise` ablation combiner
/// is the documented exception — it buffers deltas internally).
#[derive(Debug, Default)]
pub struct SyncScratch {
    slab: NodeAccSlab,
    updated: BitVec,
    delta: Vec<f32>,
    canonical: Vec<f32>,
    combined: Vec<f32>,
}

impl SyncScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resizes a row buffer for the current layer's dimension (no-op at
/// steady state, where consecutive rounds see the same dims).
fn fit_row_buf(buf: &mut Vec<f32>, dim: usize) {
    buf.clear();
    buf.resize(dim, 0.0);
}

/// Runs one synchronization round over all replicas, allocating its
/// working memory afresh.
///
/// Thin wrapper around [`sync_round_with_scratch`]; callers that
/// synchronize repeatedly (the distributed trainer, benchmarks) should
/// hold a [`SyncScratch`] across rounds instead.
pub fn sync_round(
    replicas: &mut [ModelReplica],
    cfg: &SyncConfig,
    access: Option<&AccessSets>,
    stats: &mut CommStats,
) -> RoundVolume {
    let mut scratch = SyncScratch::new();
    sync_round_with_scratch(replicas, cfg, access, stats, &mut scratch)
}

/// Runs one synchronization round over all replicas, reusing `scratch`.
///
/// `access` must be `Some` when `cfg.plan == PullModel`: for each host
/// and layer, the set of nodes that host will access in its *next*
/// compute round. Returns the round's per-host volume; cumulative
/// counters are added to `stats`. Delta trackers are cleared on return.
///
/// The result is bit-for-bit identical whether `scratch` is fresh or
/// carried over from previous rounds (pinned by tests below): hosts are
/// still folded in id order and nodes applied in id order; the scratch
/// only changes *where* the intermediate values live.
pub fn sync_round_with_scratch(
    replicas: &mut [ModelReplica],
    cfg: &SyncConfig,
    access: Option<&AccessSets>,
    stats: &mut CommStats,
    scratch: &mut SyncScratch,
) -> RoundVolume {
    let live = Liveness::all(replicas.len());
    sync_round_degraded(
        replicas,
        cfg,
        access,
        stats,
        scratch,
        &live,
        &mut WireState::Classic,
    )
}

/// [`sync_round_with_scratch`] under an explicit liveness view.
///
/// Dead hosts contribute no deltas, receive no broadcasts and have their
/// trackers left untouched; their master blocks are reconciled at the
/// adopter host ([`Liveness::effective_master`]). Byte accounting covers
/// only traffic between alive hosts. With an all-alive view this is
/// exactly [`sync_round_with_scratch`], bit for bit — the BSP
/// simulator's modeled fault rounds and the faultless path share this
/// one implementation.
///
/// `wire` selects the run's payload mode and carries its cross-round
/// state ([`crate::wire::WireState`]):
///
/// * `Classic` — the classic id+value accounting, untouched.
/// * `Memo` — payload id lists are derived per
///   (sender, receiver, layer, channel) exactly as the threaded engine
///   ships them — including empty lists for every alive ordered pair,
///   so the two engines' caches make identical hit/miss decisions — and
///   hits are accounted at [`value_bytes`] per entry instead of
///   [`entry_bytes`].
/// * `Delta` — id lists *and* row values are staged the same way and
///   fed through the shadow ([`crate::wire::DeltaShadow::submit`]), so
///   byte accounting reflects full payloads on shadow misses and
///   mask+changed-rows payloads on hits. Lossless: the model is
///   bit-identical to classic.
/// * `Quant` — stateless; every wire-crossing row is replaced by its
///   quantize→dequantize image ([`crate::wire::QuantScratch::qdq_row`])
///   exactly where the threaded engine's payloads would decode lossily,
///   and entries are accounted at [`quant_entry_bytes`] each.
#[allow(clippy::too_many_arguments)]
pub fn sync_round_degraded(
    replicas: &mut [ModelReplica],
    cfg: &SyncConfig,
    access: Option<&AccessSets>,
    stats: &mut CommStats,
    scratch: &mut SyncScratch,
    live: &Liveness,
    wire: &mut WireState,
) -> RoundVolume {
    let n_hosts = replicas.len();
    assert!(n_hosts > 0);
    assert_eq!(live.n_hosts(), n_hosts, "liveness view size mismatch");
    if cfg.plan == SyncPlan::PullModel {
        assert!(
            access.is_some(),
            "PullModel requires inspection access sets"
        );
    }
    // Any liveness change invalidates every cached id list / shadow row
    // (routing changed); must happen before the first submit of the
    // round. No-op for the stateless modes.
    wire.observe_liveness(live);
    // Observability: an inert guard when metrics are disabled; otherwise it
    // times the whole round and records the byte/message deltas below.
    let mut obs_span = gw2v_obs::span("gluon.sync");
    let stats_before = gw2v_obs::enabled().then_some(*stats);
    let n_nodes = replicas[0].n_nodes();
    let n_layers = replicas[0].n_layers();
    let mut volume = RoundVolume::new(n_hosts);

    let SyncScratch {
        slab,
        updated,
        delta,
        canonical,
        combined,
    } = scratch;
    slab.ensure_nodes(n_nodes);
    if updated.len() != n_nodes {
        *updated = BitVec::new(n_nodes);
    }

    for layer in 0..n_layers {
        let dim = replicas[0].layers[layer].dim();
        let ebytes = entry_bytes(dim) as u64;
        let vbytes = value_bytes(dim) as u64;
        let qbytes = quant_entry_bytes(dim) as u64;
        fit_row_buf(delta, dim);
        fit_row_buf(canonical, dim);
        fit_row_buf(combined, dim);

        // ---- Reduce phase: fold per-node deltas in host-id order. ----
        let sparse = cfg.plan != SyncPlan::RepModelNaive;
        for (h, replica) in replicas.iter().enumerate() {
            if !live.is_alive(h) {
                continue;
            }
            // Memo/delta modes stage the per-destination payload (the
            // exact entry order the threaded engine ships) instead of
            // accounting inline per entry.
            let mut stage = match wire {
                WireState::Memo(m) if sparse => m.take_stage(n_hosts),
                _ => Vec::new(),
            };
            let (mut stage_ids, mut stage_vals) = match wire {
                WireState::Delta(d) if sparse => d.take_stage(n_hosts),
                _ => (Vec::new(), Vec::new()),
            };
            let tracker = replica.tracker(layer);
            for &node in tracker.touched_nodes() {
                tracker.delta_into(node, replica.row(layer, node), delta);
                let owner = live.effective_master(master_host(n_nodes, n_hosts, node));
                if owner != h {
                    if let WireState::Quant(q) = &mut *wire {
                        // This contribution crosses the wire (every
                        // plan): the master folds its dequantized image.
                        q.qdq_row(delta);
                    }
                }
                slab.acc_mut(node, cfg.combiner, dim).push(delta);
                updated.set(node as usize);
                if owner != h && sparse {
                    match wire {
                        WireState::Classic => {
                            // Sparse plans: only touched mirrors cross the wire.
                            volume.record(h, owner, ebytes);
                            stats.reduce_bytes += ebytes;
                            stats.reduce_msgs += 1;
                        }
                        WireState::Memo(_) => stage[owner].push(node),
                        WireState::Delta(_) => {
                            stage_ids[owner].push(node);
                            stage_vals[owner].extend_from_slice(delta);
                        }
                        WireState::Quant(_) => {
                            volume.record(h, owner, qbytes);
                            stats.reduce_bytes += qbytes;
                            stats.reduce_msgs += 1;
                        }
                    }
                }
            }
            if sparse {
                // Submit for *every* alive ordered pair — the threaded
                // engine ships a payload (possibly empty) to each peer
                // every phase, so its caches/shadows advance even on
                // empty lists.
                match wire {
                    WireState::Memo(m) => {
                        for peer in 0..n_hosts {
                            if peer == h || !live.is_alive(peer) {
                                continue;
                            }
                            let hit = m.submit(h, peer, layer, Channel::Reduce, &stage[peer]);
                            let per = if hit { vbytes } else { ebytes };
                            let bytes = stage[peer].len() as u64 * per;
                            if bytes > 0 {
                                volume.record(h, peer, bytes);
                            }
                            stats.reduce_bytes += bytes;
                            stats.reduce_msgs += stage[peer].len() as u64;
                        }
                        m.put_stage(stage);
                    }
                    WireState::Delta(d) => {
                        for peer in 0..n_hosts {
                            if peer == h || !live.is_alive(peer) {
                                continue;
                            }
                            let form = d.submit(
                                h,
                                peer,
                                layer,
                                Channel::Reduce,
                                &stage_ids[peer],
                                &stage_vals[peer],
                                dim,
                            );
                            let bytes = form.wire_bytes(stage_ids[peer].len(), dim) as u64;
                            if bytes > 0 {
                                volume.record(h, peer, bytes);
                            }
                            stats.reduce_bytes += bytes;
                            stats.reduce_msgs += stage_ids[peer].len() as u64;
                        }
                        d.put_stage(stage_ids, stage_vals);
                    }
                    WireState::Classic | WireState::Quant(_) => {}
                }
            }
        }
        if cfg.plan == SyncPlan::RepModelNaive {
            // Dense reduce: every host ships *all* its mirror rows (even
            // untouched): block_size(m) rows to every master host m ≠ h,
            // where m's rows cover every block m effectively masters.
            let dense_per = match wire {
                WireState::Quant(_) => qbytes,
                _ => ebytes,
            };
            match wire {
                WireState::Memo(m_) => {
                    // Memo mode: the dense id list per destination master is
                    // identical for every sender, and repeats round after
                    // round while liveness holds — hits from round two on.
                    let mut stage = m_.take_stage(n_hosts);
                    for m in 0..n_hosts {
                        if !live.is_alive(m) {
                            continue;
                        }
                        for owner in 0..n_hosts {
                            if live.effective_master(owner) == m {
                                for node in master_block(n_nodes, n_hosts, owner) {
                                    stage[m].push(node);
                                }
                            }
                        }
                    }
                    for h in 0..n_hosts {
                        if !live.is_alive(h) {
                            continue;
                        }
                        for m in 0..n_hosts {
                            if m == h || !live.is_alive(m) {
                                continue;
                            }
                            let hit = m_.submit(h, m, layer, Channel::Reduce, &stage[m]);
                            let per = if hit { vbytes } else { ebytes };
                            let bytes = stage[m].len() as u64 * per;
                            if bytes > 0 {
                                volume.record(h, m, bytes);
                            }
                            stats.reduce_bytes += bytes;
                            stats.reduce_msgs += stage[m].len() as u64;
                        }
                    }
                    m_.put_stage(stage);
                }
                WireState::Delta(d) => {
                    // Delta mode: the dense id list per destination master
                    // (as memo), plus per-owner block offsets so each
                    // sender scatters its touched deltas into the dense
                    // value image by position. Untouched rows are zero
                    // deltas, unchanged round over round — exactly what
                    // the shadow's changed-row mask skips.
                    let (mut stage_ids, mut stage_vals) = d.take_stage(n_hosts);
                    let mut block_off = vec![0usize; n_hosts];
                    for m in 0..n_hosts {
                        if !live.is_alive(m) {
                            continue;
                        }
                        for owner in 0..n_hosts {
                            if live.effective_master(owner) == m {
                                block_off[owner] = stage_ids[m].len();
                                for node in master_block(n_nodes, n_hosts, owner) {
                                    stage_ids[m].push(node);
                                }
                            }
                        }
                    }
                    for h in 0..n_hosts {
                        if !live.is_alive(h) {
                            continue;
                        }
                        for m in 0..n_hosts {
                            stage_vals[m].clear();
                            stage_vals[m].resize(stage_ids[m].len() * dim, 0.0);
                        }
                        let tracker = replicas[h].tracker(layer);
                        for &node in tracker.touched_nodes() {
                            let owner = master_host(n_nodes, n_hosts, node);
                            let m = live.effective_master(owner);
                            if m == h {
                                continue;
                            }
                            tracker.delta_into(node, replicas[h].row(layer, node), delta);
                            let start = master_block(n_nodes, n_hosts, owner).start;
                            let pos = block_off[owner] + (node - start) as usize;
                            stage_vals[m][pos * dim..(pos + 1) * dim].copy_from_slice(delta);
                        }
                        for m in 0..n_hosts {
                            if m == h || !live.is_alive(m) {
                                continue;
                            }
                            let form = d.submit(
                                h,
                                m,
                                layer,
                                Channel::Reduce,
                                &stage_ids[m],
                                &stage_vals[m],
                                dim,
                            );
                            let bytes = form.wire_bytes(stage_ids[m].len(), dim) as u64;
                            if bytes > 0 {
                                volume.record(h, m, bytes);
                            }
                            stats.reduce_bytes += bytes;
                            stats.reduce_msgs += stage_ids[m].len() as u64;
                        }
                    }
                    d.put_stage(stage_ids, stage_vals);
                }
                WireState::Classic | WireState::Quant(_) => {
                    for h in 0..n_hosts {
                        if !live.is_alive(h) {
                            continue;
                        }
                        for m in 0..n_hosts {
                            if m == h || !live.is_alive(m) {
                                continue;
                            }
                            let rows: u64 = (0..n_hosts)
                                .filter(|&owner| live.effective_master(owner) == m)
                                .map(|owner| master_block(n_nodes, n_hosts, owner).len() as u64)
                                .sum();
                            if rows > 0 {
                                volume.record(h, m, rows * dense_per);
                                stats.reduce_bytes += rows * dense_per;
                                stats.reduce_msgs += rows;
                            }
                        }
                    }
                }
            }
        }

        // ---- Apply combined deltas at masters; broadcast canonical. ----
        // Memo/delta modes stage the Opt broadcast payload per master:
        // the threaded engine builds ONE payload per master per layer
        // (updated ∩ effectively-owned, node-id order) and ships it to
        // every peer, so the cache key list is per-sender, not per-pair.
        let mut bcast_stage = match wire {
            WireState::Memo(m) if cfg.plan == SyncPlan::RepModelOpt => m.take_stage(n_hosts),
            _ => Vec::new(),
        };
        let (mut bcast_ids, mut bcast_vals) = match wire {
            WireState::Delta(d) if cfg.plan == SyncPlan::RepModelOpt => d.take_stage(n_hosts),
            _ => (Vec::new(), Vec::new()),
        };
        for node in updated.iter_ones() {
            let node_u = node as u32;
            let owner = live.effective_master(master_host(n_nodes, n_hosts, node_u));
            slab.finish_into(node_u, combined);
            {
                let replica = &mut replicas[owner];
                let (matrix, tracker) = replica.layer_and_tracker_mut(layer);
                let row = matrix.row_mut(node);
                if tracker.is_touched(node_u) {
                    row.copy_from_slice(tracker.base_of(node_u));
                }
                (gw2v_util::simd::kernels().add_assign)(row, combined);
                canonical.copy_from_slice(row);
            }
            if cfg.plan == SyncPlan::RepModelOpt {
                match wire {
                    WireState::Memo(_) => bcast_stage[owner].push(node_u),
                    WireState::Delta(_) => {
                        bcast_ids[owner].push(node_u);
                        bcast_vals[owner].extend_from_slice(canonical);
                    }
                    WireState::Quant(q) => {
                        // Mirrors receive the dequantized image of the
                        // canonical row; the master keeps the exact value.
                        // (Naive's dense broadcast handles this below.)
                        q.qdq_row(canonical);
                    }
                    WireState::Classic => {}
                }
            }
            // RepModel plans overwrite every mirror with the canonical
            // value (PullModel applies values in its pull pass below).
            if cfg.plan != SyncPlan::PullModel {
                let inline_per = match wire {
                    WireState::Classic => Some(ebytes),
                    WireState::Quant(_) => Some(qbytes),
                    _ => None,
                };
                for (h, rep) in replicas.iter_mut().enumerate() {
                    if h == owner || !live.is_alive(h) {
                        continue;
                    }
                    rep.row_mut_untracked(layer, node_u)
                        .copy_from_slice(canonical);
                    if cfg.plan == SyncPlan::RepModelOpt {
                        if let Some(per) = inline_per {
                            volume.record(owner, h, per);
                            stats.broadcast_bytes += per;
                            stats.broadcast_msgs += 1;
                        }
                    }
                }
            }
        }
        if cfg.plan == SyncPlan::RepModelOpt {
            match wire {
                WireState::Memo(m_) => {
                    for sender in 0..n_hosts {
                        if !live.is_alive(sender) {
                            continue;
                        }
                        for peer in 0..n_hosts {
                            if peer == sender || !live.is_alive(peer) {
                                continue;
                            }
                            let hit = m_.submit(
                                sender,
                                peer,
                                layer,
                                Channel::Broadcast,
                                &bcast_stage[sender],
                            );
                            let per = if hit { vbytes } else { ebytes };
                            let bytes = bcast_stage[sender].len() as u64 * per;
                            if bytes > 0 {
                                volume.record(sender, peer, bytes);
                            }
                            stats.broadcast_bytes += bytes;
                            stats.broadcast_msgs += bcast_stage[sender].len() as u64;
                        }
                    }
                    m_.put_stage(bcast_stage);
                }
                WireState::Delta(d) => {
                    for sender in 0..n_hosts {
                        if !live.is_alive(sender) {
                            continue;
                        }
                        for peer in 0..n_hosts {
                            if peer == sender || !live.is_alive(peer) {
                                continue;
                            }
                            let form = d.submit(
                                sender,
                                peer,
                                layer,
                                Channel::Broadcast,
                                &bcast_ids[sender],
                                &bcast_vals[sender],
                                dim,
                            );
                            let bytes = form.wire_bytes(bcast_ids[sender].len(), dim) as u64;
                            if bytes > 0 {
                                volume.record(sender, peer, bytes);
                            }
                            stats.broadcast_bytes += bytes;
                            stats.broadcast_msgs += bcast_ids[sender].len() as u64;
                        }
                    }
                    d.put_stage(bcast_ids, bcast_vals);
                }
                WireState::Classic | WireState::Quant(_) => {}
            }
        }

        match cfg.plan {
            SyncPlan::RepModelNaive => {
                // Dense broadcast: every master row to every other host.
                match wire {
                    WireState::Memo(m_) => {
                        // Memo mode: same dense id-list derivation as the
                        // dense reduce above (the threaded engine ships one
                        // dense payload per master per layer).
                        let mut stage = m_.take_stage(n_hosts);
                        for m in 0..n_hosts {
                            if !live.is_alive(m) {
                                continue;
                            }
                            for owner in 0..n_hosts {
                                if live.effective_master(owner) == m {
                                    for node in master_block(n_nodes, n_hosts, owner) {
                                        stage[m].push(node);
                                    }
                                }
                            }
                        }
                        for m in 0..n_hosts {
                            if !live.is_alive(m) {
                                continue;
                            }
                            for h in 0..n_hosts {
                                if h == m || !live.is_alive(h) {
                                    continue;
                                }
                                let hit = m_.submit(m, h, layer, Channel::Broadcast, &stage[m]);
                                let per = if hit { vbytes } else { ebytes };
                                let bytes = stage[m].len() as u64 * per;
                                if bytes > 0 {
                                    volume.record(m, h, bytes);
                                }
                                stats.broadcast_bytes += bytes;
                                stats.broadcast_msgs += stage[m].len() as u64;
                            }
                        }
                        m_.put_stage(stage);
                    }
                    WireState::Delta(d) => {
                        // Same dense id-list derivation as the dense
                        // reduce; values are the masters' post-apply rows,
                        // so rows not updated this round are unchanged and
                        // cost only their mask bit.
                        let (mut stage_ids, mut stage_vals) = d.take_stage(n_hosts);
                        for m in 0..n_hosts {
                            if !live.is_alive(m) {
                                continue;
                            }
                            for owner in 0..n_hosts {
                                if live.effective_master(owner) == m {
                                    for node in master_block(n_nodes, n_hosts, owner) {
                                        stage_ids[m].push(node);
                                        stage_vals[m]
                                            .extend_from_slice(replicas[m].row(layer, node));
                                    }
                                }
                            }
                        }
                        for m in 0..n_hosts {
                            if !live.is_alive(m) {
                                continue;
                            }
                            for h in 0..n_hosts {
                                if h == m || !live.is_alive(h) {
                                    continue;
                                }
                                let form = d.submit(
                                    m,
                                    h,
                                    layer,
                                    Channel::Broadcast,
                                    &stage_ids[m],
                                    &stage_vals[m],
                                    dim,
                                );
                                let bytes = form.wire_bytes(stage_ids[m].len(), dim) as u64;
                                if bytes > 0 {
                                    volume.record(m, h, bytes);
                                }
                                stats.broadcast_bytes += bytes;
                                stats.broadcast_msgs += stage_ids[m].len() as u64;
                            }
                        }
                        d.put_stage(stage_ids, stage_vals);
                    }
                    WireState::Classic => {
                        for m in 0..n_hosts {
                            if !live.is_alive(m) {
                                continue;
                            }
                            let rows: u64 = (0..n_hosts)
                                .filter(|&owner| live.effective_master(owner) == m)
                                .map(|owner| master_block(n_nodes, n_hosts, owner).len() as u64)
                                .sum();
                            for h in 0..n_hosts {
                                if h == m || rows == 0 || !live.is_alive(h) {
                                    continue;
                                }
                                volume.record(m, h, rows * ebytes);
                                stats.broadcast_bytes += rows * ebytes;
                                stats.broadcast_msgs += rows;
                            }
                        }
                    }
                    WireState::Quant(q) => {
                        // The threaded dense broadcast physically
                        // overwrites *every* mirror row with the decoded
                        // (lossy) image each round — replicate that here;
                        // master rows stay exact.
                        for m in 0..n_hosts {
                            if !live.is_alive(m) {
                                continue;
                            }
                            let mut rows: u64 = 0;
                            for owner in 0..n_hosts {
                                if live.effective_master(owner) != m {
                                    continue;
                                }
                                for node in master_block(n_nodes, n_hosts, owner) {
                                    rows += 1;
                                    canonical.copy_from_slice(replicas[m].row(layer, node));
                                    q.qdq_row(canonical);
                                    for h in 0..n_hosts {
                                        if h == m || !live.is_alive(h) {
                                            continue;
                                        }
                                        replicas[h]
                                            .row_mut_untracked(layer, node)
                                            .copy_from_slice(canonical);
                                    }
                                }
                            }
                            for h in 0..n_hosts {
                                if h == m || rows == 0 || !live.is_alive(h) {
                                    continue;
                                }
                                volume.record(m, h, rows * qbytes);
                                stats.broadcast_bytes += rows * qbytes;
                                stats.broadcast_msgs += rows;
                            }
                        }
                    }
                }
            }
            SyncPlan::PullModel => {
                // Pull pass: each host receives exactly the rows it will
                // access next round — whether or not they were updated
                // (paper: "it sends masters that may not have been
                // updated").
                let access = access.expect("checked above");
                for h in 0..n_hosts {
                    if !live.is_alive(h) {
                        continue;
                    }
                    // Memo/delta modes stage the per-owner request list
                    // (the exact response payload order: the owner
                    // answers in request order, which is the access
                    // set's node-id order).
                    let mut stage = match wire {
                        WireState::Memo(m) => m.take_stage(n_hosts),
                        _ => Vec::new(),
                    };
                    let (mut stage_ids, mut stage_vals) = match wire {
                        WireState::Delta(d) => d.take_stage(n_hosts),
                        _ => (Vec::new(), Vec::new()),
                    };
                    let set = access.get(h, layer);
                    for node in set.iter_ones() {
                        let node_u = node as u32;
                        let owner = live.effective_master(master_host(n_nodes, n_hosts, node_u));
                        if owner == h {
                            continue; // local master, no wire
                        }
                        canonical.copy_from_slice(replicas[owner].row(layer, node_u));
                        match wire {
                            WireState::Classic => {
                                volume.record(owner, h, ebytes);
                                stats.broadcast_bytes += ebytes;
                                stats.broadcast_msgs += 1;
                            }
                            WireState::Memo(_) => stage[owner].push(node_u),
                            WireState::Delta(_) => {
                                stage_ids[owner].push(node_u);
                                stage_vals[owner].extend_from_slice(canonical);
                            }
                            WireState::Quant(q) => {
                                // The requester decodes the lossy image.
                                q.qdq_row(canonical);
                                volume.record(owner, h, qbytes);
                                stats.broadcast_bytes += qbytes;
                                stats.broadcast_msgs += 1;
                            }
                        }
                        replicas[h]
                            .row_mut_untracked(layer, node_u)
                            .copy_from_slice(canonical);
                    }
                    match wire {
                        WireState::Memo(m_) => {
                            for owner in 0..n_hosts {
                                if owner == h || !live.is_alive(owner) {
                                    continue;
                                }
                                let hit =
                                    m_.submit(owner, h, layer, Channel::Broadcast, &stage[owner]);
                                let per = if hit { vbytes } else { ebytes };
                                let bytes = stage[owner].len() as u64 * per;
                                if bytes > 0 {
                                    volume.record(owner, h, bytes);
                                }
                                stats.broadcast_bytes += bytes;
                                stats.broadcast_msgs += stage[owner].len() as u64;
                            }
                            m_.put_stage(stage);
                        }
                        WireState::Delta(d) => {
                            for owner in 0..n_hosts {
                                if owner == h || !live.is_alive(owner) {
                                    continue;
                                }
                                let form = d.submit(
                                    owner,
                                    h,
                                    layer,
                                    Channel::Broadcast,
                                    &stage_ids[owner],
                                    &stage_vals[owner],
                                    dim,
                                );
                                let bytes = form.wire_bytes(stage_ids[owner].len(), dim) as u64;
                                if bytes > 0 {
                                    volume.record(owner, h, bytes);
                                }
                                stats.broadcast_bytes += bytes;
                                stats.broadcast_msgs += stage_ids[owner].len() as u64;
                            }
                            d.put_stage(stage_ids, stage_vals);
                        }
                        WireState::Classic | WireState::Quant(_) => {}
                    }
                }
            }
            SyncPlan::RepModelOpt => {}
        }

        // Return this layer's slots and bits for the next layer/round.
        slab.release_all();
        updated.clear_all();
    }

    for (h, replica) in replicas.iter_mut().enumerate() {
        if live.is_alive(h) {
            replica.clear_tracking();
        }
    }
    stats.rounds += 1;

    if let Some(before) = stats_before {
        let reduce_b = stats.reduce_bytes - before.reduce_bytes;
        let bcast_b = stats.broadcast_bytes - before.broadcast_bytes;
        gw2v_obs::add("gluon.rounds", 1);
        gw2v_obs::add("gluon.reduce_bytes", reduce_b);
        gw2v_obs::add("gluon.broadcast_bytes", bcast_b);
        gw2v_obs::add("gluon.reduce_msgs", stats.reduce_msgs - before.reduce_msgs);
        gw2v_obs::add(
            "gluon.broadcast_msgs",
            stats.broadcast_msgs - before.broadcast_msgs,
        );
        gw2v_obs::observe("gluon.round_bytes", reduce_b + bcast_b);
        obs_span.field("reduce_bytes", reduce_b as f64);
        obs_span.field("broadcast_bytes", bcast_b as f64);
        obs_span.field("max_host_bytes", volume.max_host_bytes() as f64);
        obs_span.field("hosts", n_hosts as f64);
    }
    drop(obs_span);
    volume
}

/// Assembles the canonical model (each node's master row) into a fresh
/// set of layer matrices — the trained model a user would save.
pub fn assemble_canonical(replicas: &[ModelReplica]) -> Vec<FlatMatrix> {
    assemble_canonical_live(replicas, &Liveness::all(replicas.len()))
}

/// [`assemble_canonical`] under a liveness view: rows mastered by dead
/// hosts are read from their adopters' replicas instead.
pub fn assemble_canonical_live(replicas: &[ModelReplica], live: &Liveness) -> Vec<FlatMatrix> {
    let n_hosts = replicas.len();
    let n_nodes = replicas[0].n_nodes();
    (0..replicas[0].n_layers())
        .map(|layer| {
            let dim = replicas[0].layers[layer].dim();
            let mut m = FlatMatrix::zeros(n_nodes, dim);
            for node in 0..n_nodes as u32 {
                let owner = live.effective_master(master_host(n_nodes, n_hosts, node));
                m.row_mut(node as usize)
                    .copy_from_slice(replicas[owner].row(layer, node));
            }
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw2v_combiner::CombinerKind;

    fn make_replicas(n_hosts: usize, n_nodes: usize, dim: usize) -> Vec<ModelReplica> {
        (0..n_hosts)
            .map(|_| {
                let mut m0 = FlatMatrix::zeros(n_nodes, dim);
                let mut m1 = FlatMatrix::zeros(n_nodes, dim);
                for r in 0..n_nodes {
                    for d in 0..dim {
                        m0.row_mut(r)[d] = (r * dim + d) as f32;
                        m1.row_mut(r)[d] = -((r * dim + d) as f32);
                    }
                }
                ModelReplica::new(vec![m0, m1])
            })
            .collect()
    }

    fn cfg(plan: SyncPlan, combiner: CombinerKind) -> SyncConfig {
        SyncConfig { plan, combiner }
    }

    #[test]
    fn sum_combiner_adds_concurrent_deltas() {
        let mut reps = make_replicas(3, 6, 2);
        // Hosts 0 and 1 both bump node 5 (owned by host 2) on layer 0.
        reps[0].row_mut(0, 5)[0] += 1.0;
        reps[1].row_mut(0, 5)[0] += 2.0;
        let base = 5.0 * 2.0; // value at (5,0) = r*dim+d = 10
        let mut stats = CommStats::default();
        sync_round(
            &mut reps,
            &cfg(SyncPlan::RepModelOpt, CombinerKind::Sum),
            None,
            &mut stats,
        );
        for h in 0..3 {
            assert_eq!(reps[h].row(0, 5)[0], base + 3.0, "host {h}");
        }
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.reduce_msgs, 2);
        // Broadcast to 2 mirrors.
        assert_eq!(stats.broadcast_msgs, 2);
    }

    #[test]
    fn avg_divides_by_touching_hosts_only() {
        let mut reps = make_replicas(4, 4, 1);
        reps[0].row_mut(0, 3)[0] += 4.0;
        reps[1].row_mut(0, 3)[0] += 2.0;
        // Hosts 2, 3 do not touch node 3.
        let base = 3.0;
        let mut stats = CommStats::default();
        sync_round(
            &mut reps,
            &cfg(SyncPlan::RepModelOpt, CombinerKind::Avg),
            None,
            &mut stats,
        );
        for h in 0..4 {
            assert_eq!(reps[h].row(0, 3)[0], base + 3.0, "avg of 4 and 2");
        }
    }

    #[test]
    fn master_local_touch_reconciles_with_remote() {
        let mut reps = make_replicas(2, 2, 1);
        // Node 0 owned by host 0; both hosts touch it.
        reps[0].row_mut(0, 0)[0] += 10.0;
        reps[1].row_mut(0, 0)[0] += 20.0;
        let mut stats = CommStats::default();
        sync_round(
            &mut reps,
            &cfg(SyncPlan::RepModelOpt, CombinerKind::Sum),
            None,
            &mut stats,
        );
        // base 0.0, combined = 30.
        assert_eq!(reps[0].row(0, 0)[0], 30.0);
        assert_eq!(reps[1].row(0, 0)[0], 30.0);
    }

    #[test]
    fn layers_synchronize_independently() {
        let mut reps = make_replicas(2, 4, 2);
        reps[0].row_mut(0, 1)[0] += 1.0;
        reps[1].row_mut(1, 2)[1] += 5.0;
        let mut stats = CommStats::default();
        sync_round(
            &mut reps,
            &cfg(SyncPlan::RepModelOpt, CombinerKind::Sum),
            None,
            &mut stats,
        );
        // Layer 0 node 1 synced.
        assert_eq!(reps[1].row(0, 1)[0], reps[0].row(0, 1)[0]);
        // Layer 1 node 2 synced.
        assert_eq!(reps[0].row(1, 2)[1], reps[1].row(1, 2)[1]);
        // Unrelated cells untouched.
        assert_eq!(reps[0].row(1, 1)[0], -(1.0 * 2.0));
    }

    #[test]
    fn plans_produce_identical_models() {
        use gw2v_util::rng::{Rng64, Xoshiro256};
        let combiner = CombinerKind::ModelCombiner;
        let run = |plan: SyncPlan| -> Vec<FlatMatrix> {
            let mut reps = make_replicas(4, 12, 3);
            let mut stats = CommStats::default();
            let mut rng = Xoshiro256::new(7);
            for _round in 0..5 {
                // Deterministic pseudo-random touches per host.
                let mut access = AccessSets::new(4, 2, 12);
                for h in 0..4 {
                    for _ in 0..6 {
                        let layer = rng.index(2);
                        let node = rng.index(12) as u32;
                        let bump = rng.next_f32() - 0.5;
                        reps[h].row_mut(layer, node)[rng.index(3)] += bump;
                    }
                }
                // Access sets for the *next* round must cover whatever the
                // next round touches; since touches are random we declare
                // everything accessed (superset is always safe for Pull).
                for h in 0..4 {
                    for l in 0..2 {
                        access.get_mut(h, l).set_all();
                    }
                }
                let cfg = cfg(plan, combiner);
                sync_round(&mut reps, &cfg, Some(&access), &mut stats);
            }
            assemble_canonical(&reps)
        };
        let opt = run(SyncPlan::RepModelOpt);
        let naive = run(SyncPlan::RepModelNaive);
        let pull = run(SyncPlan::PullModel);
        assert_eq!(opt, naive, "Naive and Opt must train identically");
        assert_eq!(opt, pull, "Pull and Opt must train identically");
    }

    #[test]
    fn volume_opt_leq_naive() {
        let touch = |reps: &mut Vec<ModelReplica>| {
            reps[0].row_mut(0, 1)[0] += 1.0;
            reps[2].row_mut(1, 5)[0] += 1.0;
        };
        let mut naive_reps = make_replicas(4, 16, 4);
        let mut opt_reps = make_replicas(4, 16, 4);
        touch(&mut naive_reps);
        touch(&mut opt_reps);
        let mut s_naive = CommStats::default();
        let mut s_opt = CommStats::default();
        let v_naive = sync_round(
            &mut naive_reps,
            &cfg(SyncPlan::RepModelNaive, CombinerKind::Sum),
            None,
            &mut s_naive,
        );
        let v_opt = sync_round(
            &mut opt_reps,
            &cfg(SyncPlan::RepModelOpt, CombinerKind::Sum),
            None,
            &mut s_opt,
        );
        assert!(v_opt.total_bytes() < v_naive.total_bytes());
        assert!(s_opt.total_bytes() < s_naive.total_bytes());
        // Naive ships the whole model each way regardless of touches:
        // reduce = H*(N - own block) rows, broadcast same.
        let expected_rows = 4 * (16 - 4) as u64; // per layer, per direction
        let ebytes = entry_bytes(4) as u64;
        assert_eq!(s_naive.reduce_bytes, 2 * expected_rows * ebytes);
        assert_eq!(s_naive.broadcast_bytes, 2 * expected_rows * ebytes);
    }

    #[test]
    fn pull_ships_access_set_not_updates() {
        let mut reps = make_replicas(2, 8, 2);
        // Host 0 touches node 7 (owned by host 1).
        reps[0].row_mut(0, 7)[0] += 1.0;
        // Next round host 0 will access nodes 0..4 on layer 0 — note node 7
        // is NOT accessed, and nodes 0..4 were NOT updated.
        let mut access = AccessSets::new(2, 2, 8);
        for n in 0..4 {
            access.get_mut(0, 0).set(n);
        }
        let mut stats = CommStats::default();
        sync_round(
            &mut reps,
            &cfg(SyncPlan::PullModel, CombinerKind::Sum),
            Some(&access),
            &mut stats,
        );
        // Reduce shipped the one touched mirror row.
        assert_eq!(stats.reduce_msgs, 1);
        // Broadcast shipped exactly the accessed-but-remote rows: nodes
        // 0..4 are owned by host 0 itself (block 0..4 of 8 at 2 hosts), so
        // nothing crosses the wire.
        assert_eq!(stats.broadcast_msgs, 0);
        // Canonical master (host 1) still got the update.
        assert_eq!(reps[1].row(0, 7)[0], reps[1].layers[0].row(7)[0]);
        let canon = assemble_canonical(&reps);
        assert_eq!(canon[0].row(7)[0], 7.0 * 2.0 + 1.0);
    }

    #[test]
    fn pull_refreshes_stale_accessed_rows() {
        let mut reps = make_replicas(2, 4, 1);
        // Round 1: host 1 updates node 0 (owned by host 0). Host 0's access
        // set for round 2 does not include node 0; host 1's does.
        reps[1].row_mut(0, 0)[0] += 5.0;
        let mut access = AccessSets::new(2, 2, 4);
        access.get_mut(1, 0).set(0);
        let mut stats = CommStats::default();
        sync_round(
            &mut reps,
            &cfg(SyncPlan::PullModel, CombinerKind::Sum),
            Some(&access),
            &mut stats,
        );
        // Host 1's mirror of node 0 is canonical; master too.
        assert_eq!(reps[0].row(0, 0)[0], 5.0);
        assert_eq!(reps[1].row(0, 0)[0], 5.0);
        // Round 2: nobody touches node 0; host 0 now accesses it. The pull
        // must refresh host 0's (never-stale here: host 0 IS the master) —
        // instead check a remote case: host 1 accesses node 1 (owned by
        // host 0) which it never touched; its replica already matches the
        // master, and the pull ships it anyway (counted on the wire).
        let mut access2 = AccessSets::new(2, 2, 4);
        access2.get_mut(1, 0).set(1);
        let before = stats.broadcast_msgs;
        sync_round(
            &mut reps,
            &cfg(SyncPlan::PullModel, CombinerKind::Sum),
            Some(&access2),
            &mut stats,
        );
        assert_eq!(
            stats.broadcast_msgs,
            before + 1,
            "unchanged row still pulled"
        );
    }

    #[test]
    fn trackers_cleared_after_round() {
        let mut reps = make_replicas(2, 4, 1);
        reps[0].row_mut(0, 1)[0] += 1.0;
        let mut stats = CommStats::default();
        sync_round(
            &mut reps,
            &cfg(SyncPlan::RepModelOpt, CombinerKind::Sum),
            None,
            &mut stats,
        );
        assert_eq!(reps[0].tracker(0).touched_count(), 0);
        // A second sync with no touches moves nothing.
        let v = sync_round(
            &mut reps,
            &cfg(SyncPlan::RepModelOpt, CombinerKind::Sum),
            None,
            &mut stats,
        );
        assert_eq!(v.total_bytes(), 0);
    }

    #[test]
    fn single_host_needs_no_communication() {
        let mut reps = make_replicas(1, 4, 2);
        reps[0].row_mut(0, 1)[0] += 1.0;
        reps[0].row_mut(1, 2)[0] += 1.0;
        let mut stats = CommStats::default();
        let v = sync_round(
            &mut reps,
            &cfg(SyncPlan::RepModelOpt, CombinerKind::ModelCombiner),
            None,
            &mut stats,
        );
        assert_eq!(v.total_bytes(), 0);
        assert_eq!(stats.total_bytes(), 0);
        // But the update is retained.
        assert_eq!(reps[0].row(0, 1)[0], 1.0 * 2.0 + 1.0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_rounds() {
        use gw2v_util::rng::{Rng64, Xoshiro256};
        // A single SyncScratch carried across rounds (slots and buffers
        // recycled, pool warm) must produce exactly the models a fresh
        // scratch per round does — for every combiner, over enough rounds
        // that the pool is actually reused.
        for combiner in [
            CombinerKind::Sum,
            CombinerKind::Avg,
            CombinerKind::ModelCombiner,
            CombinerKind::ModelCombinerPairwise,
        ] {
            let cfg = cfg(SyncPlan::RepModelOpt, combiner);
            let mut reused_reps = make_replicas(3, 10, 4);
            let mut fresh_reps = make_replicas(3, 10, 4);
            let mut s1 = CommStats::default();
            let mut s2 = CommStats::default();
            let mut scratch = SyncScratch::new();
            let mut rng = Xoshiro256::new(99);
            for round in 0..4 {
                // Identical pseudo-random touches on both replica sets.
                for h in 0..3 {
                    for _ in 0..5 {
                        let layer = rng.index(2);
                        let node = rng.index(10) as u32;
                        let slot = rng.index(4);
                        let bump = rng.next_f32() - 0.5;
                        reused_reps[h].row_mut(layer, node)[slot] += bump;
                        fresh_reps[h].row_mut(layer, node)[slot] += bump;
                    }
                }
                let v1 =
                    sync_round_with_scratch(&mut reused_reps, &cfg, None, &mut s1, &mut scratch);
                let v2 = sync_round(&mut fresh_reps, &cfg, None, &mut s2);
                assert_eq!(
                    v1.total_bytes(),
                    v2.total_bytes(),
                    "{combiner:?} round {round}"
                );
                for h in 0..3 {
                    assert_eq!(
                        reused_reps[h].layers, fresh_reps[h].layers,
                        "{combiner:?} round {round} host {h}"
                    );
                }
            }
            assert_eq!(s1.total_bytes(), s2.total_bytes(), "{combiner:?}");
        }
    }

    #[test]
    fn degraded_round_routes_to_adopter() {
        // Host 1 of 3 is dead. Hosts 0 and 2 touch node 5 (block-owned by
        // the dead host 1 → adopted by host 2); the reconciled value must
        // land on host 2's replica and broadcast only to host 0.
        let mut reps = make_replicas(3, 9, 1);
        let mut live = Liveness::all(3);
        live.mark_dead(1);
        reps[0].row_mut(0, 5)[0] += 1.0;
        reps[2].row_mut(0, 5)[0] += 2.0;
        let base = 5.0;
        let dead_before = reps[1].layers.clone();
        let mut stats = CommStats::default();
        let mut scratch = SyncScratch::new();
        let v = sync_round_degraded(
            &mut reps,
            &cfg(SyncPlan::RepModelOpt, CombinerKind::Sum),
            None,
            &mut stats,
            &mut scratch,
            &live,
            &mut WireState::Classic,
        );
        assert_eq!(reps[2].row(0, 5)[0], base + 3.0, "adopter holds canonical");
        assert_eq!(reps[0].row(0, 5)[0], base + 3.0, "survivor mirrors it");
        assert_eq!(reps[1].layers, dead_before, "dead replica stays frozen");
        // One delta shipped (host 0 → adopter 2), one broadcast back.
        assert_eq!(stats.reduce_msgs, 1);
        assert_eq!(stats.broadcast_msgs, 1);
        assert!(v.total_bytes() > 0);
        let canon = assemble_canonical_live(&reps, &live);
        assert_eq!(canon[0].row(5)[0], base + 3.0);
    }

    #[test]
    fn assemble_canonical_reads_masters() {
        let mut reps = make_replicas(2, 4, 1);
        // Desynchronize *without* tracking: replicas disagree.
        reps[0].row_mut_untracked(0, 0)[0] = 100.0; // node 0 owned by host 0
        reps[1].row_mut_untracked(0, 0)[0] = -1.0;
        reps[0].row_mut_untracked(0, 3)[0] = -1.0; // node 3 owned by host 1
        reps[1].row_mut_untracked(0, 3)[0] = 300.0;
        let canon = assemble_canonical(&reps);
        assert_eq!(canon[0].row(0)[0], 100.0);
        assert_eq!(canon[0].row(3)[0], 300.0);
    }
}
