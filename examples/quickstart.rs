//! Quickstart: generate a corpus, train embeddings sequentially, inspect
//! nearest neighbours and analogy accuracy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graph_word2vec::core::params::Hyperparams;
use graph_word2vec::core::trainer_seq::SequentialTrainer;
use graph_word2vec::corpus::datasets::{DatasetPreset, Scale};
use graph_word2vec::corpus::shard::Corpus;
use graph_word2vec::corpus::tokenizer::TokenizerConfig;
use graph_word2vec::corpus::vocab::VocabBuilder;
use graph_word2vec::eval::analogy::evaluate;
use graph_word2vec::eval::knn::EmbeddingIndex;

fn main() {
    // 1. A synthetic corpus standing in for the paper's datasets
    //    (1-billion-sim at the Tiny scale: ~80 K tokens).
    let preset = DatasetPreset::by_name("1-billion").expect("preset exists");
    let synth = preset.generate(Scale::Tiny, 42);
    println!(
        "corpus: {} tokens, {} analogy questions",
        synth.n_tokens,
        synth.analogies.total_questions()
    );

    // 2. Vocabulary + encoded corpus (the graph's nodes + the worklist).
    let mut builder = VocabBuilder::new();
    let tok_cfg = TokenizerConfig::default();
    for sentence in
        graph_word2vec::corpus::tokenizer::sentences_from_text(&synth.text, tok_cfg.clone())
    {
        builder.add_sentence(&sentence);
    }
    let vocab = builder.build(1);
    let corpus = Corpus::from_text(&synth.text, &vocab, tok_cfg);
    println!("vocabulary: {} unique words", vocab.len());

    // 3. Train (sequential baseline; see distributed_scaling.rs for the
    //    multi-host engine).
    let params = Hyperparams {
        dim: 48,
        negative: 5,
        epochs: 8,
        ..Hyperparams::default()
    };
    let trainer = SequentialTrainer::new(params);
    let model = trainer.train_with_callback(&corpus, &vocab, |epoch, model| {
        let report = evaluate(model, &vocab, &synth.analogies);
        println!(
            "epoch {:>2}: semantic {:>5.1}%  syntactic {:>5.1}%  total {:>5.1}%",
            epoch + 1,
            report.semantic(),
            report.syntactic(),
            report.total()
        );
    });

    // 4. Nearest neighbours of a planted relation word.
    let index = EmbeddingIndex::new(&model);
    let probe = "capital-common_a0";
    if let Some(id) = vocab.id_of(probe) {
        println!("\nnearest neighbours of {probe}:");
        for (w, score) in index.nearest(index.vector(id), 5, &[id]) {
            println!("  {:<24} {:.3}", vocab.word_of(w), score);
        }
    }
}
