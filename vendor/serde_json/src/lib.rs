//! Minimal, self-contained stand-in for the `serde_json` crate.
//!
//! Writes and parses JSON over the vendored serde stub's [`Value`] tree.
//! Non-finite floats (which JSON cannot represent) are written as `null`
//! and read back as NaN.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Result alias matching the real crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Debug formatting is shortest-roundtrip and always includes
                // a `.0` or exponent, keeping the output valid JSON.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, level),
        Value::Map(entries) => write_map(out, entries, indent, level),
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, level: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_value(out, item, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, level: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push('}');
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("expected value at offset {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(x) = stripped.parse::<u64>() {
                    if x <= i64::MAX as u64 {
                        return Ok(Value::Int(-(x as i64)));
                    }
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::UInt(x));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn roundtrip_scalars() {
        let json = to_string(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn roundtrip_floats() {
        for x in [0.1f64, -1.5, 1e30, 1e-30, 0.0, 123456789.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "json was {json}");
        }
        for x in [0.1f32, -2.5, 3.4e38, 1.2e-38] {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back, x, "json was {json}");
        }
    }

    #[test]
    fn roundtrip_strings_and_maps() {
        let mut m = HashMap::new();
        m.insert("hello \"world\"\n".to_string(), 7u64);
        m.insert("unicode: äöü".to_string(), 9);
        let json = to_string_pretty(&m).unwrap();
        let back: HashMap<String, u64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nonfinite_becomes_null_then_nan() {
        let json = to_string(&f32::NAN).unwrap();
        assert_eq!(json, "null");
        let back: f32 = from_str(&json).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn negative_integers() {
        let json = to_string(&-42i64).unwrap();
        assert_eq!(json, "-42");
        let back: i64 = from_str(&json).unwrap();
        assert_eq!(back, -42);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("nope").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
