//! Property-based tests on the training operator: robustness invariants
//! that must hold for *any* sentence content and hyperparameter draw.

use gw2v_core::model::Word2VecModel;
use gw2v_core::params::Hyperparams;
use gw2v_core::setup::TrainSetup;
use gw2v_core::sgns::{train_sentence, PlainStore, RecordingStore, TrainScratch};
use gw2v_corpus::vocab::{VocabBuilder, Vocabulary};
use gw2v_util::rng::Xoshiro256;
use proptest::prelude::*;

fn vocab_n(n: usize) -> Vocabulary {
    let mut b = VocabBuilder::new();
    for i in 0..n {
        for _ in 0..(n - i) {
            b.add_token(&format!("w{i:03}"));
        }
    }
    b.build(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the sentence, learning rate (within the stable range) and
    /// window/negative settings, one training pass must keep every model
    /// value finite.
    #[test]
    fn training_never_produces_nan(
        sentence in proptest::collection::vec(0u32..30, 0..40),
        window in 1usize..6,
        negative in 0usize..8,
        alpha in 0.0f32..0.5,
        seed in 0u64..1000,
    ) {
        let vocab = vocab_n(30);
        let params = Hyperparams {
            dim: 12,
            window,
            negative,
            subsample: 0.0,
            ..Hyperparams::test_scale()
        };
        let setup = TrainSetup::new(&vocab, &params);
        let ctx = setup.ctx(&params);
        let mut model = Word2VecModel::init(30, 12, seed);
        let mut rng = Xoshiro256::new(seed);
        let mut scratch = TrainScratch::default();
        let mut store = PlainStore { syn0: &mut model.syn0, syn1neg: &mut model.syn1neg };
        train_sentence(&mut store, &sentence, alpha, &ctx, &mut rng, &mut scratch);
        prop_assert!(model.syn0.as_slice().iter().all(|v| v.is_finite()));
        prop_assert!(model.syn1neg.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Pair count is bounded by |sentence| × 2·window and is zero for
    /// sentences shorter than 2 tokens.
    #[test]
    fn pair_count_bounds(
        sentence in proptest::collection::vec(0u32..20, 0..30),
        window in 1usize..5,
        seed in 0u64..100,
    ) {
        let vocab = vocab_n(20);
        let params = Hyperparams {
            dim: 8,
            window,
            negative: 2,
            subsample: 0.0,
            ..Hyperparams::test_scale()
        };
        let setup = TrainSetup::new(&vocab, &params);
        let ctx = setup.ctx(&params);
        let mut model = Word2VecModel::init(20, 8, 1);
        let mut rng = Xoshiro256::new(seed);
        let mut scratch = TrainScratch::default();
        let mut store = PlainStore { syn0: &mut model.syn0, syn1neg: &mut model.syn1neg };
        let pairs = train_sentence(&mut store, &sentence, 0.025, &ctx, &mut rng, &mut scratch);
        prop_assert!(pairs as usize <= sentence.len() * 2 * window);
        if sentence.len() < 2 {
            prop_assert_eq!(pairs, 0);
        }
    }

    /// The inspection replay (RecordingStore with a cloned RNG) always
    /// predicts the exact touch sets of the real execution — for any
    /// sentence, window, negative count and subsampling threshold. This
    /// is THE correctness property of the PullModel plan.
    #[test]
    fn inspection_always_predicts_touches(
        sentence in proptest::collection::vec(0u32..25, 0..30),
        window in 1usize..5,
        negative in 0usize..6,
        subsample in prop_oneof![Just(0.0f64), Just(1e-2), Just(1e-4)],
        seed in 0u64..500,
    ) {
        let vocab = vocab_n(25);
        let params = Hyperparams {
            dim: 8,
            window,
            negative,
            subsample,
            ..Hyperparams::test_scale()
        };
        let setup = TrainSetup::new(&vocab, &params);
        let ctx = setup.ctx(&params);
        // Inspection pass.
        let mut recorder = RecordingStore::new(25, 8);
        let mut rng_probe = Xoshiro256::new(seed);
        let mut scratch = TrainScratch::default();
        train_sentence(&mut recorder, &sentence, 0.0, &ctx, &mut rng_probe, &mut scratch);
        // Real pass on a tracked replica.
        let init = Word2VecModel::init(25, 8, 3);
        let mut replica = gw2v_gluon::ModelReplica::new(vec![init.syn0, init.syn1neg]);
        let mut rng_real = Xoshiro256::new(seed);
        {
            let mut store = gw2v_core::sgns::ReplicaStore { replica: &mut replica };
            train_sentence(&mut store, &sentence, 0.025, &ctx, &mut rng_real, &mut scratch);
        }
        prop_assert_eq!(&recorder.syn0_access, replica.tracker(0).touched_bits());
        prop_assert_eq!(&recorder.syn1_access, replica.tracker(1).touched_bits());
    }
}
