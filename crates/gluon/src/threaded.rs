//! Threaded cluster engine: one OS thread per host.
//!
//! This is the engine a real multi-core/multi-host deployment would use:
//! hosts run concurrently, exchange serialized [`crate::wire`] buffers
//! over crossbeam channels, and separate protocol phases with a barrier.
//! It implements the same reduce/broadcast semantics as the sequential
//! engine ([`crate::sync::sync_round`]) and produces **bit-identical
//! models**: incoming deltas are folded in source-host-id order, so the
//! (order-sensitive) model combiner sees the same sequence either way.
//! The equivalence is pinned by tests here and in `tests/`.
//!
//! # Reliability
//!
//! The transport is lossy by decree: a [`FaultPlan`] may drop messages,
//! flip payload bits, delay hosts or kill them outright. The protocol
//! therefore ships every payload inside a CRC-32 frame
//! ([`crate::wire::seal_frame`]) and runs a NAK/resend loop on top:
//!
//! * every phase (reduce, broadcast) carries a lockstep sequence number;
//! * senders buffer each phase's payloads until the phase's closing
//!   barrier, so any receiver still missing data can NAK the
//!   `(sender, layer)` slot and get a retransmission;
//! * receivers NAK on CRC failure immediately and on silence; the
//!   silence window grows per NAK round by deterministic exponential
//!   backoff with seeded jitter ([`crate::cost::nak_backoff_secs`],
//!   base [`ClusterConfig::nak_delay`]), with bounded retries
//!   ([`ClusterConfig::max_retries`]);
//! * duplicate deliveries (a resend racing the original, or the `dup`
//!   injector sending a clean frame twice) are deduped by
//!   `(sender, layer)` and counted under `faults.recovered.dedup`;
//!   resent bytes are identical, so either copy folds bit-identically;
//! * `reorder` injection defers chosen sends to the end of their
//!   phase's send sequence, shuffling per-channel delivery order; model
//!   bits are unaffected because receivers fold in host-id order;
//! * a stall-mode `partition` withholds cross-group data frames of
//!   covered rounds ([`HostCtx::begin_round`] supplies the round index)
//!   for the first [`gw2v_faults::PARTITION_STALL_ATTEMPTS`] delivery
//!   attempts; the NAK loop heals the channel deterministically.
//!   Control frames (NAKs, state transfer) bypass the injector, so the
//!   protocol cannot deadlock;
//! * the phase barrier is crash-aware ([`HostCtx::barrier_wait`]): it
//!   releases when all *registered-alive* hosts arrive, serves NAKs while
//!   waiting, and counts long waits under `gluon.barrier_timeout`.
//!
//! Crashed hosts flag themselves in the shared liveness registry at a
//! round boundary; survivors route around them using a deterministic
//! [`Liveness`] view (see [`sync_round_threaded_degraded`]), with the
//! next alive host adopting the dead host's master block.
//!
//! With an inert plan the protocol delivers every frame on the first
//! attempt and the fold/apply path is unchanged, so faultless runs stay
//! bit-identical to the sequential engine — `tests/chaos.rs` pins this.
//!
//! All three plans are supported. `RepModelNaive` and `RepModelOpt` run
//! two phases per round (reduce, broadcast); `PullModel` runs three
//! (reduce, pull-request, pull-response): instead of broadcasting, each
//! host ships per-owner node-id lists from its inspection-derived access
//! sets and owners respond with exactly the requested canonical rows —
//! the same rows the sequential engine copies in its pull pass, so the
//! engines stay bit-identical per replica.
//!
//! Beyond the phase protocol, the fabric carries **out-of-band state
//! transfer** for crashed-host re-admission: at an epoch boundary a
//! rejoining host's adopter streams its full replica (plus the ward's
//! RNG state and schedule position) back over CRC-sealed frames tagged
//! with [`STATE_TRANSFER_SEQ`], outside the lockstep phase numbering and
//! the fault injector (state transfer models a reliable bulk channel).

use crate::liveness::{Liveness, SharedLiveness};
use crate::plan::{AccessSets, SyncConfig, SyncPlan};
use crate::replica::ModelReplica;
use crate::sync::NodeAccSlab;
use crate::volume::CommStats;
use crate::wire::{
    entry_bytes, open_frame, quant_entry_bytes, seal_frame, Channel, DeltaForm, QuantDecoder,
    RowDecoder, RowEncoder, ValueDecoder, WireState,
};
use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gw2v_faults::{counters, FaultPlan};
use gw2v_graph::partition::{master_block, master_host};
use gw2v_util::bitvec::BitVec;
use gw2v_util::fvec::FlatMatrix;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Verified payloads collected for one sync phase, keyed by
/// `(sender host, layer)`; the `bool` is the sender's `value_only` tag.
type PhasePayloads = HashMap<(usize, usize), (Bytes, bool)>;

/// A cluster-fabric failure surfaced to the caller instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// A send to `to` failed while `to` was still registered alive
    /// (its thread is gone without flagging the liveness registry).
    SendFailed {
        /// Sending host.
        from: usize,
        /// Intended receiver.
        to: usize,
    },
    /// `host`'s own receive channel closed (all peer threads gone).
    RecvFailed {
        /// The host whose channel died.
        host: usize,
    },
    /// `host` gave up waiting for `(peer, layer)` after
    /// [`ClusterConfig::max_retries`] NAK rounds went unanswered.
    RetriesExhausted {
        /// The starved receiver.
        host: usize,
        /// The peer that never delivered.
        peer: usize,
        /// Model layer of the missing payload.
        layer: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::SendFailed { from, to } => {
                write!(
                    f,
                    "host {from}: send to live host {to} failed (channel closed)"
                )
            }
            ClusterError::RecvFailed { host } => {
                write!(f, "host {host}: receive channel closed (all peers gone)")
            }
            ClusterError::RetriesExhausted { host, peer, layer } => write!(
                f,
                "host {host}: no payload from host {peer} for layer {layer} after max retries"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Timing knobs for the reliable transport.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Receive-poll granularity inside collect loops and barrier waits.
    pub tick: Duration,
    /// Silence (no progress) tolerated before NAKing missing payloads.
    pub nak_delay: Duration,
    /// NAK rounds per phase before a receiver errors out with
    /// [`ClusterError::RetriesExhausted`].
    pub max_retries: u32,
    /// Barrier wait beyond this duration counts one
    /// `gluon.barrier_timeout` (the stuck-peer signal; the wait itself
    /// continues until the alive set arrives).
    pub barrier_timeout: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(2),
            nak_delay: Duration::from_millis(25),
            max_retries: 200,
            barrier_timeout: Duration::from_millis(250),
        }
    }
}

impl ClusterConfig {
    /// Defaults overridden by the `GW2V_NAK_DELAY_MS`,
    /// `GW2V_MAX_RETRIES` and `GW2V_BARRIER_TIMEOUT_MS` environment
    /// variables (the env-var twins of the `--nak-delay`,
    /// `--max-retries` and `--barrier-timeout` CLI knobs). A set but
    /// unparseable value is an error, never silently ignored.
    pub fn from_env() -> Result<Self, String> {
        fn env_parse<T: std::str::FromStr>(name: &str) -> Result<Option<T>, String> {
            match std::env::var(name) {
                Err(_) => Ok(None),
                Ok(raw) => raw
                    .parse()
                    .map(Some)
                    .map_err(|_| format!("{name}: cannot parse {raw:?}")),
            }
        }
        let mut cfg = Self::default();
        if let Some(ms) = env_parse::<f64>("GW2V_NAK_DELAY_MS")? {
            cfg.nak_delay = Duration::from_secs_f64(ms / 1e3);
        }
        if let Some(n) = env_parse::<u32>("GW2V_MAX_RETRIES")? {
            cfg.max_retries = n;
        }
        if let Some(ms) = env_parse::<f64>("GW2V_BARRIER_TIMEOUT_MS")? {
            cfg.barrier_timeout = Duration::from_secs_f64(ms / 1e3);
        }
        Ok(cfg)
    }
}

/// What a [`Message`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// A sealed payload frame; `attempt` counts retransmissions so the
    /// fault injector draws an independent coin per delivery attempt.
    Data {
        /// 0 for the original send, incremented per resend.
        attempt: u32,
    },
    /// A negative acknowledgement: "resend your payload for `layer` of
    /// phase `seq` to me". Payload is empty.
    Nak,
}

/// A message between host threads: one layer's payload for one phase.
/// Cloning is cheap (`Bytes` is reference-counted); the dup injector
/// clones a sealed frame to deliver it twice.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending host.
    pub from: usize,
    /// Model layer the payload belongs to.
    pub layer: usize,
    /// Lockstep phase sequence number (two phases per sync round).
    pub seq: u64,
    /// Data or NAK.
    pub kind: MsgKind,
    /// True when the payload is a compact form only the receiver's wire
    /// state can expand: a memoized value-only buffer
    /// ([`crate::wire::WireMode::Memo`] cache hit, decoded against the
    /// receiver's cached id list) or a delta mask + changed-rows buffer
    /// ([`crate::wire::WireMode::Delta`], replayed against the
    /// receiver's shadow copy). Metadata, not payload: it rides outside
    /// the CRC-sealed frame (like `from`/`layer`/`seq`) so byte
    /// accounting stays exact and the fault injector's bit flips cannot
    /// silently change a payload's layout.
    pub value_only: bool,
    /// Sealed frame for data (`(node, row)` entries, or a compact form
    /// when `value_only`); empty for NAKs.
    pub payload: Bytes,
}

/// Generation-counting barrier that releases when all *registered-alive*
/// hosts arrive, so a crashed host cannot wedge the cluster.
#[derive(Debug)]
struct FaultBarrier {
    lock: Mutex<BarrierGen>,
    cvar: Condvar,
}

#[derive(Debug, Default)]
struct BarrierGen {
    arrived: usize,
    generation: u64,
}

impl FaultBarrier {
    fn new() -> Self {
        Self {
            lock: Mutex::new(BarrierGen::default()),
            cvar: Condvar::new(),
        }
    }

    /// Waits until all alive hosts arrive. `on_tick` runs (unlocked)
    /// roughly every `tick` so waiters keep serving NAKs. Returns true
    /// if the wait exceeded `patience`.
    fn wait(
        &self,
        live: &SharedLiveness,
        tick: Duration,
        patience: Duration,
        mut on_tick: impl FnMut(),
    ) -> bool {
        let start = Instant::now();
        let mut guard = self.lock.lock().unwrap();
        let generation = guard.generation;
        guard.arrived += 1;
        if guard.arrived >= live.n_alive() {
            guard.arrived = 0;
            guard.generation += 1;
            drop(guard);
            self.cvar.notify_all();
            return false;
        }
        let mut late = false;
        loop {
            let (g, res) = self.cvar.wait_timeout(guard, tick).unwrap();
            guard = g;
            if guard.generation != generation {
                return late;
            }
            if res.timed_out() {
                // A host may have died while we waited: re-check whether
                // the remaining alive set is already fully here.
                if guard.arrived >= live.n_alive() {
                    guard.arrived = 0;
                    guard.generation += 1;
                    drop(guard);
                    self.cvar.notify_all();
                    return late;
                }
                late = late || start.elapsed() >= patience;
                drop(guard);
                on_tick();
                guard = self.lock.lock().unwrap();
                if guard.generation != generation {
                    return late;
                }
            }
        }
    }

    /// Wakes all waiters to re-check the alive set (called by
    /// [`ClusterState::mark_dead`]).
    fn poke(&self, live: &SharedLiveness) {
        let mut guard = self.lock.lock().unwrap();
        if guard.arrived > 0 && guard.arrived >= live.n_alive() {
            guard.arrived = 0;
            guard.generation += 1;
        }
        drop(guard);
        self.cvar.notify_all();
    }
}

/// Shared fabric state: fault plan, transport config, liveness registry
/// and the crash-aware barrier.
#[derive(Debug)]
struct ClusterState {
    plan: FaultPlan,
    config: ClusterConfig,
    live: SharedLiveness,
    barrier: FaultBarrier,
}

impl ClusterState {
    fn mark_dead(&self, host: usize) {
        self.live.mark_dead(host);
        self.barrier.poke(&self.live);
    }
}

/// A buffered payload awaiting possible retransmission.
#[derive(Debug)]
struct ResendSlot {
    payload: Bytes,
    value_only: bool,
    attempts: u32,
}

/// Sequence number reserved for out-of-band state-transfer frames
/// (crashed-host re-admission). They ride the same channels as protocol
/// messages but sit outside the lockstep phase numbering and bypass the
/// drop/flip injector — state transfer models a reliable bulk transport.
pub const STATE_TRANSFER_SEQ: u64 = u64::MAX;

/// Payload bytes of the re-admission control frame: the ward's four
/// Xoshiro256 state words plus its schedule position, all `u64`. The
/// sequential simulator charges the same constant to
/// `gluon.state_transfer_bytes` so both engines report identical
/// transfer volumes.
pub const REJOIN_CONTROL_BYTES: u64 = 5 * 8;

/// Protocol phases per sync round: the replication plans run reduce +
/// broadcast, PullModel runs reduce + pull-request + pull-response. A
/// re-admitted host resynchronizes its lockstep sequence counter to
/// `phases_per_round(plan) · completed_rounds`.
pub const fn phases_per_round(plan: SyncPlan) -> u64 {
    match plan {
        SyncPlan::PullModel => 3,
        SyncPlan::RepModelNaive | SyncPlan::RepModelOpt => 2,
    }
}

/// Tag (in the layer slot) of a state transfer's leading control frame.
const STATE_CTRL_TAG: usize = usize::MAX;
/// Tag of the rejoiner's closing acknowledgement frame.
const STATE_ACK_TAG: usize = usize::MAX - 1;

/// A host thread's handle to the cluster fabric.
pub struct HostCtx {
    /// This host's id.
    pub host: usize,
    /// Total hosts.
    pub n_hosts: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    state: Arc<ClusterState>,
    /// Lockstep phase counter; all hosts advance it identically.
    seq: Cell<u64>,
    /// Current global sync round, set by the driver
    /// ([`HostCtx::begin_round`]); partition blocking is round-indexed.
    round: Cell<usize>,
    /// Current phase's sent payloads, kept until the closing barrier so
    /// NAKs can be served.
    resend: RefCell<HashMap<(usize, usize), ResendSlot>>,
    /// Sends deferred by the reorder injector, flushed (in deferral
    /// order, i.e. shuffled relative to the canonical send sequence) at
    /// the start of this host's next collect.
    deferred: RefCell<Vec<(usize, usize, Bytes, bool)>>,
    /// Stash for frames from a future phase (drained at next collect).
    pending: RefCell<VecDeque<Message>>,
    /// Dead hosts this ctx has already counted under `faults.detected.crash`.
    crash_noted: RefCell<Vec<bool>>,
}

fn empty_bytes() -> Bytes {
    BytesMut::new().freeze()
}

impl HostCtx {
    /// The fault plan this cluster runs under.
    pub fn plan(&self) -> &FaultPlan {
        &self.state.plan
    }

    /// Flags this host dead in the liveness registry and wakes any
    /// barrier waiters; the host must stop syncing after this.
    pub fn mark_self_dead(&self) {
        counters::bump(counters::INJECTED_CRASH);
        self.state.mark_dead(self.host);
    }

    /// Sleeps out any straggler delay the plan schedules for this host in
    /// `global_round` (counted under `faults.injected.straggle`).
    pub fn maybe_straggle(&self, global_round: usize) {
        if let Some(delay) = self.state.plan.straggler_delay(self.host, global_round) {
            counters::bump(counters::INJECTED_STRAGGLE);
            std::thread::sleep(Duration::from_secs_f64(delay));
        }
    }

    /// Blocks until `dead` is flagged in the liveness registry, counting
    /// the first observation under `faults.detected.crash`. Callers know
    /// *when* a peer dies from the shared plan; this confirms the death
    /// through the runtime registry before degrading the round.
    pub fn await_death(&self, dead: usize) {
        assert_ne!(dead, self.host, "a host cannot await its own death");
        while self.state.live.is_alive(dead) {
            std::thread::yield_now();
        }
        let mut noted = self.crash_noted.borrow_mut();
        if !noted[dead] {
            noted[dead] = true;
            counters::bump(counters::DETECTED_CRASH);
        }
    }

    /// Tells the fabric which global sync round the next phases belong
    /// to. Drivers call this once per round before syncing; partition
    /// blocking ([`FaultPlan::partition_blocked`]) is round-indexed, so
    /// the fabric cannot derive it from the phase counter alone (plans
    /// differ in phases per round).
    pub fn begin_round(&self, global_round: usize) {
        self.round.set(global_round);
    }

    /// Opens a new phase: advances the lockstep sequence number and
    /// forgets the previous phase's resend buffer (its closing barrier
    /// proved every receiver got the data).
    fn begin_phase(&self) {
        self.seq.set(self.seq.get() + 1);
        self.resend.borrow_mut().clear();
    }

    /// Sends `msg` to `to`, tolerating channels of dead hosts.
    fn post(&self, to: usize, msg: Message) -> Result<(), ClusterError> {
        if self.senders[to].send(msg).is_err() && self.state.live.is_alive(to) {
            return Err(ClusterError::SendFailed {
                from: self.host,
                to,
            });
        }
        Ok(())
    }

    /// Buffers `payload` for NAK service, then delivers it (attempt 0)
    /// through the fault injector. `value_only` tags memoized payloads
    /// ([`crate::wire::WireMode::Memo`] cache hits).
    fn ship(
        &self,
        to: usize,
        layer: usize,
        payload: Bytes,
        value_only: bool,
    ) -> Result<(), ClusterError> {
        self.resend.borrow_mut().insert(
            (to, layer),
            ResendSlot {
                payload: payload.clone(),
                value_only,
                attempts: 0,
            },
        );
        // Reorder injection: defer this send to the end of the phase's
        // send sequence (flushed at the next collect). The ResendSlot is
        // already registered, so NAK recovery covers the deferred frame.
        if self
            .state
            .plan
            .should_reorder(self.host, to, layer, self.seq.get())
        {
            counters::bump(counters::INJECTED_REORDER);
            self.deferred
                .borrow_mut()
                .push((to, layer, payload, value_only));
            return Ok(());
        }
        self.send_data(to, layer, &payload, value_only, 0)
    }

    /// One delivery attempt: the injector may withhold the frame or flip
    /// one bit of it; what survives goes on the channel sealed.
    fn send_data(
        &self,
        to: usize,
        layer: usize,
        payload: &Bytes,
        value_only: bool,
        attempt: u32,
    ) -> Result<(), ClusterError> {
        let seq = self.seq.get();
        let plan = &self.state.plan;
        let round = self.round.get();
        // Stall-mode partition: withhold the first
        // PARTITION_STALL_ATTEMPTS cross-group delivery attempts of a
        // covered round; the receiver's NAK loop heals the channel.
        if plan.partition_blocked(self.host, to, round, attempt) {
            counters::bump(counters::INJECTED_PARTITION);
            return Ok(());
        }
        if attempt > 0 && plan.partition_blocked(self.host, to, round, attempt - 1) {
            // First unblocked attempt on a partitioned channel.
            counters::bump(counters::RECOVERED_HEAL);
        }
        if plan.should_drop(self.host, to, layer, seq, attempt) {
            counters::bump(counters::INJECTED_DROP);
            return Ok(());
        }
        let mut frame = seal_frame(payload);
        let mut clean = true;
        if let Some(bit) = plan.flip_bit(self.host, to, layer, seq, attempt, frame.len()) {
            let mut raw = frame.as_slice().to_vec();
            raw[bit / 8] ^= 1 << (bit % 8);
            frame = Bytes::from(raw);
            clean = false;
            counters::bump(counters::INJECTED_FLIP);
        }
        let msg = Message {
            from: self.host,
            layer,
            seq,
            kind: MsgKind::Data { attempt },
            value_only,
            payload: frame,
        };
        // Dup injection: a *clean* delivery goes on the wire twice; the
        // receiver's (sender, layer) dedup discards the second copy.
        if clean && plan.should_dup(self.host, to, layer, seq, attempt) {
            counters::bump(counters::INJECTED_DUP);
            self.post(to, msg.clone())?;
        }
        self.post(to, msg)
    }

    /// Asks `peer` to retransmit its current-phase payload for `layer`.
    fn nak(&self, peer: usize, layer: usize) -> Result<(), ClusterError> {
        self.post(
            peer,
            Message {
                from: self.host,
                layer,
                seq: self.seq.get(),
                kind: MsgKind::Nak,
                value_only: false,
                payload: empty_bytes(),
            },
        )
    }

    /// Retransmits the buffered payload a NAK points at. Stale NAKs
    /// (earlier phases) are ignored — their phase's closing barrier
    /// proved delivery.
    fn serve_nak(&self, to: usize, layer: usize, seq: u64) -> Result<(), ClusterError> {
        if seq != self.seq.get() {
            return Ok(());
        }
        let (payload, value_only, attempt) = {
            let mut resend = self.resend.borrow_mut();
            match resend.get_mut(&(to, layer)) {
                Some(slot) => {
                    slot.attempts += 1;
                    (slot.payload.clone(), slot.value_only, slot.attempts)
                }
                // NAK for a slot we never shipped this phase; nothing to do.
                None => return Ok(()),
            }
        };
        counters::bump(counters::RECOVERED_RESEND);
        self.send_data(to, layer, &payload, value_only, attempt)
    }

    /// Drains whatever is queued without blocking: serves NAKs, stashes
    /// future-phase data, drops current-phase duplicates. Runs from
    /// barrier waits, where this host's collect is already complete.
    fn drain_for_naks(&self) {
        while let Ok(msg) = self.receiver.try_recv() {
            match msg.kind {
                MsgKind::Nak => {
                    // A send failure here means a peer thread vanished
                    // without flagging liveness; its own collect will
                    // surface the error (or its panic fails the join).
                    let _ = self.serve_nak(msg.from, msg.layer, msg.seq);
                }
                MsgKind::Data { .. } => {
                    if msg.seq > self.seq.get() {
                        self.pending.borrow_mut().push_back(msg);
                    }
                }
            }
        }
    }

    /// Receives one payload per `(alive peer, layer)` slot for the
    /// current phase, NAKing corrupt or missing deliveries until the set
    /// completes or retries exhaust. Each entry carries the sender's
    /// `value_only` tag alongside the verified payload.
    fn collect_phase(
        &self,
        live: &Liveness,
        n_layers: usize,
    ) -> Result<PhasePayloads, ClusterError> {
        let seq = self.seq.get();
        let cfg = self.state.config;
        // Flush reorder-deferred sends now, after every in-order send of
        // the phase has gone out: per-channel delivery order is shuffled
        // relative to the canonical send sequence, but every frame still
        // belongs to this phase (each phase is ship-loop then collect on
        // the same host), so model bits — folded in host-id order at the
        // receiver — are unaffected.
        let deferred: Vec<(usize, usize, Bytes, bool)> =
            self.deferred.borrow_mut().drain(..).collect();
        for (to, layer, payload, value_only) in deferred {
            self.send_data(to, layer, &payload, value_only, 0)?;
        }
        let expected: Vec<(usize, usize)> = (0..self.n_hosts)
            .filter(|&h| h != self.host && live.is_alive(h))
            .flat_map(|h| (0..n_layers).map(move |l| (h, l)))
            .collect();
        let mut got: HashMap<(usize, usize), (Bytes, bool)> =
            HashMap::with_capacity(expected.len());

        let handle = |msg: Message,
                      got: &mut HashMap<(usize, usize), (Bytes, bool)>|
         -> Result<bool, ClusterError> {
            match msg.kind {
                MsgKind::Nak => {
                    self.serve_nak(msg.from, msg.layer, msg.seq)?;
                    Ok(false)
                }
                MsgKind::Data { .. } => {
                    let key = (msg.from, msg.layer);
                    if got.contains_key(&key) {
                        // Duplicate delivery (dup injection or a resend
                        // racing its NAK) — the slot is filled, discard.
                        counters::bump(counters::RECOVERED_DEDUP);
                        return Ok(false);
                    }
                    if !live.is_alive(msg.from) {
                        return Ok(false); // routed-around host
                    }
                    match open_frame(&msg.payload) {
                        Ok(payload) => {
                            got.insert(key, (payload, msg.value_only));
                            Ok(true)
                        }
                        Err(_) => {
                            counters::bump(counters::DETECTED_CORRUPT);
                            self.nak(msg.from, msg.layer)?;
                            Ok(false)
                        }
                    }
                }
            }
        };

        // Frames stashed by an earlier barrier drain may belong to this
        // phase now.
        let stashed: Vec<Message> = self.pending.borrow_mut().drain(..).collect();
        for msg in stashed {
            if msg.seq == seq {
                handle(msg, &mut got)?;
            } else if msg.seq > seq {
                self.pending.borrow_mut().push_back(msg);
            }
        }

        let mut last_progress = Instant::now();
        let mut nak_rounds = 0u32;
        while got.len() < expected.len() {
            match self.receiver.recv_timeout(cfg.tick) {
                Ok(msg) => {
                    if msg.seq > seq {
                        self.pending.borrow_mut().push_back(msg);
                        continue;
                    }
                    if msg.seq < seq {
                        continue; // stale duplicate or stale NAK
                    }
                    if handle(msg, &mut got)? {
                        last_progress = Instant::now();
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClusterError::RecvFailed { host: self.host })
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Adaptive cadence: NAK round k fires only after a
                    // deterministic exponential-with-jitter silence
                    // window ([`crate::cost::nak_backoff_secs`]), so
                    // retry load spreads instead of synchronizing.
                    let wait = crate::cost::nak_backoff_secs(
                        &self.state.plan,
                        cfg.nak_delay.as_secs_f64(),
                        self.host,
                        seq,
                        nak_rounds,
                    );
                    if last_progress.elapsed() < Duration::from_secs_f64(wait) {
                        continue;
                    }
                    let missing: Vec<(usize, usize)> = expected
                        .iter()
                        .filter(|k| !got.contains_key(k))
                        .copied()
                        .collect();
                    nak_rounds += 1;
                    if nak_rounds > cfg.max_retries {
                        let (peer, layer) = missing[0];
                        return Err(ClusterError::RetriesExhausted {
                            host: self.host,
                            peer,
                            layer,
                        });
                    }
                    counters::bump(counters::DETECTED_TIMEOUT);
                    gw2v_obs::observe("gluon.nak_backoff_ms", (wait * 1e3) as u64);
                    for (peer, layer) in missing {
                        self.nak(peer, layer)?;
                    }
                    last_progress = Instant::now();
                }
            }
        }
        Ok(got)
    }

    /// Blocks until all registered-alive hosts reach the same point,
    /// serving NAKs while waiting. A wait past
    /// [`ClusterConfig::barrier_timeout`] counts one
    /// `gluon.barrier_timeout`.
    pub fn barrier_wait(&self) {
        let cfg = self.state.config;
        let late = self
            .state
            .barrier
            .wait(&self.state.live, cfg.tick, cfg.barrier_timeout, || {
                self.drain_for_naks()
            });
        if late {
            gw2v_obs::add("gluon.barrier_timeout", 1);
        }
    }

    /// [`HostCtx::barrier_wait`], recording the wait in the
    /// `gluon.barrier_wait_ns` histogram when metrics are enabled. The
    /// wait time is the straggler signal: a host that arrives early
    /// waits for the slowest one, so the histogram's spread measures
    /// per-round load imbalance across hosts.
    pub fn barrier_wait_timed(&self) {
        if gw2v_obs::enabled() {
            let start = std::time::Instant::now();
            self.barrier_wait();
            gw2v_obs::observe("gluon.barrier_wait_ns", start.elapsed().as_nanos() as u64);
        } else {
            self.barrier_wait();
        }
    }

    /// Flags this host dead in the liveness registry *without* counting
    /// an injected crash — used when a resumed run restores a host that
    /// was already dead at the checkpoint boundary (the crash was counted
    /// in the run that wrote the checkpoint).
    pub fn resign(&self) {
        self.state.mark_dead(self.host);
    }

    /// Re-registers this host alive (re-admission). Called by the
    /// rejoining host *before* it acknowledges the state transfer, so the
    /// adopter cannot reach the next barrier while the registry still
    /// excludes the rejoiner.
    pub fn register_alive(&self) {
        self.state.live.mark_alive(self.host);
    }

    /// Re-synchronizes the lockstep phase counter after dormancy and
    /// forgets any stale resend buffer. The rejoined host sets this to
    /// [`phases_per_round`]` · completed_rounds` so its next
    /// `begin_phase` lands on the same sequence number as its peers.
    pub fn resync_seq(&self, seq: u64) {
        self.seq.set(seq);
        self.resend.borrow_mut().clear();
    }

    /// Sends one out-of-band state-transfer frame to `to`, tagged with
    /// `tag` in the layer slot and [`STATE_TRANSFER_SEQ`] in the sequence
    /// slot. The frame is CRC-sealed but bypasses the drop/flip injector
    /// (state transfer models a reliable bulk transport). Returns the
    /// payload length for `gluon.state_transfer_bytes` accounting.
    pub fn send_state(&self, to: usize, tag: usize, payload: Bytes) -> Result<usize, ClusterError> {
        let len = payload.len();
        self.post(
            to,
            Message {
                from: self.host,
                layer: tag,
                seq: STATE_TRANSFER_SEQ,
                kind: MsgKind::Data { attempt: 0 },
                value_only: false,
                payload: seal_frame(&payload),
            },
        )?;
        Ok(len)
    }

    /// Blocks until the next state-transfer frame from `from` arrives and
    /// returns `(tag, payload)`. Protocol messages that arrive in the
    /// meantime are stashed for the next `collect_phase` (Data) or
    /// dropped (NAKs — the peer re-NAKs until served). State frames come
    /// from a single sender over a FIFO channel, so callers may rely on
    /// their send order.
    pub fn recv_state(&self, from: usize) -> Result<(usize, Bytes), ClusterError> {
        loop {
            let msg = self
                .receiver
                .recv()
                .map_err(|_| ClusterError::RecvFailed { host: self.host })?;
            if msg.seq == STATE_TRANSFER_SEQ {
                if msg.from != from {
                    continue; // not the transfer we are waiting for
                }
                let payload = open_frame(&msg.payload)
                    .expect("state-transfer frames bypass the fault injector");
                return Ok((msg.layer, payload));
            }
            if let MsgKind::Data { .. } = msg.kind {
                self.pending.borrow_mut().push_back(msg);
            }
        }
    }

    /// Streams a full partition state to rejoining host `to`: one
    /// control frame (the ward's RNG state and schedule position), then
    /// one frame per layer carrying every row, then blocks for the ACK —
    /// the rejoiner registers itself alive *before* acking, so this host
    /// cannot reach the next barrier while the registry still excludes
    /// it. Returns the payload bytes sent (`gluon.state_transfer_bytes`).
    pub fn send_partition_state(
        &self,
        to: usize,
        rng_state: [u64; 4],
        processed: u64,
        layers: &[FlatMatrix],
    ) -> Result<u64, ClusterError> {
        let mut ctrl = BytesMut::with_capacity(REJOIN_CONTROL_BYTES as usize);
        for word in rng_state {
            ctrl.put_slice(&word.to_le_bytes());
        }
        ctrl.put_slice(&processed.to_le_bytes());
        let mut sent = self.send_state(to, STATE_CTRL_TAG, ctrl.freeze())? as u64;
        for (layer, matrix) in layers.iter().enumerate() {
            let mut enc = RowEncoder::new(matrix.dim());
            for node in 0..matrix.rows() {
                enc.push(node as u32, matrix.row(node));
            }
            sent += self.send_state(to, layer, enc.finish())? as u64;
        }
        let (tag, _) = self.recv_state(to)?;
        debug_assert_eq!(tag, STATE_ACK_TAG, "state transfer ends with an ACK");
        Ok(sent)
    }

    /// Receives the partition state streamed by adopter `from` (see
    /// [`HostCtx::send_partition_state`]), registers this host alive in
    /// the runtime registry, and acknowledges. `shape` gives `(rows,
    /// dim)` per layer. Returns `(rng_state, processed, layers)`.
    pub fn recv_partition_state(
        &self,
        from: usize,
        shape: &[(usize, usize)],
    ) -> Result<([u64; 4], u64, Vec<FlatMatrix>), ClusterError> {
        let (tag, ctrl) = self.recv_state(from)?;
        debug_assert_eq!(tag, STATE_CTRL_TAG, "control frame leads the transfer");
        debug_assert_eq!(ctrl.len() as u64, REJOIN_CONTROL_BYTES);
        let raw = ctrl.as_slice();
        let word =
            |i: usize| u64::from_le_bytes(raw[i * 8..(i + 1) * 8].try_into().expect("8-byte word"));
        let rng_state = [word(0), word(1), word(2), word(3)];
        let processed = word(4);
        let mut layers = Vec::with_capacity(shape.len());
        for (layer, &(rows, dim)) in shape.iter().enumerate() {
            let (tag, payload) = self.recv_state(from)?;
            debug_assert_eq!(tag, layer, "layer frames follow in order");
            let mut matrix = FlatMatrix::zeros(rows, dim);
            let mut sink = |node: u32| -> *mut [f32] { matrix.row_mut(node as usize) };
            RowDecoder::new(payload, dim).decode_into(&mut sink);
            layers.push(matrix);
        }
        self.register_alive();
        self.send_state(from, STATE_ACK_TAG, empty_bytes())?;
        Ok((rng_state, processed, layers))
    }
}

/// Spawns `n_hosts` threads, each running `f` with its [`HostCtx`], and
/// collects their results in host order. Runs with the inert fault plan
/// and default transport timing; see [`run_cluster_with`] for chaos runs.
pub fn run_cluster<T, F>(n_hosts: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(HostCtx) -> T + Sync,
{
    run_cluster_with(n_hosts, FaultPlan::none(), ClusterConfig::default(), f)
}

/// [`run_cluster`] under an explicit [`FaultPlan`] and transport config.
pub fn run_cluster_with<T, F>(
    n_hosts: usize,
    plan: FaultPlan,
    config: ClusterConfig,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(HostCtx) -> T + Sync,
{
    assert!(n_hosts > 0);
    let mut senders = Vec::with_capacity(n_hosts);
    let mut receivers = Vec::with_capacity(n_hosts);
    for _ in 0..n_hosts {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let state = Arc::new(ClusterState {
        plan,
        config,
        live: SharedLiveness::all(n_hosts),
        barrier: FaultBarrier::new(),
    });
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_hosts);
        for (host, receiver) in receivers.into_iter().enumerate() {
            let ctx = HostCtx {
                host,
                n_hosts,
                senders: senders.clone(),
                receiver,
                state: Arc::clone(&state),
                seq: Cell::new(0),
                round: Cell::new(0),
                resend: RefCell::new(HashMap::new()),
                deferred: RefCell::new(Vec::new()),
                pending: RefCell::new(VecDeque::new()),
                crash_noted: RefCell::new(vec![false; n_hosts]),
            };
            handles.push(scope.spawn(move || f(ctx)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("host thread panicked"))
            .collect()
    })
}

/// Reusable per-host working memory for [`sync_round_threaded_with_scratch`].
///
/// Mirrors the sequential engine's [`crate::sync::SyncScratch`]: the
/// accumulator slab, per-layer updated bit vectors, and the row buffers
/// are recycled across rounds, so the fold/apply path stops allocating
/// once warm. What still allocates per round is inherent to the wire:
/// `RowEncoder` payloads are frozen into shared [`Bytes`] handed to peer
/// threads, and received messages own their buffers.
#[derive(Debug, Default)]
pub struct ThreadedSyncScratch {
    slab: NodeAccSlab,
    updated_per_layer: Vec<BitVec>,
    delta: Vec<f32>,
    combined: Vec<f32>,
}

impl ThreadedSyncScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One synchronization round from a single host's perspective, with
/// per-round working memory allocated afresh.
///
/// Thin wrapper around [`sync_round_threaded_with_scratch`]; hosts that
/// synchronize repeatedly should hold a [`ThreadedSyncScratch`] instead.
pub fn sync_round_threaded(
    ctx: &HostCtx,
    replica: &mut ModelReplica,
    cfg: &SyncConfig,
    stats: &mut CommStats,
) -> Result<(), ClusterError> {
    let mut scratch = ThreadedSyncScratch::new();
    sync_round_threaded_with_scratch(ctx, replica, cfg, stats, &mut scratch)
}

/// Access sets for [`sync_round_threaded_degraded`]'s PullModel path.
///
/// Each host only consults *its own* row of the set matrix (what it will
/// touch next round, from its local inspection replay), unlike the
/// sequential engine where one [`AccessSets`] holds every host's sets.
pub type PullAccess<'a> = Option<&'a AccessSets>;

/// One synchronization round from a single host's perspective, reusing
/// `scratch`; every host must call this the same number of times with
/// the same `cfg`.
///
/// `stats` accumulates the bytes *this host sends* (summing over hosts
/// gives cluster totals).
pub fn sync_round_threaded_with_scratch(
    ctx: &HostCtx,
    replica: &mut ModelReplica,
    cfg: &SyncConfig,
    stats: &mut CommStats,
    scratch: &mut ThreadedSyncScratch,
) -> Result<(), ClusterError> {
    let live = Liveness::all(ctx.n_hosts);
    sync_round_threaded_degraded(
        ctx,
        replica,
        cfg,
        None,
        stats,
        scratch,
        &live,
        &mut WireState::Classic,
    )
}

/// [`sync_round_threaded_with_scratch`] under an explicit liveness view:
/// dead hosts are neither sent to nor expected from, and their master
/// blocks are handled by their adopters
/// ([`Liveness::effective_master`]). All alive hosts must call this with
/// the *same* `live` view for the round — the view is derived from the
/// shared fault plan, so no agreement protocol is needed.
///
/// With an all-alive view this is exactly the classic protocol and stays
/// bit-identical to [`crate::sync::sync_round`].
///
/// For [`SyncPlan::PullModel`], `access` must carry this host's
/// inspection-derived sets (see [`PullAccess`]); the replication plans
/// ignore it.
///
/// `wire` selects the payload mode ([`crate::wire::WireMode`]) and
/// holds this host's per-mode state: [`WireState::Classic`] ships
/// id+value rows; [`WireState::Memo`] memoizes id lists and ships
/// value-only payloads on repeats; [`WireState::Delta`] shadows the
/// last payload per (host pair, layer, channel) and ships a change mask
/// plus only the rows whose bits differ; [`WireState::Quant`] ships
/// rows quantized to one byte per dimension with per-row scale/offset.
/// Every host must run the same mode; caches and shadows must be
/// cleared at epoch starts by the caller ([`WireState::begin_epoch`]) —
/// liveness changes clear them here. Memo and delta are lossless (model
/// results bit-identical to classic; only bytes moved change, mirroring
/// [`crate::sync::sync_round_degraded`]'s analytic accounting exactly);
/// quant is deterministically lossy — the sequential engine replays the
/// identical quantize→dequantize image, so the two engines stay
/// bit-identical to *each other*.
#[allow(clippy::too_many_arguments)]
pub fn sync_round_threaded_degraded(
    ctx: &HostCtx,
    replica: &mut ModelReplica,
    cfg: &SyncConfig,
    access: PullAccess<'_>,
    stats: &mut CommStats,
    scratch: &mut ThreadedSyncScratch,
    live: &Liveness,
    wire: &mut WireState,
) -> Result<(), ClusterError> {
    assert!(
        cfg.plan != SyncPlan::PullModel || access.is_some(),
        "PullModel requires inspection-derived access sets"
    );
    assert!(live.is_alive(ctx.host), "dead hosts do not sync");
    // Any liveness change invalidates every cached id list and shadow
    // payload; all hosts derive the same view from the shared fault
    // plan, so every cache in the cluster (and the simulator's) clears
    // on the same round.
    wire.observe_liveness(live);
    // Inert when metrics are disabled; otherwise times this host's whole
    // round and records its send-side byte deltas below.
    let mut obs_span = gw2v_obs::span("gluon.threaded.sync").host(ctx.host);
    let stats_before = gw2v_obs::enabled().then_some(*stats);
    let n_hosts = ctx.n_hosts;
    let n_nodes = replica.n_nodes();
    let n_layers = replica.n_layers();

    let ThreadedSyncScratch {
        slab,
        updated_per_layer,
        delta,
        combined,
    } = scratch;
    slab.ensure_nodes(n_nodes);
    if updated_per_layer.len() != n_layers
        || updated_per_layer
            .first()
            .is_some_and(|b| b.len() != n_nodes)
    {
        *updated_per_layer = (0..n_layers).map(|_| BitVec::new(n_nodes)).collect();
    } else {
        for bv in updated_per_layer.iter_mut() {
            bv.clear_all();
        }
    }

    // ---- Phase 1: ship touched-mirror deltas to (effective) masters. ----
    ctx.begin_phase();
    for layer in 0..n_layers {
        let dim = replica.layers[layer].dim();
        let mut encoders: HashMap<usize, RowEncoder> = HashMap::new();
        delta.clear();
        delta.resize(dim, 0.0);
        let tracker = replica.tracker(layer);
        for &node in tracker.touched_nodes() {
            let owner = live.effective_master(master_host(n_nodes, n_hosts, node));
            if owner == ctx.host {
                continue;
            }
            tracker.delta_into(node, replica.row(layer, node), delta);
            encoders
                .entry(owner)
                .or_insert_with(|| RowEncoder::new(dim))
                .push(node, delta);
        }
        if cfg.plan == SyncPlan::RepModelNaive {
            match &mut *wire {
                WireState::Memo(m_) => {
                    // Memo-mode dense accounting: the *analytic* dense id
                    // list per destination master (same derivation as the
                    // sequential engine) is memoized; physical payloads stay
                    // touched-only id+value below (their bytes are NOT
                    // separately accounted — the dense figure covers them).
                    let mut stage = m_.take_stage(n_hosts);
                    for m in 0..n_hosts {
                        if m == ctx.host || !live.is_alive(m) {
                            continue;
                        }
                        for owner in 0..n_hosts {
                            if live.effective_master(owner) == m {
                                for node in master_block(n_nodes, n_hosts, owner) {
                                    stage[m].push(node);
                                }
                            }
                        }
                    }
                    for m in 0..n_hosts {
                        if m == ctx.host || !live.is_alive(m) {
                            continue;
                        }
                        let hit = m_.submit(ctx.host, m, layer, Channel::Reduce, &stage[m]);
                        let per = if hit {
                            crate::wire::value_bytes(dim)
                        } else {
                            entry_bytes(dim)
                        } as u64;
                        stats.reduce_bytes += stage[m].len() as u64 * per;
                        stats.reduce_msgs += stage[m].len() as u64;
                    }
                    m_.put_stage(stage);
                }
                WireState::Delta(d) => {
                    // Delta-mode dense accounting: same dense id list per
                    // destination as memo, with this host's touched deltas
                    // scattered by block position into a zero value image
                    // (untouched rows are zero deltas, unchanged round over
                    // round — exactly what the changed-row mask skips).
                    // Physical payloads stay touched-only id+value below;
                    // the dense figure covers their bytes. The stage is
                    // built for every alive destination (self included) so
                    // block offsets match the sequential engine's.
                    let (mut stage_ids, mut stage_vals) = d.take_stage(n_hosts);
                    let mut block_off = vec![0usize; n_hosts];
                    for m in 0..n_hosts {
                        if !live.is_alive(m) {
                            continue;
                        }
                        for owner in 0..n_hosts {
                            if live.effective_master(owner) == m {
                                block_off[owner] = stage_ids[m].len();
                                for node in master_block(n_nodes, n_hosts, owner) {
                                    stage_ids[m].push(node);
                                }
                            }
                        }
                    }
                    for m in 0..n_hosts {
                        stage_vals[m].clear();
                        stage_vals[m].resize(stage_ids[m].len() * dim, 0.0);
                    }
                    for (m, enc) in &encoders {
                        for (i, &node) in enc.ids().iter().enumerate() {
                            let owner = master_host(n_nodes, n_hosts, node);
                            let start = master_block(n_nodes, n_hosts, owner).start;
                            let pos = block_off[owner] + (node - start) as usize;
                            stage_vals[*m][pos * dim..(pos + 1) * dim]
                                .copy_from_slice(&enc.values()[i * dim..(i + 1) * dim]);
                        }
                    }
                    for m in 0..n_hosts {
                        if m == ctx.host || !live.is_alive(m) {
                            continue;
                        }
                        let form = d.submit(
                            ctx.host,
                            m,
                            layer,
                            Channel::Reduce,
                            &stage_ids[m],
                            &stage_vals[m],
                            dim,
                        );
                        stats.reduce_bytes += form.wire_bytes(stage_ids[m].len(), dim) as u64;
                        stats.reduce_msgs += stage_ids[m].len() as u64;
                    }
                    d.put_stage(stage_ids, stage_vals);
                }
                WireState::Classic => {
                    // Dense plan also ships a zero delta for every untouched
                    // mirror row (redundant traffic, counted but semantically
                    // inert — the master skips zero-contribution entries is NOT
                    // the semantics here; instead we simply account the bytes, as
                    // the sequential engine does analytically).
                    for m in 0..n_hosts {
                        if m == ctx.host || !live.is_alive(m) {
                            continue;
                        }
                        let all_rows: u64 = (0..n_hosts)
                            .filter(|&owner| live.effective_master(owner) == m)
                            .map(|owner| master_block(n_nodes, n_hosts, owner).len() as u64)
                            .sum();
                        let sent_rows = encoders.get(&m).map_or(0, |e| e.count() as u64);
                        let pad_rows = all_rows - sent_rows;
                        stats.reduce_bytes += pad_rows * entry_bytes(dim) as u64;
                        stats.reduce_msgs += pad_rows;
                    }
                }
                WireState::Quant(_) => {
                    // Quantized dense accounting: every dense row ships at
                    // the quantized width; physical payloads below are the
                    // touched rows in quantized form (the dense figure
                    // covers their bytes, like memo's).
                    for m in 0..n_hosts {
                        if m == ctx.host || !live.is_alive(m) {
                            continue;
                        }
                        let all_rows: u64 = (0..n_hosts)
                            .filter(|&owner| live.effective_master(owner) == m)
                            .map(|owner| master_block(n_nodes, n_hosts, owner).len() as u64)
                            .sum();
                        stats.reduce_bytes += all_rows * quant_entry_bytes(dim) as u64;
                        stats.reduce_msgs += all_rows;
                    }
                }
            }
        }
        for peer in 0..n_hosts {
            if peer == ctx.host || !live.is_alive(peer) {
                continue;
            }
            let enc = encoders
                .remove(&peer)
                .unwrap_or_else(|| RowEncoder::new(dim));
            if cfg.plan == SyncPlan::RepModelNaive {
                // Classic mode accounts the touched payload here (the pad
                // block above tops it up to the dense figure); the other
                // modes already accounted the full dense figure above.
                match &mut *wire {
                    WireState::Classic => {
                        stats.reduce_bytes += enc.byte_len() as u64;
                        stats.reduce_msgs += enc.count() as u64;
                        ctx.ship(peer, layer, enc.finish(), false)?;
                    }
                    WireState::Memo(_) | WireState::Delta(_) => {
                        ctx.ship(peer, layer, enc.finish(), false)?;
                    }
                    WireState::Quant(_) => {
                        ctx.ship(peer, layer, enc.finish_quant(), false)?;
                    }
                }
            } else {
                stats.reduce_msgs += enc.count() as u64;
                match &mut *wire {
                    WireState::Classic => {
                        stats.reduce_bytes += enc.byte_len() as u64;
                        ctx.ship(peer, layer, enc.finish(), false)?;
                    }
                    WireState::Memo(m_) => {
                        let hit = m_.submit(ctx.host, peer, layer, Channel::Reduce, enc.ids());
                        if hit {
                            stats.reduce_bytes += enc.value_byte_len() as u64;
                            ctx.ship(peer, layer, enc.finish_values(), true)?;
                        } else {
                            stats.reduce_bytes += enc.byte_len() as u64;
                            ctx.ship(peer, layer, enc.finish(), false)?;
                        }
                    }
                    WireState::Delta(d) => {
                        let form = d.submit(
                            ctx.host,
                            peer,
                            layer,
                            Channel::Reduce,
                            enc.ids(),
                            enc.values(),
                            dim,
                        );
                        match form {
                            DeltaForm::Full => {
                                stats.reduce_bytes += enc.byte_len() as u64;
                                ctx.ship(peer, layer, enc.finish(), false)?;
                            }
                            DeltaForm::Delta { ref mask, .. } => {
                                let payload = enc.finish_delta(mask);
                                stats.reduce_bytes += payload.len() as u64;
                                ctx.ship(peer, layer, payload, true)?;
                            }
                        }
                    }
                    WireState::Quant(_) => {
                        let payload = enc.finish_quant();
                        stats.reduce_bytes += payload.len() as u64;
                        ctx.ship(peer, layer, payload, false)?;
                    }
                }
            }
        }
    }

    // ---- Receive deltas, fold at this host's (effective) masters. ----
    let incoming = ctx.collect_phase(live, n_layers)?;
    for layer in 0..n_layers {
        let dim = replica.layers[layer].dim();
        delta.clear();
        delta.resize(dim, 0.0);
        combined.clear();
        combined.resize(dim, 0.0);
        // Fold in host-id order so the (order-sensitive) combiner sees
        // the same sequence as the sequential engine, self included at
        // its position and dead hosts contributing nothing.
        for h in 0..n_hosts {
            if h == ctx.host {
                let tracker = replica.tracker(layer);
                for &node in tracker.touched_nodes() {
                    if live.effective_master(master_host(n_nodes, n_hosts, node)) != ctx.host {
                        continue;
                    }
                    tracker.delta_into(node, replica.row(layer, node), delta);
                    slab.acc_mut(node, cfg.combiner, dim).push(delta);
                    updated_per_layer[layer].set(node as usize);
                }
            } else if let Some((payload, value_only)) = incoming.get(&(h, layer)) {
                if *value_only {
                    match &mut *wire {
                        WireState::Memo(m_) => {
                            let ids = m_
                                .cached(h, ctx.host, layer, Channel::Reduce)
                                .expect("value-only payload with no cached id list");
                            let mut dec = ValueDecoder::new(payload.clone(), dim, ids)
                                .expect("value-only payload length matches cached id list");
                            while let Some((node, row)) = dec.next_entry() {
                                slab.acc_mut(node, cfg.combiner, dim).push(row);
                                updated_per_layer[layer].set(node as usize);
                            }
                        }
                        WireState::Delta(d) => {
                            let (ids, vals) = d
                                .apply_delta(h, ctx.host, layer, Channel::Reduce, payload, dim)
                                .expect("delta payload length matches shadow entry");
                            for (i, &node) in ids.iter().enumerate() {
                                slab.acc_mut(node, cfg.combiner, dim)
                                    .push(&vals[i * dim..(i + 1) * dim]);
                                updated_per_layer[layer].set(node as usize);
                            }
                        }
                        _ => panic!("compact payload outside memo/delta mode"),
                    }
                } else {
                    match &mut *wire {
                        WireState::Memo(m_) => {
                            // Record the decoded id list so a later
                            // value-only payload on this key can be resolved.
                            let mut dec = RowDecoder::new(payload.clone(), dim);
                            let mut ids = Vec::with_capacity(dec.remaining());
                            while let Some((node, row)) = dec.next_entry() {
                                ids.push(node);
                                slab.acc_mut(node, cfg.combiner, dim).push(row);
                                updated_per_layer[layer].set(node as usize);
                            }
                            m_.store(h, ctx.host, layer, Channel::Reduce, ids);
                        }
                        WireState::Delta(d) if cfg.plan != SyncPlan::RepModelNaive => {
                            // Record ids *and* rows so a later delta payload
                            // on this key can be reconstructed. (The dense
                            // plan's physical reduce payloads stay classic —
                            // its shadows track the analytic dense image on
                            // the sender side only.)
                            let mut dec = RowDecoder::new(payload.clone(), dim);
                            let mut ids = Vec::with_capacity(dec.remaining());
                            let mut vals = Vec::with_capacity(dec.remaining() * dim);
                            while let Some((node, row)) = dec.next_entry() {
                                ids.push(node);
                                vals.extend_from_slice(row);
                                slab.acc_mut(node, cfg.combiner, dim).push(row);
                                updated_per_layer[layer].set(node as usize);
                            }
                            d.store(h, ctx.host, layer, Channel::Reduce, ids, vals);
                        }
                        WireState::Quant(_) => {
                            let mut dec = QuantDecoder::new(payload.clone(), dim)
                                .expect("well-formed quantized payload");
                            while let Some((node, row)) = dec.next_entry() {
                                slab.acc_mut(node, cfg.combiner, dim).push(row);
                                updated_per_layer[layer].set(node as usize);
                            }
                        }
                        _ => {
                            let mut dec = RowDecoder::new(payload.clone(), dim);
                            while let Some((node, row)) = dec.next_entry() {
                                slab.acc_mut(node, cfg.combiner, dim).push(row);
                                updated_per_layer[layer].set(node as usize);
                            }
                        }
                    }
                }
            } else {
                debug_assert!(!live.is_alive(h), "collect_phase guarantees alive peers");
            }
        }
        // Apply in node-id order (matches the sequential engine, which
        // walks the updated bit vector in index order).
        for node in updated_per_layer[layer].iter_ones() {
            let node_u = node as u32;
            slab.finish_into(node_u, combined);
            let (matrix, tracker) = replica.layer_and_tracker_mut(layer);
            let row = matrix.row_mut(node);
            if tracker.is_touched(node_u) {
                row.copy_from_slice(tracker.base_of(node_u));
            }
            (gw2v_util::simd::kernels().add_assign)(row, combined);
        }
        slab.release_all();
    }
    ctx.barrier_wait_timed();

    if cfg.plan == SyncPlan::PullModel {
        let access = access.expect("checked on entry");
        // ---- Phase 2: pull requests — per-owner node-id lists. ----
        // Request lists are control traffic, like NAKs and frame armor:
        // not accounted in CommStats (the sequential engine's pull pass
        // has no request side at all).
        ctx.begin_phase();
        for layer in 0..n_layers {
            let mut encoders: HashMap<usize, RowEncoder> = HashMap::new();
            for node in access.get(ctx.host, layer).iter_ones() {
                let node_u = node as u32;
                let owner = live.effective_master(master_host(n_nodes, n_hosts, node_u));
                if owner == ctx.host {
                    continue;
                }
                encoders
                    .entry(owner)
                    .or_insert_with(|| RowEncoder::new(0))
                    .push(node_u, &[]);
            }
            for peer in 0..n_hosts {
                if peer == ctx.host || !live.is_alive(peer) {
                    continue;
                }
                let enc = encoders.remove(&peer).unwrap_or_else(|| RowEncoder::new(0));
                if let WireState::Memo(m_) = &mut *wire {
                    // The response from `peer` will carry exactly this
                    // list in this order; cache it now so a value-only
                    // response resolves without a round trip. (Delta mode
                    // cannot pre-store: its shadow needs row values, which
                    // only the first full response carries.)
                    m_.store(
                        peer,
                        ctx.host,
                        layer,
                        Channel::Broadcast,
                        enc.ids().to_vec(),
                    );
                }
                ctx.ship(peer, layer, enc.finish(), false)?;
            }
        }
        let requests = ctx.collect_phase(live, n_layers)?;
        // The closing barrier proves every owner holds all requests
        // before anyone advances the phase counter (begin_phase drops the
        // resend buffer that NAK recovery would need).
        ctx.barrier_wait_timed();

        // ---- Phase 3: pull responses — canonical rows, request order. ----
        ctx.begin_phase();
        for layer in 0..n_layers {
            let dim = replica.layers[layer].dim();
            for peer in 0..n_hosts {
                if peer == ctx.host || !live.is_alive(peer) {
                    continue;
                }
                let mut enc = RowEncoder::new(dim);
                if let Some((list, _)) = requests.get(&(peer, layer)) {
                    let mut dec = RowDecoder::new(list.clone(), 0);
                    while let Some((node, _)) = dec.next_entry() {
                        enc.push(node, replica.row(layer, node));
                    }
                }
                // Accounted exactly like the sequential pull pass: the
                // owner charges one broadcast entry per served row
                // (compact-sized when the wire mode allows it).
                stats.broadcast_msgs += enc.count() as u64;
                match &mut *wire {
                    WireState::Classic => {
                        stats.broadcast_bytes += enc.byte_len() as u64;
                        ctx.ship(peer, layer, enc.finish(), false)?;
                    }
                    WireState::Memo(m_) => {
                        let hit = m_.submit(ctx.host, peer, layer, Channel::Broadcast, enc.ids());
                        if hit {
                            stats.broadcast_bytes += enc.value_byte_len() as u64;
                            ctx.ship(peer, layer, enc.finish_values(), true)?;
                        } else {
                            stats.broadcast_bytes += enc.byte_len() as u64;
                            ctx.ship(peer, layer, enc.finish(), false)?;
                        }
                    }
                    WireState::Delta(d) => {
                        let form = d.submit(
                            ctx.host,
                            peer,
                            layer,
                            Channel::Broadcast,
                            enc.ids(),
                            enc.values(),
                            dim,
                        );
                        match form {
                            DeltaForm::Full => {
                                stats.broadcast_bytes += enc.byte_len() as u64;
                                ctx.ship(peer, layer, enc.finish(), false)?;
                            }
                            DeltaForm::Delta { ref mask, .. } => {
                                let payload = enc.finish_delta(mask);
                                stats.broadcast_bytes += payload.len() as u64;
                                ctx.ship(peer, layer, payload, true)?;
                            }
                        }
                    }
                    WireState::Quant(_) => {
                        let payload = enc.finish_quant();
                        stats.broadcast_bytes += payload.len() as u64;
                        ctx.ship(peer, layer, payload, false)?;
                    }
                }
            }
        }
        let incoming = ctx.collect_phase(live, n_layers)?;
        for ((h, layer), (payload, value_only)) in incoming {
            let dim = replica.layers[layer].dim();
            if value_only {
                match &mut *wire {
                    WireState::Memo(m_) => {
                        let ids = m_
                            .cached(h, ctx.host, layer, Channel::Broadcast)
                            .expect("value-only response with no cached request list");
                        let mut sink =
                            |node: u32| -> *mut [f32] { replica.row_mut_untracked(layer, node) };
                        ValueDecoder::new(payload, dim, ids)
                            .expect("value-only response length matches request list")
                            .decode_into(&mut sink);
                    }
                    WireState::Delta(d) => {
                        let (ids, vals) = d
                            .apply_delta(h, ctx.host, layer, Channel::Broadcast, &payload, dim)
                            .expect("delta response length matches shadow entry");
                        for (i, &node) in ids.iter().enumerate() {
                            replica
                                .row_mut_untracked(layer, node)
                                .copy_from_slice(&vals[i * dim..(i + 1) * dim]);
                        }
                    }
                    _ => panic!("compact payload outside memo/delta mode"),
                }
            } else {
                match &mut *wire {
                    WireState::Delta(d) => {
                        let mut dec = RowDecoder::new(payload, dim);
                        let mut ids = Vec::with_capacity(dec.remaining());
                        let mut vals = Vec::with_capacity(dec.remaining() * dim);
                        while let Some((node, row)) = dec.next_entry() {
                            ids.push(node);
                            vals.extend_from_slice(row);
                            replica.row_mut_untracked(layer, node).copy_from_slice(row);
                        }
                        d.store(h, ctx.host, layer, Channel::Broadcast, ids, vals);
                    }
                    WireState::Quant(_) => {
                        let mut sink =
                            |node: u32| -> *mut [f32] { replica.row_mut_untracked(layer, node) };
                        QuantDecoder::new(payload, dim)
                            .expect("well-formed quantized payload")
                            .decode_into(&mut sink);
                    }
                    _ => {
                        let mut sink =
                            |node: u32| -> *mut [f32] { replica.row_mut_untracked(layer, node) };
                        RowDecoder::new(payload, dim).decode_into(&mut sink);
                    }
                }
            }
        }
    } else {
        // ---- Phase 2: broadcast canonical values of updated owned rows. ----
        ctx.begin_phase();
        for layer in 0..n_layers {
            let dim = replica.layers[layer].dim();
            let mut enc = RowEncoder::new(dim);
            match cfg.plan {
                SyncPlan::RepModelOpt => {
                    for node in updated_per_layer[layer].iter_ones() {
                        enc.push(node as u32, replica.row(layer, node as u32));
                    }
                }
                SyncPlan::RepModelNaive => {
                    for owner in 0..n_hosts {
                        if live.effective_master(owner) != ctx.host {
                            continue;
                        }
                        for node in master_block(n_nodes, n_hosts, owner) {
                            enc.push(node, replica.row(layer, node));
                        }
                    }
                }
                SyncPlan::PullModel => unreachable!("handled above"),
            }
            // One shared payload per layer wherever the form allows it
            // (classic id+value, memo value-only, quantized); delta masks
            // are built per peer — shadows advance in lockstep across
            // peers, so the masks coincide in practice, but each pair
            // owns its shadow. In memo mode each peer may instead take
            // the (also shared) value-only form, decided per peer — all
            // peers see the same id list, so after the first miss-round
            // they all hit together.
            let mut full: Option<Bytes> = None;
            let mut vo: Option<Bytes> = None;
            let mut quant: Option<Bytes> = None;
            for peer in 0..n_hosts {
                if peer == ctx.host || !live.is_alive(peer) {
                    continue;
                }
                match &mut *wire {
                    WireState::Classic => {
                        let payload = full.get_or_insert_with(|| enc.finish()).clone();
                        stats.broadcast_bytes += payload.len() as u64;
                        stats.broadcast_msgs += (payload.len() / entry_bytes(dim)) as u64;
                        ctx.ship(peer, layer, payload, false)?;
                    }
                    WireState::Memo(m_) => {
                        let hit = m_.submit(ctx.host, peer, layer, Channel::Broadcast, enc.ids());
                        if hit {
                            let payload = vo.get_or_insert_with(|| enc.finish_values()).clone();
                            stats.broadcast_bytes += payload.len() as u64;
                            stats.broadcast_msgs += enc.count() as u64;
                            ctx.ship(peer, layer, payload, true)?;
                        } else {
                            let payload = full.get_or_insert_with(|| enc.finish()).clone();
                            stats.broadcast_bytes += payload.len() as u64;
                            stats.broadcast_msgs += (payload.len() / entry_bytes(dim)) as u64;
                            ctx.ship(peer, layer, payload, false)?;
                        }
                    }
                    WireState::Delta(d) => {
                        let form = d.submit(
                            ctx.host,
                            peer,
                            layer,
                            Channel::Broadcast,
                            enc.ids(),
                            enc.values(),
                            dim,
                        );
                        stats.broadcast_msgs += enc.count() as u64;
                        match form {
                            DeltaForm::Full => {
                                let payload = full.get_or_insert_with(|| enc.finish()).clone();
                                stats.broadcast_bytes += payload.len() as u64;
                                ctx.ship(peer, layer, payload, false)?;
                            }
                            DeltaForm::Delta { ref mask, .. } => {
                                let payload = enc.finish_delta(mask);
                                stats.broadcast_bytes += payload.len() as u64;
                                ctx.ship(peer, layer, payload, true)?;
                            }
                        }
                    }
                    WireState::Quant(_) => {
                        let payload = quant.get_or_insert_with(|| enc.finish_quant()).clone();
                        stats.broadcast_bytes += payload.len() as u64;
                        stats.broadcast_msgs += enc.count() as u64;
                        ctx.ship(peer, layer, payload, false)?;
                    }
                }
            }
        }
        let incoming = ctx.collect_phase(live, n_layers)?;
        for ((h, layer), (payload, value_only)) in incoming {
            let dim = replica.layers[layer].dim();
            if value_only {
                match &mut *wire {
                    WireState::Memo(m_) => {
                        let ids = m_
                            .cached(h, ctx.host, layer, Channel::Broadcast)
                            .expect("value-only broadcast with no cached id list");
                        let mut sink =
                            |node: u32| -> *mut [f32] { replica.row_mut_untracked(layer, node) };
                        ValueDecoder::new(payload, dim, ids)
                            .expect("value-only broadcast length matches cached id list")
                            .decode_into(&mut sink);
                    }
                    WireState::Delta(d) => {
                        let (ids, vals) = d
                            .apply_delta(h, ctx.host, layer, Channel::Broadcast, &payload, dim)
                            .expect("delta broadcast length matches shadow entry");
                        for (i, &node) in ids.iter().enumerate() {
                            replica
                                .row_mut_untracked(layer, node)
                                .copy_from_slice(&vals[i * dim..(i + 1) * dim]);
                        }
                    }
                    _ => panic!("compact payload outside memo/delta mode"),
                }
            } else {
                match &mut *wire {
                    WireState::Memo(m_) => {
                        let mut dec = RowDecoder::new(payload, dim);
                        let mut ids = Vec::with_capacity(dec.remaining());
                        while let Some((node, row)) = dec.next_entry() {
                            ids.push(node);
                            replica.row_mut_untracked(layer, node).copy_from_slice(row);
                        }
                        m_.store(h, ctx.host, layer, Channel::Broadcast, ids);
                    }
                    WireState::Delta(d) => {
                        let mut dec = RowDecoder::new(payload, dim);
                        let mut ids = Vec::with_capacity(dec.remaining());
                        let mut vals = Vec::with_capacity(dec.remaining() * dim);
                        while let Some((node, row)) = dec.next_entry() {
                            ids.push(node);
                            vals.extend_from_slice(row);
                            replica.row_mut_untracked(layer, node).copy_from_slice(row);
                        }
                        d.store(h, ctx.host, layer, Channel::Broadcast, ids, vals);
                    }
                    WireState::Quant(_) => {
                        let mut sink =
                            |node: u32| -> *mut [f32] { replica.row_mut_untracked(layer, node) };
                        QuantDecoder::new(payload, dim)
                            .expect("well-formed quantized payload")
                            .decode_into(&mut sink);
                    }
                    WireState::Classic => {
                        let mut sink =
                            |node: u32| -> *mut [f32] { replica.row_mut_untracked(layer, node) };
                        RowDecoder::new(payload, dim).decode_into(&mut sink);
                    }
                }
            }
        }
    }
    replica.clear_tracking();
    stats.rounds += 1;
    ctx.barrier_wait_timed();

    if let Some(before) = stats_before {
        let reduce_b = stats.reduce_bytes - before.reduce_bytes;
        let bcast_b = stats.broadcast_bytes - before.broadcast_bytes;
        gw2v_obs::add("gluon.threaded.reduce_bytes", reduce_b);
        gw2v_obs::add("gluon.threaded.broadcast_bytes", bcast_b);
        gw2v_obs::add(
            "gluon.threaded.msgs",
            (stats.reduce_msgs - before.reduce_msgs)
                + (stats.broadcast_msgs - before.broadcast_msgs),
        );
        obs_span.field("reduce_bytes", reduce_b as f64);
        obs_span.field("broadcast_bytes", bcast_b as f64);
    }
    drop(obs_span);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{assemble_canonical, sync_round};
    use gw2v_combiner::CombinerKind;
    use gw2v_util::fvec::FlatMatrix;
    use gw2v_util::rng::{Rng64, SplitMix64, Xoshiro256};

    fn fresh_replica(n_nodes: usize, dim: usize, seed: u64) -> ModelReplica {
        let mut rng = Xoshiro256::new(seed);
        let mut m0 = FlatMatrix::zeros(n_nodes, dim);
        let mut m1 = FlatMatrix::zeros(n_nodes, dim);
        for r in 0..n_nodes {
            for d in 0..dim {
                m0.row_mut(r)[d] = rng.next_f32() - 0.5;
                m1.row_mut(r)[d] = rng.next_f32() - 0.5;
            }
        }
        ModelReplica::new(vec![m0, m1])
    }

    /// Deterministic per-host workload: same touches whichever engine runs it.
    fn apply_workload(replica: &mut ModelReplica, host: usize, round: usize, n_nodes: usize) {
        let seed = SplitMix64::new(42).derive((host * 1000 + round) as u64);
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..8 {
            let layer = rng.index(2);
            let node = rng.index(n_nodes) as u32;
            let slot = rng.index(replica.layers[layer].dim());
            let bump = rng.next_f32() - 0.5;
            replica.row_mut(layer, node)[slot] += bump;
        }
    }

    fn run_threaded_plan(
        n_hosts: usize,
        n_nodes: usize,
        dim: usize,
        rounds: usize,
        plan: SyncPlan,
        combiner: CombinerKind,
        faults: FaultPlan,
    ) -> (Vec<FlatMatrix>, CommStats) {
        let cfg = SyncConfig { plan, combiner };
        let cluster_cfg = ClusterConfig {
            nak_delay: Duration::from_millis(10),
            ..ClusterConfig::default()
        };
        let results = run_cluster_with(n_hosts, faults, cluster_cfg, |ctx| {
            // All replicas start identical (same init seed). Each host
            // carries one scratch across rounds, so these equivalence
            // tests also referee the recycled-scratch path bitwise.
            let mut replica = fresh_replica(n_nodes, dim, 7);
            let mut stats = CommStats::default();
            let mut scratch = ThreadedSyncScratch::new();
            for round in 0..rounds {
                apply_workload(&mut replica, ctx.host, round, n_nodes);
                sync_round_threaded_with_scratch(
                    &ctx,
                    &mut replica,
                    &cfg,
                    &mut stats,
                    &mut scratch,
                )
                .unwrap();
            }
            (replica, stats)
        });
        let (replicas, host_stats): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        let mut total = CommStats::default();
        for s in &host_stats {
            total.merge(s);
        }
        total.rounds = host_stats[0].rounds;
        (assemble_canonical(&replicas), total)
    }

    fn run_threaded(
        n_hosts: usize,
        n_nodes: usize,
        dim: usize,
        rounds: usize,
        plan: SyncPlan,
        combiner: CombinerKind,
    ) -> (Vec<FlatMatrix>, CommStats) {
        run_threaded_plan(
            n_hosts,
            n_nodes,
            dim,
            rounds,
            plan,
            combiner,
            FaultPlan::none(),
        )
    }

    fn run_sequential(
        n_hosts: usize,
        n_nodes: usize,
        dim: usize,
        rounds: usize,
        plan: SyncPlan,
        combiner: CombinerKind,
    ) -> (Vec<FlatMatrix>, CommStats) {
        let cfg = SyncConfig { plan, combiner };
        let mut replicas: Vec<ModelReplica> = (0..n_hosts)
            .map(|_| fresh_replica(n_nodes, dim, 7))
            .collect();
        let mut stats = CommStats::default();
        for round in 0..rounds {
            for (host, replica) in replicas.iter_mut().enumerate() {
                apply_workload(replica, host, round, n_nodes);
            }
            sync_round(&mut replicas, &cfg, None, &mut stats);
        }
        (assemble_canonical(&replicas), stats)
    }

    #[test]
    fn threaded_matches_sequential_bitwise() {
        for combiner in [
            CombinerKind::Sum,
            CombinerKind::Avg,
            CombinerKind::ModelCombiner,
        ] {
            let (seq_model, seq_stats) =
                run_sequential(4, 20, 5, 4, SyncPlan::RepModelOpt, combiner);
            let (thr_model, thr_stats) = run_threaded(4, 20, 5, 4, SyncPlan::RepModelOpt, combiner);
            assert_eq!(
                seq_model, thr_model,
                "{combiner:?} models must be identical"
            );
            assert_eq!(
                seq_stats.reduce_bytes, thr_stats.reduce_bytes,
                "{combiner:?}"
            );
            assert_eq!(
                seq_stats.broadcast_bytes, thr_stats.broadcast_bytes,
                "{combiner:?}"
            );
        }
    }

    #[test]
    fn threaded_naive_matches_sequential() {
        let (seq_model, seq_stats) = run_sequential(
            3,
            12,
            4,
            3,
            SyncPlan::RepModelNaive,
            CombinerKind::ModelCombiner,
        );
        let (thr_model, thr_stats) = run_threaded(
            3,
            12,
            4,
            3,
            SyncPlan::RepModelNaive,
            CombinerKind::ModelCombiner,
        );
        assert_eq!(seq_model, thr_model);
        assert_eq!(seq_stats.reduce_bytes, thr_stats.reduce_bytes);
        assert_eq!(seq_stats.broadcast_bytes, thr_stats.broadcast_bytes);
    }

    #[test]
    fn drops_and_flips_recovered_bitwise() {
        // Heavy message loss and corruption: the NAK/resend loop must
        // reconstruct the exact faultless result — recovery is exact,
        // not approximate — and the *accounted* payload volume must not
        // change (retransmissions are transport overhead, not model
        // traffic).
        let faults = FaultPlan::parse("seed=9,drop=0.15,flip=0.05").unwrap();
        let (clean_model, clean_stats) = run_sequential(
            3,
            16,
            4,
            3,
            SyncPlan::RepModelOpt,
            CombinerKind::ModelCombiner,
        );
        let (chaos_model, chaos_stats) = run_threaded_plan(
            3,
            16,
            4,
            3,
            SyncPlan::RepModelOpt,
            CombinerKind::ModelCombiner,
            faults,
        );
        assert_eq!(clean_model, chaos_model);
        assert_eq!(clean_stats.reduce_bytes, chaos_stats.reduce_bytes);
        assert_eq!(clean_stats.broadcast_bytes, chaos_stats.broadcast_bytes);
    }

    #[test]
    fn crash_degrades_and_survivors_agree() {
        // Host 1 dies at the start of global round 1 (of 3). Survivors
        // route around it with the deterministic plan-derived liveness
        // view; after every remaining round their replicas must agree.
        let faults = FaultPlan::parse("seed=5,crash=1@1").unwrap();
        let n_hosts = 3;
        let n_nodes = 12;
        let cfg = SyncConfig {
            plan: SyncPlan::RepModelOpt,
            combiner: CombinerKind::ModelCombiner,
        };
        let crash_round = 1usize;
        let results = run_cluster_with(n_hosts, faults.clone(), ClusterConfig::default(), |ctx| {
            let mut replica = fresh_replica(n_nodes, 4, 7);
            let mut stats = CommStats::default();
            let mut scratch = ThreadedSyncScratch::new();
            let mut live = Liveness::all(n_hosts);
            for round in 0..3 {
                if ctx.plan().crash_round(ctx.host) == Some(round) {
                    ctx.mark_self_dead();
                    return None;
                }
                if round == crash_round {
                    ctx.await_death(1);
                    live.mark_dead(1);
                }
                apply_workload(&mut replica, ctx.host, round, n_nodes);
                sync_round_threaded_degraded(
                    &ctx,
                    &mut replica,
                    &cfg,
                    None,
                    &mut stats,
                    &mut scratch,
                    &live,
                    &mut WireState::Classic,
                )
                .unwrap();
            }
            Some(replica)
        });
        assert!(results[1].is_none(), "host 1 must have crashed");
        let survivors: Vec<&ModelReplica> = results.iter().flatten().collect();
        assert_eq!(survivors.len(), 2);
        assert_eq!(
            survivors[0].layers, survivors[1].layers,
            "survivors must hold identical replicas after degraded rounds"
        );
    }

    #[test]
    fn barrier_releases_without_dead_host() {
        // One host dies before ever reaching the barrier; the others'
        // barrier must release on the reduced alive count instead of
        // hanging.
        let done = run_cluster_with(
            3,
            FaultPlan::none(),
            ClusterConfig {
                tick: Duration::from_millis(1),
                barrier_timeout: Duration::from_millis(5),
                ..ClusterConfig::default()
            },
            |ctx| {
                if ctx.host == 2 {
                    std::thread::sleep(Duration::from_millis(20));
                    ctx.mark_self_dead();
                    return false;
                }
                ctx.barrier_wait();
                true
            },
        );
        assert_eq!(done, vec![true, true, false]);
    }

    #[test]
    fn replicas_agree_after_each_round() {
        let cfg = SyncConfig {
            plan: SyncPlan::RepModelOpt,
            combiner: CombinerKind::ModelCombiner,
        };
        let models = run_cluster(3, |ctx| {
            let mut replica = fresh_replica(10, 3, 1);
            let mut stats = CommStats::default();
            for round in 0..3 {
                apply_workload(&mut replica, ctx.host, round, 10);
                sync_round_threaded(&ctx, &mut replica, &cfg, &mut stats).unwrap();
            }
            replica
        });
        // After the final sync every host's full replica is canonical.
        for h in 1..3 {
            assert_eq!(models[0].layers, models[h].layers);
        }
    }

    #[test]
    fn two_hosts_no_touches_is_quiet() {
        let cfg = SyncConfig::default();
        let stats = run_cluster(2, |ctx| {
            let mut replica = fresh_replica(6, 2, 3);
            let mut stats = CommStats::default();
            sync_round_threaded(&ctx, &mut replica, &cfg, &mut stats).unwrap();
            stats
        });
        for s in stats {
            assert_eq!(s.total_bytes(), 0);
        }
    }

    #[test]
    fn run_cluster_collects_in_host_order() {
        let ids = run_cluster(5, |ctx| ctx.host * 10);
        assert_eq!(ids, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn pull_model_threaded_matches_sequential() {
        // PullModel replicas diverge by design (only accessed rows are
        // refreshed), so parity is per-host: each threaded replica must
        // be bit-identical to its sequential counterpart, and the summed
        // send-side stats must match the sequential accounting.
        let n_hosts = 3;
        let n_nodes = 12;
        let dim = 4;
        let rounds = 3;
        let cfg = SyncConfig {
            plan: SyncPlan::PullModel,
            combiner: CombinerKind::ModelCombiner,
        };
        // Deterministic stand-in for the inspection replay: the rows each
        // host "will touch next round", same sets for both engines.
        let access_for = |round: usize| {
            let mut sets = AccessSets::new(n_hosts, 2, n_nodes);
            for host in 0..n_hosts {
                for layer in 0..2 {
                    for node in 0..n_nodes {
                        if (node + host + round + layer).is_multiple_of(3) {
                            sets.get_mut(host, layer).set(node);
                        }
                    }
                }
            }
            sets
        };

        let mut seq_replicas: Vec<ModelReplica> = (0..n_hosts)
            .map(|_| fresh_replica(n_nodes, dim, 7))
            .collect();
        let mut seq_stats = CommStats::default();
        for round in 0..rounds {
            for (host, replica) in seq_replicas.iter_mut().enumerate() {
                apply_workload(replica, host, round, n_nodes);
            }
            sync_round(
                &mut seq_replicas,
                &cfg,
                Some(&access_for(round)),
                &mut seq_stats,
            );
        }

        let results = run_cluster(n_hosts, |ctx| {
            let mut replica = fresh_replica(n_nodes, dim, 7);
            let mut stats = CommStats::default();
            let mut scratch = ThreadedSyncScratch::new();
            let live = Liveness::all(n_hosts);
            for round in 0..rounds {
                apply_workload(&mut replica, ctx.host, round, n_nodes);
                let access = access_for(round);
                sync_round_threaded_degraded(
                    &ctx,
                    &mut replica,
                    &cfg,
                    Some(&access),
                    &mut stats,
                    &mut scratch,
                    &live,
                    &mut WireState::Classic,
                )
                .unwrap();
            }
            (replica, stats)
        });
        let mut total = CommStats::default();
        for (host, (replica, stats)) in results.iter().enumerate() {
            assert_eq!(
                seq_replicas[host].layers, replica.layers,
                "host {host} replica must be bit-identical across engines"
            );
            total.merge(stats);
        }
        assert_eq!(seq_stats.reduce_bytes, total.reduce_bytes);
        assert_eq!(seq_stats.broadcast_bytes, total.broadcast_bytes);
        assert_eq!(seq_stats.broadcast_msgs, total.broadcast_msgs);
    }

    fn run_sequential_wire(
        n_hosts: usize,
        n_nodes: usize,
        dim: usize,
        rounds: usize,
        plan: SyncPlan,
        mode: crate::wire::WireMode,
    ) -> (Vec<FlatMatrix>, CommStats) {
        let cfg = SyncConfig {
            plan,
            combiner: CombinerKind::ModelCombiner,
        };
        let live = Liveness::all(n_hosts);
        let mut wire = WireState::for_mode(mode);
        let mut scratch = crate::sync::SyncScratch::new();
        let mut replicas: Vec<ModelReplica> = (0..n_hosts)
            .map(|_| fresh_replica(n_nodes, dim, 7))
            .collect();
        let mut stats = CommStats::default();
        for round in 0..rounds {
            for (host, replica) in replicas.iter_mut().enumerate() {
                apply_workload(replica, host, round, n_nodes);
            }
            crate::sync::sync_round_degraded(
                &mut replicas,
                &cfg,
                None,
                &mut stats,
                &mut scratch,
                &live,
                &mut wire,
            );
        }
        (assemble_canonical(&replicas), stats)
    }

    fn run_threaded_wire(
        n_hosts: usize,
        n_nodes: usize,
        dim: usize,
        rounds: usize,
        plan: SyncPlan,
        mode: crate::wire::WireMode,
    ) -> (Vec<FlatMatrix>, CommStats) {
        let cfg = SyncConfig {
            plan,
            combiner: CombinerKind::ModelCombiner,
        };
        let results = run_cluster(n_hosts, |ctx| {
            let mut replica = fresh_replica(n_nodes, dim, 7);
            let mut stats = CommStats::default();
            let mut scratch = ThreadedSyncScratch::new();
            let mut wire = WireState::for_mode(mode);
            let live = Liveness::all(n_hosts);
            for round in 0..rounds {
                apply_workload(&mut replica, ctx.host, round, n_nodes);
                sync_round_threaded_degraded(
                    &ctx,
                    &mut replica,
                    &cfg,
                    None,
                    &mut stats,
                    &mut scratch,
                    &live,
                    &mut wire,
                )
                .unwrap();
            }
            (replica, stats)
        });
        let (replicas, host_stats): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        let mut total = CommStats::default();
        for s in &host_stats {
            total.merge(s);
        }
        total.rounds = host_stats[0].rounds;
        (assemble_canonical(&replicas), total)
    }

    #[test]
    fn delta_and_quant_wire_match_sequential_bitwise() {
        use crate::wire::WireMode;
        for mode in [WireMode::Delta, WireMode::Quant] {
            for plan in [SyncPlan::RepModelNaive, SyncPlan::RepModelOpt] {
                let (seq_model, seq_stats) = run_sequential_wire(3, 12, 4, 3, plan, mode);
                let (thr_model, thr_stats) = run_threaded_wire(3, 12, 4, 3, plan, mode);
                assert_eq!(seq_model, thr_model, "{mode:?} {plan:?} models");
                assert_eq!(
                    seq_stats.reduce_bytes, thr_stats.reduce_bytes,
                    "{mode:?} {plan:?} reduce bytes"
                );
                assert_eq!(
                    seq_stats.broadcast_bytes, thr_stats.broadcast_bytes,
                    "{mode:?} {plan:?} broadcast bytes"
                );
                assert_eq!(
                    seq_stats.reduce_msgs, thr_stats.reduce_msgs,
                    "{mode:?} {plan:?} reduce msgs"
                );
                assert_eq!(
                    seq_stats.broadcast_msgs, thr_stats.broadcast_msgs,
                    "{mode:?} {plan:?} broadcast msgs"
                );
            }
        }
    }

    #[test]
    fn delta_wire_is_lossless_and_cheaper_on_dense_plan() {
        use crate::wire::WireMode;
        for plan in [SyncPlan::RepModelNaive, SyncPlan::RepModelOpt] {
            let (classic_model, classic_stats) =
                run_sequential_wire(3, 12, 4, 3, plan, WireMode::IdValue);
            let (delta_model, delta_stats) = run_sequential_wire(3, 12, 4, 3, plan, WireMode::Delta);
            assert_eq!(classic_model, delta_model, "{plan:?} delta must be lossless");
            assert!(
                delta_stats.total_bytes() <= classic_stats.total_bytes(),
                "{plan:?} delta must not cost more than classic"
            );
        }
        // On the dense plan most rows repeat round over round, so the
        // change mask must beat re-shipping them.
        let (_, classic_stats) =
            run_sequential_wire(3, 12, 4, 3, SyncPlan::RepModelNaive, WireMode::IdValue);
        let (_, delta_stats) =
            run_sequential_wire(3, 12, 4, 3, SyncPlan::RepModelNaive, WireMode::Delta);
        assert!(delta_stats.total_bytes() < classic_stats.total_bytes());
    }

    #[test]
    fn delta_and_quant_pull_match_sequential() {
        use crate::wire::WireMode;
        let n_hosts = 3;
        let n_nodes = 12;
        let dim = 4;
        let rounds = 3;
        let cfg = SyncConfig {
            plan: SyncPlan::PullModel,
            combiner: CombinerKind::ModelCombiner,
        };
        let access_for = |round: usize| {
            let mut sets = AccessSets::new(n_hosts, 2, n_nodes);
            for host in 0..n_hosts {
                for layer in 0..2 {
                    for node in 0..n_nodes {
                        if (node + host + round + layer).is_multiple_of(3) {
                            sets.get_mut(host, layer).set(node);
                        }
                    }
                }
            }
            sets
        };
        for mode in [WireMode::Delta, WireMode::Quant] {
            let mut seq_replicas: Vec<ModelReplica> = (0..n_hosts)
                .map(|_| fresh_replica(n_nodes, dim, 7))
                .collect();
            let mut seq_stats = CommStats::default();
            let mut seq_scratch = crate::sync::SyncScratch::new();
            let mut seq_wire = WireState::for_mode(mode);
            let live = Liveness::all(n_hosts);
            for round in 0..rounds {
                for (host, replica) in seq_replicas.iter_mut().enumerate() {
                    apply_workload(replica, host, round, n_nodes);
                }
                crate::sync::sync_round_degraded(
                    &mut seq_replicas,
                    &cfg,
                    Some(&access_for(round)),
                    &mut seq_stats,
                    &mut seq_scratch,
                    &live,
                    &mut seq_wire,
                );
            }

            let results = run_cluster(n_hosts, |ctx| {
                let mut replica = fresh_replica(n_nodes, dim, 7);
                let mut stats = CommStats::default();
                let mut scratch = ThreadedSyncScratch::new();
                let mut wire = WireState::for_mode(mode);
                let live = Liveness::all(n_hosts);
                for round in 0..rounds {
                    apply_workload(&mut replica, ctx.host, round, n_nodes);
                    let access = access_for(round);
                    sync_round_threaded_degraded(
                        &ctx,
                        &mut replica,
                        &cfg,
                        Some(&access),
                        &mut stats,
                        &mut scratch,
                        &live,
                        &mut wire,
                    )
                    .unwrap();
                }
                (replica, stats)
            });
            let mut total = CommStats::default();
            for (host, (replica, stats)) in results.iter().enumerate() {
                assert_eq!(
                    seq_replicas[host].layers, replica.layers,
                    "{mode:?} host {host} replica must be bit-identical across engines"
                );
                total.merge(stats);
            }
            assert_eq!(seq_stats.reduce_bytes, total.reduce_bytes, "{mode:?}");
            assert_eq!(seq_stats.broadcast_bytes, total.broadcast_bytes, "{mode:?}");
            assert_eq!(seq_stats.broadcast_msgs, total.broadcast_msgs, "{mode:?}");
        }
    }

    #[test]
    #[should_panic(expected = "host thread panicked")]
    fn pull_without_access_sets_is_rejected() {
        let cfg = SyncConfig {
            plan: SyncPlan::PullModel,
            combiner: CombinerKind::ModelCombiner,
        };
        run_cluster(2, |ctx| {
            let mut replica = fresh_replica(4, 2, 1);
            let mut stats = CommStats::default();
            let _ = sync_round_threaded(&ctx, &mut replica, &cfg, &mut stats);
        });
    }
}
