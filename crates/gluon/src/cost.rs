//! Network cost model.
//!
//! This reproduction runs all hosts on one machine, so wall-clock time
//! cannot show network behaviour. Instead, every byte that crosses the
//! simulated wire is counted exactly ([`crate::volume`]), and this model
//! converts a round's measured volume into the time the paper's fabric —
//! 56 Gb/s InfiniBand between Azure hosts (paper §5.1) — would have
//! spent:
//!
//! ```text
//! t_round = 2·latency + max_h(sent_h + recv_h) / bandwidth
//! ```
//!
//! The `2·latency` term charges one fabric round-trip per phase (reduce,
//! broadcast); the volume term charges the bottleneck host's traffic,
//! assuming a full-duplex non-blocking switch (all hosts transfer
//! concurrently, so the busiest port dominates). This is the standard
//! α-β (latency–bandwidth) model of collective-communication analysis.

use crate::volume::RoundVolume;
use serde::{Deserialize, Serialize};

/// α–β network cost model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Link bandwidth in bytes/second (per host port, full duplex).
    pub bandwidth_bytes_per_sec: f64,
    /// One-way message latency in seconds (α).
    pub latency_sec: f64,
    /// Fixed per-phase software overhead in seconds (marshalling, MPI
    /// stack); charged once per phase like latency.
    pub per_phase_overhead_sec: f64,
}

impl CostModel {
    /// The paper's fabric: 56 Gb/s InfiniBand (§5.1). Effective bandwidth
    /// is taken at ~80% of line rate (5.6 GB/s), latency at 2 µs, plus a
    /// 50 µs per-phase software overhead.
    pub fn infiniband_56g() -> Self {
        Self {
            bandwidth_bytes_per_sec: 0.8 * 56.0e9 / 8.0,
            latency_sec: 2.0e-6,
            per_phase_overhead_sec: 50.0e-6,
        }
    }

    /// A slower commodity fabric (10 GbE) for sensitivity experiments.
    pub fn ethernet_10g() -> Self {
        Self {
            bandwidth_bytes_per_sec: 0.8 * 10.0e9 / 8.0,
            latency_sec: 20.0e-6,
            per_phase_overhead_sec: 100.0e-6,
        }
    }

    /// Modeled communication time for one synchronization round.
    pub fn round_time(&self, volume: &RoundVolume) -> f64 {
        if volume.total_bytes() == 0 {
            return 0.0;
        }
        let bottleneck = volume.max_host_bytes() as f64;
        2.0 * (self.latency_sec + self.per_phase_overhead_sec)
            + bottleneck / self.bandwidth_bytes_per_sec
    }

    /// Modeled time to move `bytes` through one host port (helper for
    /// aggregate estimates).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_volume_costs_nothing() {
        let m = CostModel::infiniband_56g();
        let v = RoundVolume::new(4);
        assert_eq!(m.round_time(&v), 0.0);
    }

    #[test]
    fn volume_term_dominates_large_transfers() {
        let m = CostModel::infiniband_56g();
        let mut v = RoundVolume::new(2);
        v.record(0, 1, 5_600_000_000); // 5.6 GB at ~5.6 GB/s ≈ 1 s
        let t = m.round_time(&v);
        assert!((0.9..1.3).contains(&t), "t = {t}");
    }

    #[test]
    fn latency_floor_for_small_messages() {
        let m = CostModel::infiniband_56g();
        let mut v = RoundVolume::new(2);
        v.record(0, 1, 8);
        let t = m.round_time(&v);
        let floor = 2.0 * (m.latency_sec + m.per_phase_overhead_sec);
        assert!(t >= floor);
        assert!(t < floor * 1.01);
    }

    #[test]
    fn bottleneck_host_not_total_drives_cost() {
        let m = CostModel::infiniband_56g();
        // Balanced: 4 hosts each send 1 GB to distinct peers.
        let mut balanced = RoundVolume::new(4);
        balanced.record(0, 1, 1 << 30);
        balanced.record(1, 0, 1 << 30);
        balanced.record(2, 3, 1 << 30);
        balanced.record(3, 2, 1 << 30);
        // Skewed: one host receives everything.
        let mut skewed = RoundVolume::new(4);
        skewed.record(0, 3, 1 << 30);
        skewed.record(1, 3, 1 << 30);
        skewed.record(2, 3, 1 << 30);
        skewed.record(3, 0, 1 << 30);
        assert!(m.round_time(&skewed) > m.round_time(&balanced));
    }

    #[test]
    fn slower_fabric_costs_more() {
        let mut v = RoundVolume::new(2);
        v.record(0, 1, 100_000_000);
        assert!(
            CostModel::ethernet_10g().round_time(&v) > CostModel::infiniband_56g().round_time(&v)
        );
    }
}
