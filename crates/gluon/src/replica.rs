//! Per-host model replicas with delta tracking.
//!
//! Every host holds a full replica of the model (paper §4.2): one
//! [`FlatMatrix`] per layer (Word2Vec has two — the embedding layer
//! `syn0` and the training layer `syn1neg`). Between synchronization
//! points the host updates rows in place; the replica snapshots each
//! row's *base* value on first touch so the synchronization phase can
//! ship `delta = current − base` — the "gradient" the paper's model
//! combiner reconciles (accumulated over all of the host's SGD steps in
//! the round, §3/§4.3).

use gw2v_util::bitvec::BitVec;
use gw2v_util::fvec::FlatMatrix;

/// Sentinel for "not tracked this round".
const NO_SLOT: u32 = u32::MAX;

/// Tracks which rows of one layer were touched this round and their
/// pre-round base values.
#[derive(Clone, Debug)]
pub struct DeltaTracker {
    dim: usize,
    slot_of: Vec<u32>,
    /// Touched node ids in first-touch order.
    nodes: Vec<u32>,
    /// Slot-major base row copies.
    base: Vec<f32>,
    touched: BitVec,
}

impl DeltaTracker {
    /// Creates a tracker for `n_nodes` rows of length `dim`.
    pub fn new(n_nodes: usize, dim: usize) -> Self {
        Self {
            dim,
            slot_of: vec![NO_SLOT; n_nodes],
            nodes: Vec::new(),
            base: Vec::new(),
            touched: BitVec::new(n_nodes),
        }
    }

    /// Records that `node`'s row (currently `current`) is about to be
    /// modified; the first touch per round snapshots the base value.
    #[inline]
    pub fn on_touch(&mut self, node: u32, current: &[f32]) {
        if self.slot_of[node as usize] != NO_SLOT {
            return;
        }
        debug_assert_eq!(current.len(), self.dim);
        self.slot_of[node as usize] = self.nodes.len() as u32;
        self.nodes.push(node);
        self.base.extend_from_slice(current);
        self.touched.set(node as usize);
    }

    /// True if `node` was touched this round.
    #[inline]
    pub fn is_touched(&self, node: u32) -> bool {
        self.slot_of[node as usize] != NO_SLOT
    }

    /// The base (pre-round) value of a touched node.
    pub fn base_of(&self, node: u32) -> &[f32] {
        let slot = self.slot_of[node as usize];
        assert_ne!(slot, NO_SLOT, "node {node} not touched");
        &self.base[slot as usize * self.dim..(slot as usize + 1) * self.dim]
    }

    /// Touched nodes in first-touch order.
    pub fn touched_nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Touched nodes as a bit vector (what RepModel-Opt ships as
    /// metadata, paper §4.4).
    pub fn touched_bits(&self) -> &BitVec {
        &self.touched
    }

    /// Number of touched nodes.
    pub fn touched_count(&self) -> usize {
        self.nodes.len()
    }

    /// Writes `current − base` for `node` into `out` (element-wise
    /// subtraction through the SIMD kernel table; bit-identical across
    /// backends).
    pub fn delta_into(&self, node: u32, current: &[f32], out: &mut [f32]) {
        let base = self.base_of(node);
        (gw2v_util::simd::kernels().sub_into)(current, base, out);
    }

    /// Clears all tracking for the next round; O(touched).
    pub fn clear(&mut self) {
        for &n in &self.nodes {
            self.slot_of[n as usize] = NO_SLOT;
        }
        self.nodes.clear();
        self.base.clear();
        self.touched.clear_all();
    }
}

/// One host's full model replica: `layers.len()` matrices plus a delta
/// tracker per layer.
#[derive(Clone, Debug)]
pub struct ModelReplica {
    /// The model layers (for Word2Vec: `[syn0, syn1neg]`).
    pub layers: Vec<FlatMatrix>,
    trackers: Vec<DeltaTracker>,
}

impl ModelReplica {
    /// Wraps existing layer matrices (all must have the same row count).
    pub fn new(layers: Vec<FlatMatrix>) -> Self {
        assert!(!layers.is_empty());
        let n = layers[0].rows();
        assert!(layers.iter().all(|l| l.rows() == n), "row count mismatch");
        let trackers = layers
            .iter()
            .map(|l| DeltaTracker::new(n, l.dim()))
            .collect();
        Self { layers, trackers }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of nodes (rows per layer).
    pub fn n_nodes(&self) -> usize {
        self.layers[0].rows()
    }

    /// Read-only row access.
    #[inline]
    pub fn row(&self, layer: usize, node: u32) -> &[f32] {
        self.layers[layer].row(node as usize)
    }

    /// Mutable row access *with* delta tracking: snapshots the base on
    /// first touch per round. All training writes must go through here
    /// (or pre-declare via [`DeltaTracker::on_touch`]).
    #[inline]
    pub fn row_mut(&mut self, layer: usize, node: u32) -> &mut [f32] {
        let current = self.layers[layer].row(node as usize);
        // Tracker borrows current immutably before the mutable borrow below.
        self.trackers[layer].on_touch(node, current);
        self.layers[layer].row_mut(node as usize)
    }

    /// Mutable row access *without* tracking — only for initialization
    /// before training starts.
    #[inline]
    pub fn row_mut_untracked(&mut self, layer: usize, node: u32) -> &mut [f32] {
        self.layers[layer].row_mut(node as usize)
    }

    /// The layer's tracker.
    pub fn tracker(&self, layer: usize) -> &DeltaTracker {
        &self.trackers[layer]
    }

    /// Clears all trackers (end of a sync round).
    pub fn clear_tracking(&mut self) {
        for t in &mut self.trackers {
            t.clear();
        }
    }

    /// Simultaneous mutable access to one layer and its tracker, for the
    /// synchronization engine (which rewrites rows while consulting
    /// bases).
    pub fn layer_and_tracker_mut(&mut self, layer: usize) -> (&mut FlatMatrix, &DeltaTracker) {
        (&mut self.layers[layer], &self.trackers[layer])
    }

    /// Split borrow for cross-layer updates: an immutable row of
    /// `read_layer` together with a *tracked* mutable row of
    /// `write_layer` (which must differ). This is the SGNS update shape:
    /// `syn1neg[wout] += g · syn0[win]`.
    pub fn row_and_row_mut(
        &mut self,
        read_layer: usize,
        read_node: u32,
        write_layer: usize,
        write_node: u32,
    ) -> (&[f32], &mut [f32]) {
        assert_ne!(read_layer, write_layer, "layers must differ");
        {
            let current = self.layers[write_layer].row(write_node as usize);
            self.trackers[write_layer].on_touch(write_node, current);
        }
        if read_layer < write_layer {
            let (lo, hi) = self.layers.split_at_mut(write_layer);
            (
                lo[read_layer].row(read_node as usize),
                hi[0].row_mut(write_node as usize),
            )
        } else {
            let (lo, hi) = self.layers.split_at_mut(read_layer);
            (
                hi[0].row(read_node as usize),
                lo[write_layer].row_mut(write_node as usize),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica(n: usize, dim: usize) -> ModelReplica {
        ModelReplica::new(vec![FlatMatrix::zeros(n, dim), FlatMatrix::zeros(n, dim)])
    }

    #[test]
    fn first_touch_snapshots_base() {
        let mut r = replica(4, 2);
        r.row_mut_untracked(0, 1).copy_from_slice(&[5.0, 6.0]);
        {
            let row = r.row_mut(0, 1);
            row[0] = 10.0;
        }
        {
            let row = r.row_mut(0, 1);
            row[1] = 20.0;
        }
        let t = r.tracker(0);
        assert!(t.is_touched(1));
        assert_eq!(t.base_of(1), &[5.0, 6.0], "base is the pre-round value");
        let mut delta = [0.0; 2];
        t.delta_into(1, r.row(0, 1), &mut delta);
        assert_eq!(delta, [5.0, 14.0]);
    }

    #[test]
    fn layers_track_independently() {
        let mut r = replica(3, 2);
        r.row_mut(0, 0)[0] = 1.0;
        r.row_mut(1, 2)[0] = 2.0;
        assert!(r.tracker(0).is_touched(0));
        assert!(!r.tracker(0).is_touched(2));
        assert!(r.tracker(1).is_touched(2));
        assert!(!r.tracker(1).is_touched(0));
    }

    #[test]
    fn untracked_writes_invisible() {
        let mut r = replica(2, 2);
        r.row_mut_untracked(0, 0)[0] = 9.0;
        assert_eq!(r.tracker(0).touched_count(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = replica(3, 2);
        r.row_mut(0, 1)[0] = 1.0;
        r.row_mut(0, 2)[1] = 2.0;
        assert_eq!(r.tracker(0).touched_count(), 2);
        r.clear_tracking();
        assert_eq!(r.tracker(0).touched_count(), 0);
        assert!(!r.tracker(0).is_touched(1));
        assert!(r.tracker(0).touched_bits().none());
        // New round: base re-snapshots the *current* value.
        r.row_mut(0, 1)[0] = 5.0;
        assert_eq!(r.tracker(0).base_of(1), &[1.0, 0.0]);
    }

    #[test]
    fn touch_order_preserved() {
        let mut r = replica(5, 1);
        for &n in &[3u32, 0, 4, 0, 3] {
            r.row_mut(0, n)[0] += 1.0;
        }
        assert_eq!(r.tracker(0).touched_nodes(), &[3, 0, 4]);
    }

    #[test]
    #[should_panic(expected = "not touched")]
    fn base_of_untouched_panics() {
        let r = replica(2, 1);
        let _ = r.tracker(0).base_of(0);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_layers_rejected() {
        let _ = ModelReplica::new(vec![FlatMatrix::zeros(2, 2), FlatMatrix::zeros(3, 2)]);
    }
}
