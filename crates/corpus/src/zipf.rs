//! Zipf–Mandelbrot rank sampler.
//!
//! Natural-language word frequencies follow a Zipf–Mandelbrot law:
//! `P(rank k) ∝ 1 / (k + q)^s`. The synthetic corpus generator draws its
//! background words from this distribution so the generated vocabulary
//! has the realistic long tail that frequent-word subsampling and the
//! `count^0.75` negative-sampling distribution both depend on.

use gw2v_util::rng::Rng64;

/// Precomputed-CDF Zipf–Mandelbrot sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s` and Mandelbrot
    /// shift `q` (use `q = 0.0` for classic Zipf; `s ≈ 1.0`, `q ≈ 2.7`
    /// matches English text well).
    pub fn new(n: usize, s: f64, q: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s > 0.0, "exponent must be positive");
        assert!(q >= 0.0, "shift must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64 + q).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler covers zero ranks (impossible post-construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most probable.
    #[inline]
    pub fn sample<R: Rng64>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // partition_point returns the count of ranks with cdf <= u, i.e.
        // the first rank whose cdf exceeds u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw2v_util::rng::Xoshiro256;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.07, 2.7);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_decreasing() {
        let z = ZipfSampler::new(50, 1.0, 0.0);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn classic_zipf_ratios() {
        // For q=0, s=1: pmf(k) ∝ 1/(k+1); pmf(0)/pmf(1) = 2.
        let z = ZipfSampler::new(10, 1.0, 0.0);
        let ratio = z.pmf(0) / z.pmf(1);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_matches_pmf() {
        let z = ZipfSampler::new(20, 1.2, 1.0);
        let mut rng = Xoshiro256::new(13);
        let n = 400_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        #[allow(clippy::needless_range_loop)]
        for k in 0..20 {
            let emp = counts[k] as f64 / n as f64;
            let exp = z.pmf(k);
            assert!(
                (emp - exp).abs() < 0.01 + 0.05 * exp,
                "rank {k}: emp {emp}, exp {exp}"
            );
        }
    }

    #[test]
    fn sample_in_range() {
        let z = ZipfSampler::new(7, 1.0, 0.5);
        let mut rng = Xoshiro256::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_rank() {
        let z = ZipfSampler::new(1, 1.0, 0.0);
        let mut rng = Xoshiro256::new(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }
}
