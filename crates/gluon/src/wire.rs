//! Wire format for synchronization payloads.
//!
//! Rows cross the simulated network as serialized buffers, exactly as an
//! MPI deployment would pack them. Serializing for real (rather than
//! passing references) keeps the byte accounting honest and lets the
//! threaded engine ship owned buffers between host threads.
//!
//! # Payload modes
//!
//! Four payload layouts exist, selected per run by [`WireMode`] (the
//! full byte-layout reference lives in `docs/WIRE.md`):
//!
//! * **Id+value** ([`WireMode::IdValue`], the default) — every entry
//!   contributes a `u32` node id and `dim` `f32`s ([`entry_bytes`]
//!   bytes), laid out struct-of-arrays: all ids first, then all rows.
//!   Self-describing: the receiver learns *which* rows it got from the
//!   payload itself. Encoded by [`RowEncoder::finish`], decoded by
//!   [`RowDecoder`].
//! * **Memoized value-only** ([`WireMode::Memo`]) — the Gluon
//!   memoization optimization: node-id lists for a given
//!   (sender, receiver, layer, channel) key are invariant whenever the
//!   same rows are exchanged again, so after the first exchange both
//!   ends cache the id list ([`WireMemo`]) and later rounds ship bare
//!   `dim` `f32`s per entry ([`value_bytes`] bytes, a
//!   `4 / (4 + 4·dim)`-fraction saving). Encoded by
//!   [`RowEncoder::finish_values`], decoded by [`ValueDecoder`] against
//!   the cached id list. The sender decides per payload: a cache *hit*
//!   (list unchanged since last send) ships value-only; a *miss* ships
//!   id+value and both ends update their cache. Caches clear at every
//!   epoch start and on any liveness change (crash, adoption, rejoin),
//!   so fault recovery never decodes against a stale list.
//! * **Delta** ([`WireMode::Delta`]) — row-change shipping: both ends
//!   keep a shadow of the last exchanged payload per key
//!   ([`DeltaShadow`], ids *and* values, invalidated exactly like the
//!   memo). When the id list repeats, the sender ships only a changed-
//!   row bitmask plus the rows whose bits actually changed
//!   ([`delta_bytes`]); the receiver reconstructs the untouched rows
//!   bit-exactly from its shadow. Lossless — like memo, delta changes
//!   bytes moved, never training results.
//! * **Quantized** ([`WireMode::Quant`]) — each row crosses the wire as
//!   `dim` `u8` codes plus one `f32` scale/offset pair
//!   ([`quant_entry_bytes`] = `12 + dim` per entry vs `4 + 4·dim`
//!   classic), laid out struct-of-arrays: ids, scales, offsets, codes.
//!   Encoded by [`RowEncoder::finish_quant`] through the
//!   backend-bit-identical `quantize_rows` kernel, decoded by
//!   [`QuantDecoder`]. **Lossy** (values snap to a per-row 256-point
//!   grid) but stateless: nothing to invalidate, and the simulator
//!   replays the exact same quantize→dequantize transform on every
//!   wire-crossing row so both engines still agree bit-for-bit.
//!
//! Id+value, memo, and delta carry bit-identical `f32` row values — the
//! mode changes bytes moved, never training results; quant trades a
//! bounded accuracy delta for the biggest byte cut. The conformance
//! suite pins engine parity for all four across every fault family.
//!
//! # Format invariants
//!
//! * **Layout** — struct-of-arrays. Id+value: all `n` little-endian
//!   `u32` node ids first, then all `n·dim` little-endian IEEE-754
//!   `f32`s in the same order — `n` is self-describing
//!   (`buf.len() / entry_bytes(dim)`), and the total is still
//!   [`entry_bytes`]`(dim)` per entry, so byte accounting is unchanged
//!   from the historical interleaved layout. Value-only: `4·dim` bytes
//!   per entry ([`value_bytes`]), the `f32`s alone in cached-id-list
//!   order. No header, no padding, no alignment requirement. Keeping
//!   the two regions contiguous is what lets the codec run as two bulk
//!   copies (one `memcpy`-shaped id pass, one SIMD value pass) instead
//!   of `n` interleaved gather/scatter steps.
//! * **Self-describing length** — `buf.len()` must be an exact multiple
//!   of the entry size; [`RowDecoder`] asserts this and [`ValueDecoder`]
//!   additionally requires the length to match the cached id list
//!   exactly, so a truncated, mis-dimensioned, or stale-cache buffer
//!   fails loudly instead of desynchronizing.
//! * **Order-preserving** — entries decode in the order they were
//!   pushed. Determinism of the sync protocol relies on this: receivers
//!   fold messages in host-id order and entries in push order, and the
//!   memoized mode relies on it twice over (the cached id list *is* the
//!   push order).
//! * **Bit-exact round-trip** — `f32` bits pass through unchanged
//!   (including NaN payloads and negative zero), so a serialize →
//!   deserialize cycle is the identity on rows and the threaded engine
//!   stays bit-identical to the in-process sequential engine.
//!
//! Encoding and decoding of the `f32` blocks goes through the runtime-
//! dispatched [`gw2v_util::simd`] kernels (`encode_rows`/`decode_rows`);
//! pure byte movement, so scalar and AVX2 backends are bit-identical.
//!
//! # Byte accounting and the paper's Table 3
//!
//! The paper's comm-volume numbers (Table 3, Fig. 6–9) count payload
//! bytes per sync round. [`crate::volume::CommStats`] mirrors that
//! accounting exactly in both engines:
//!
//! * id+value entries count [`entry_bytes`]`(dim)` each — this is the
//!   figure the paper reports for RepModelNaive / RepModelOpt /
//!   PullModel;
//! * memoized value-only entries count [`value_bytes`]`(dim)` each, so
//!   the analytic simulator and the byte-measuring threaded engine agree
//!   to the byte in both modes ("analytic == measured");
//! * sealed-frame armor ([`seal_frame`]'s 12-byte header) and PullModel
//!   request id-lists are transport/control traffic the paper does not
//!   count, and neither do we.

use crate::liveness::Liveness;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gw2v_util::crc32::crc32;
use gw2v_util::simd::kernels;
use std::collections::HashMap;
use std::fmt;

/// Serialized bytes for one `(node, row)` id+value entry at dimension
/// `dim`.
#[inline]
pub const fn entry_bytes(dim: usize) -> usize {
    4 + 4 * dim
}

/// Serialized bytes for one memoized value-only entry at dimension
/// `dim` (the row values alone; the node id lives in the receiver's
/// [`WireMemo`] cache).
#[inline]
pub const fn value_bytes(dim: usize) -> usize {
    4 * dim
}

/// Serialized bytes of the changed-row bitmask heading a delta payload
/// covering `n` rows (one bit per row, LSB-first within each byte).
#[inline]
pub const fn mask_bytes(n: usize) -> usize {
    n.div_ceil(8)
}

/// Serialized bytes of a delta payload on a shadow hit: the `n`-row
/// bitmask plus full `f32` rows for the `changed` rows only. Always
/// ≤ `n · entry_bytes(dim)` (the mask costs ⅛ byte per row where the
/// classic id costs 4).
#[inline]
pub const fn delta_bytes(dim: usize, n: usize, changed: usize) -> usize {
    mask_bytes(n) + changed * value_bytes(dim)
}

/// Serialized bytes for one quantized entry at dimension `dim`: a `u32`
/// node id, an `f32` scale, an `f32` offset, and `dim` `u8` codes.
/// Beats [`entry_bytes`] for every `dim ≥ 3`.
#[inline]
pub const fn quant_entry_bytes(dim: usize) -> usize {
    12 + dim
}

/// Which payload layout a run ships (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Self-describing id+value entries every round (the default).
    #[default]
    IdValue,
    /// Gluon-style id-list memoization: id+value on the first exchange
    /// (and after any cache invalidation), bare values afterwards.
    Memo,
    /// Row-change shipping against a per-key shadow: id+value on the
    /// first exchange (and after any invalidation), bitmask + changed
    /// rows afterwards. Lossless.
    Delta,
    /// Per-row u8 quantization with an `f32` scale/offset pair. Lossy,
    /// stateless, and the biggest byte cut.
    Quant,
}

impl WireMode {
    /// Parses a CLI spelling (`"id-value"` / `"memo"` / `"delta"` /
    /// `"quant"`).
    pub fn parse(s: &str) -> Option<WireMode> {
        match s {
            "id-value" | "idvalue" => Some(WireMode::IdValue),
            "memo" | "memoized" => Some(WireMode::Memo),
            "delta" => Some(WireMode::Delta),
            "quant" | "quantized" => Some(WireMode::Quant),
            _ => None,
        }
    }

    /// Stable label for provenance records and plots.
    pub fn label(self) -> &'static str {
        match self {
            WireMode::IdValue => "id-value",
            WireMode::Memo => "memo",
            WireMode::Delta => "delta",
            WireMode::Quant => "quant",
        }
    }
}

/// An encoder for a batch of `(node, row)` entries of fixed dimension.
///
/// Ids and values are staged separately so one encoder can serve both
/// payload layouts: [`finish`](RowEncoder::finish) interleaves them into
/// an id+value buffer, [`finish_values`](RowEncoder::finish_values)
/// emits the values alone, and [`ids`](RowEncoder::ids) exposes the id
/// list for [`WireMemo`] bookkeeping. Both finishers are non-consuming,
/// so the same staged batch can be shipped in either layout to
/// different peers.
#[derive(Debug)]
pub struct RowEncoder {
    dim: usize,
    ids: Vec<u32>,
    values: Vec<f32>,
}

impl RowEncoder {
    /// Creates an encoder for rows of length `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            ids: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one entry.
    pub fn push(&mut self, node: u32, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        self.ids.push(node);
        self.values.extend_from_slice(row);
    }

    /// Entries encoded so far.
    pub fn count(&self) -> usize {
        self.ids.len()
    }

    /// Id+value payload size in bytes ([`entry_bytes`] per entry).
    pub fn byte_len(&self) -> usize {
        self.ids.len() * entry_bytes(self.dim)
    }

    /// Value-only payload size in bytes ([`value_bytes`] per entry).
    pub fn value_byte_len(&self) -> usize {
        self.ids.len() * value_bytes(self.dim)
    }

    /// The node ids pushed so far, in push order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Serializes the staged batch as an id+value buffer: the id region
    /// as one pass, then the whole value region in a single bulk call
    /// through the SIMD kernel table. Non-consuming: the batch stays
    /// staged.
    pub fn finish(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.resize(self.byte_len(), 0);
        let out = buf.as_mut_slice();
        let ids_end = self.ids.len() * 4;
        for (i, &node) in self.ids.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&node.to_le_bytes());
        }
        (kernels().encode_rows)(&self.values, &mut out[ids_end..]);
        buf.freeze()
    }

    /// Serializes the staged batch as a value-only buffer (one bulk
    /// kernel call over all rows). Non-consuming.
    pub fn finish_values(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.resize(self.value_byte_len(), 0);
        (kernels().encode_rows)(&self.values, buf.as_mut_slice());
        buf.freeze()
    }

    /// The staged row values, in push order (`count() · dim` floats).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Serializes the staged batch as a delta payload against `mask`
    /// (one bit per staged entry, LSB-first within each byte, as
    /// produced by [`DeltaShadow::submit`]): the mask bytes first, then
    /// the full `f32` rows of the *set-bit* entries only, in push
    /// order, bulk-encoded in one kernel call. Non-consuming.
    pub fn finish_delta(&self, mask: &[u8]) -> Bytes {
        let n = self.ids.len();
        assert_eq!(mask.len(), mask_bytes(n), "mask length mismatch");
        let mut changed_vals = Vec::new();
        for r in 0..n {
            if mask[r / 8] & (1 << (r % 8)) != 0 {
                changed_vals.extend_from_slice(&self.values[r * self.dim..(r + 1) * self.dim]);
            }
        }
        let mut buf = BytesMut::new();
        buf.resize(mask.len() + changed_vals.len() * 4, 0);
        let out = buf.as_mut_slice();
        out[..mask.len()].copy_from_slice(mask);
        (kernels().encode_rows)(&changed_vals, &mut out[mask.len()..]);
        buf.freeze()
    }

    /// Serializes the staged batch as a quantized payload, SoA: the id
    /// region, then per-row `f32` scales, then per-row `f32` offsets,
    /// then all `u8` codes ([`quant_entry_bytes`] per entry). One bulk
    /// call through the backend-bit-identical `quantize_rows` kernel.
    /// Non-consuming.
    pub fn finish_quant(&self) -> Bytes {
        let n = self.ids.len();
        let mut scales = vec![0.0f32; n];
        let mut offsets = vec![0.0f32; n];
        let mut buf = BytesMut::new();
        buf.resize(n * quant_entry_bytes(self.dim), 0);
        let out = buf.as_mut_slice();
        for (i, &node) in self.ids.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&node.to_le_bytes());
        }
        (kernels().quantize_rows)(
            &self.values,
            self.dim,
            &mut scales,
            &mut offsets,
            &mut out[n * 12..],
        );
        (kernels().encode_rows)(&scales, &mut out[n * 4..n * 8]);
        (kernels().encode_rows)(&offsets, &mut out[n * 8..n * 12]);
        buf.freeze()
    }
}

/// A destination rows can be decoded straight into (a replica layer, a
/// raw matrix, …) without staging through an intermediate row buffer.
pub trait RowSink {
    /// Mutable storage for `node`'s row; the decoder fills it in place.
    fn row_mut(&mut self, node: u32) -> &mut [f32];
}

impl<F> RowSink for F
where
    F: FnMut(u32) -> *mut [f32],
{
    fn row_mut(&mut self, node: u32) -> &mut [f32] {
        // SAFETY: callers hand out disjoint rows of storage they
        // exclusively borrow for the duration of the decode.
        unsafe { &mut *self(node) }
    }
}

/// Iterator decoding an id+value buffer produced by
/// [`RowEncoder::finish`].
///
/// The struct-of-arrays layout lets construction decode the *entire*
/// value region with one bulk kernel call; iteration and
/// [`decode_into`](RowDecoder::decode_into) then only hand out (or
/// `memcpy`) slices of the already-decoded block — no per-row kernel
/// dispatch.
pub struct RowDecoder {
    dim: usize,
    buf: Bytes,
    count: usize,
    next: usize,
    values: Vec<f32>,
}

impl RowDecoder {
    /// Creates a decoder for rows of length `dim`, bulk-decoding the
    /// value region up front.
    pub fn new(buf: Bytes, dim: usize) -> Self {
        assert_eq!(
            buf.len() % entry_bytes(dim),
            0,
            "buffer length {} not a multiple of entry size {}",
            buf.len(),
            entry_bytes(dim)
        );
        let count = buf.len() / entry_bytes(dim);
        let mut values = vec![0.0; count * dim];
        (kernels().decode_rows)(&buf.as_slice()[count * 4..], &mut values);
        Self {
            dim,
            buf,
            count,
            next: 0,
            values,
        }
    }

    /// Decodes the next entry, exposing the row as a borrowed slice
    /// (valid until the next call).
    pub fn next_entry(&mut self) -> Option<(u32, &[f32])> {
        if self.next >= self.count {
            return None;
        }
        let src = self.buf.as_slice();
        let off = self.next * 4;
        let node = u32::from_le_bytes([src[off], src[off + 1], src[off + 2], src[off + 3]]);
        let row = &self.values[self.next * self.dim..(self.next + 1) * self.dim];
        self.next += 1;
        Some((node, row))
    }

    /// Number of entries remaining.
    pub fn remaining(&self) -> usize {
        self.count - self.next
    }

    /// Copies every remaining entry directly into `sink`'s row storage.
    pub fn decode_into<S: RowSink>(&mut self, sink: &mut S) {
        let src = self.buf.as_slice();
        while self.next < self.count {
            let off = self.next * 4;
            let node = u32::from_le_bytes([src[off], src[off + 1], src[off + 2], src[off + 3]]);
            sink.row_mut(node)
                .copy_from_slice(&self.values[self.next * self.dim..(self.next + 1) * self.dim]);
            self.next += 1;
        }
    }
}

/// Iterator decoding a memoized value-only buffer produced by
/// [`RowEncoder::finish_values`], pairing each row with the
/// corresponding id from the receiver's cached list.
#[derive(Debug)]
pub struct ValueDecoder<'a> {
    dim: usize,
    ids: &'a [u32],
    next: usize,
    values: Vec<f32>,
}

impl<'a> ValueDecoder<'a> {
    /// Creates a decoder pairing `buf`'s rows with `ids`,
    /// bulk-decoding the whole payload up front; fails with
    /// [`WireError::BadLength`] when the payload does not carry exactly
    /// one row per cached id (a stale or mismatched cache).
    pub fn new(buf: Bytes, dim: usize, ids: &'a [u32]) -> Result<Self, WireError> {
        let claimed = ids.len() * value_bytes(dim);
        if buf.len() != claimed {
            return Err(WireError::BadLength {
                claimed,
                actual: buf.len(),
            });
        }
        let mut values = vec![0.0; ids.len() * dim];
        (kernels().decode_rows)(buf.as_slice(), &mut values);
        Ok(Self {
            dim,
            ids,
            next: 0,
            values,
        })
    }

    /// Decodes the next entry, exposing the row as a borrowed slice
    /// (valid until the next call).
    pub fn next_entry(&mut self) -> Option<(u32, &[f32])> {
        let node = *self.ids.get(self.next)?;
        let row = &self.values[self.next * self.dim..(self.next + 1) * self.dim];
        self.next += 1;
        Some((node, row))
    }

    /// Copies every remaining entry directly into `sink`'s row storage.
    pub fn decode_into<S: RowSink>(&mut self, sink: &mut S) {
        while let Some(&node) = self.ids.get(self.next) {
            sink.row_mut(node)
                .copy_from_slice(&self.values[self.next * self.dim..(self.next + 1) * self.dim]);
            self.next += 1;
        }
    }
}

/// Iterator decoding a quantized buffer produced by
/// [`RowEncoder::finish_quant`].
///
/// Construction dequantizes the *entire* payload with one bulk
/// `dequantize_rows` kernel call; iteration and
/// [`decode_into`](QuantDecoder::decode_into) then behave exactly like
/// [`RowDecoder`] over the reconstructed rows.
#[derive(Debug)]
pub struct QuantDecoder {
    dim: usize,
    buf: Bytes,
    count: usize,
    next: usize,
    values: Vec<f32>,
}

impl QuantDecoder {
    /// Creates a decoder for rows of length `dim`; fails with
    /// [`WireError::BadLength`] when `buf` is not a whole number of
    /// [`quant_entry_bytes`] entries.
    pub fn new(buf: Bytes, dim: usize) -> Result<Self, WireError> {
        let per = quant_entry_bytes(dim);
        if buf.len() % per != 0 {
            return Err(WireError::BadLength {
                claimed: buf.len() / per * per,
                actual: buf.len(),
            });
        }
        let count = buf.len() / per;
        let src = buf.as_slice();
        let mut scales = vec![0.0f32; count];
        let mut offsets = vec![0.0f32; count];
        (kernels().decode_rows)(&src[count * 4..count * 8], &mut scales);
        (kernels().decode_rows)(&src[count * 8..count * 12], &mut offsets);
        let mut values = vec![0.0f32; count * dim];
        (kernels().dequantize_rows)(&src[count * 12..], dim, &scales, &offsets, &mut values);
        Ok(Self {
            dim,
            buf,
            count,
            next: 0,
            values,
        })
    }

    /// Decodes the next entry, exposing the reconstructed row as a
    /// borrowed slice (valid until the next call).
    pub fn next_entry(&mut self) -> Option<(u32, &[f32])> {
        if self.next >= self.count {
            return None;
        }
        let src = self.buf.as_slice();
        let off = self.next * 4;
        let node = u32::from_le_bytes([src[off], src[off + 1], src[off + 2], src[off + 3]]);
        let row = &self.values[self.next * self.dim..(self.next + 1) * self.dim];
        self.next += 1;
        Some((node, row))
    }

    /// Number of entries remaining.
    pub fn remaining(&self) -> usize {
        self.count - self.next
    }

    /// Copies every remaining reconstructed row directly into `sink`'s
    /// row storage.
    pub fn decode_into<S: RowSink>(&mut self, sink: &mut S) {
        let src = self.buf.as_slice();
        while self.next < self.count {
            let off = self.next * 4;
            let node = u32::from_le_bytes([src[off], src[off + 1], src[off + 2], src[off + 3]]);
            sink.row_mut(node)
                .copy_from_slice(&self.values[self.next * self.dim..(self.next + 1) * self.dim]);
            self.next += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Id-list memoization
// ---------------------------------------------------------------------------

/// Which protocol phase a payload belongs to; reduce and broadcast
/// traffic between the same host pair memoize independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Mirror deltas shipped to the (effective) master.
    Reduce,
    /// Canonical values shipped back to mirrors (including PullModel
    /// responses).
    Broadcast,
}

/// Per-(sender, receiver, layer, channel) node-id-list cache driving
/// [`WireMode::Memo`].
///
/// Both ends of a link hold one: the **sender** calls
/// [`submit`](WireMemo::submit) with the id list it is about to ship —
/// a hit (list identical to the cached one) means the receiver already
/// knows the ids, so a value-only payload suffices; a miss updates the
/// cache and ships id+value. The **receiver** calls
/// [`store`](WireMemo::store) with the ids it decodes from every
/// id+value payload and [`cached`](WireMemo::cached) to resolve
/// value-only payloads. Because both sides derive their updates from
/// the same payload sequence, the caches stay in lockstep without any
/// extra coordination traffic.
///
/// Invalidation keeps fault plans exact: [`begin_epoch`](WireMemo::begin_epoch)
/// clears everything at each epoch start (checkpoints cut at epoch
/// boundaries, so a resumed run and an uninterrupted run see identical
/// cache states), and [`observe_liveness`](WireMemo::observe_liveness)
/// clears on any alive-set change (crash, adoption, rejoin) since
/// routing — and therefore every id list — changes with it.
#[derive(Debug, Default)]
pub struct WireMemo {
    cache: HashMap<(usize, usize, usize, Channel), Vec<u32>>,
    live: Option<Liveness>,
    stage: Vec<Vec<u32>>,
}

impl WireMemo {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every cached list (call at each epoch start, both
    /// engines).
    pub fn begin_epoch(&mut self) {
        self.cache.clear();
        self.live = None;
    }

    /// Clears every cached list if the alive set changed since the last
    /// observation. Call once per sync round before any submit/store.
    pub fn observe_liveness(&mut self, live: &Liveness) {
        if self.live.as_ref() != Some(live) {
            self.cache.clear();
            self.live = Some(live.clone());
        }
    }

    /// Sender side: decides the layout for the payload `from` is about
    /// to ship `to` on `(layer, channel)`. Returns `true` (hit: ship
    /// value-only) when `ids` matches the cached list; otherwise caches
    /// `ids` and returns `false` (miss: ship id+value).
    pub fn submit(
        &mut self,
        from: usize,
        to: usize,
        layer: usize,
        channel: Channel,
        ids: &[u32],
    ) -> bool {
        let key = (from, to, layer, channel);
        match self.cache.get_mut(&key) {
            Some(cached) if cached.as_slice() == ids => true,
            Some(cached) => {
                cached.clear();
                cached.extend_from_slice(ids);
                false
            }
            None => {
                self.cache.insert(key, ids.to_vec());
                false
            }
        }
    }

    /// Receiver side: records the id list decoded from an id+value
    /// payload so a later value-only payload on the same key can be
    /// resolved.
    pub fn store(&mut self, from: usize, to: usize, layer: usize, channel: Channel, ids: Vec<u32>) {
        self.cache.insert((from, to, layer, channel), ids);
    }

    /// Receiver side: the cached id list for a value-only payload, if
    /// one exists.
    pub fn cached(&self, from: usize, to: usize, layer: usize, channel: Channel) -> Option<&[u32]> {
        self.cache
            .get(&(from, to, layer, channel))
            .map(Vec::as_slice)
    }

    /// Borrow-friendly staging: takes `n` cleared scratch id-lists out
    /// of the memo's pool (callers stage per-destination lists while
    /// iterating structures that also borrow the memo's owner, then
    /// [`submit`](WireMemo::submit) and [`put_stage`](WireMemo::put_stage)
    /// them back).
    pub fn take_stage(&mut self, n: usize) -> Vec<Vec<u32>> {
        let mut out = std::mem::take(&mut self.stage);
        out.resize_with(n, Vec::new);
        out.truncate(n);
        for v in &mut out {
            v.clear();
        }
        out
    }

    /// Returns staging lists taken with [`take_stage`](WireMemo::take_stage)
    /// so steady-state rounds reuse their allocations.
    pub fn put_stage(&mut self, stage: Vec<Vec<u32>>) {
        self.stage = stage;
    }
}

// ---------------------------------------------------------------------------
// Row-change shadows (delta mode)
// ---------------------------------------------------------------------------

/// The sender-side outcome of a [`DeltaShadow::submit`]: which layout a
/// payload must use and what it costs on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaForm {
    /// Shadow miss (first exchange on this key, or the id list
    /// changed): ship a full id+value payload.
    Full,
    /// Shadow hit: ship the changed-row bitmask plus the `changed`
    /// rows whose `f32` bits differ from the shadow
    /// ([`RowEncoder::finish_delta`]).
    Delta {
        /// One bit per staged row, LSB-first within each byte; set
        /// bits mark rows that changed since the last send.
        mask: Vec<u8>,
        /// Number of set bits in `mask`.
        changed: usize,
    },
}

impl DeltaForm {
    /// Payload bytes this form puts on the wire for `n` rows of
    /// dimension `dim`.
    pub fn wire_bytes(&self, n: usize, dim: usize) -> usize {
        match self {
            DeltaForm::Full => n * entry_bytes(dim),
            DeltaForm::Delta { changed, .. } => delta_bytes(dim, n, *changed),
        }
    }
}

/// Per-(sender, receiver, layer, channel) shadow of the last exchanged
/// payload (ids *and* row values) driving [`WireMode::Delta`].
///
/// Both ends of a link hold one: the **sender** calls
/// [`submit`](DeltaShadow::submit) with the ids and values it is about
/// to ship — when the id list matches the shadow, only the rows whose
/// `f32` bits changed need to travel ([`DeltaForm::Delta`]); otherwise
/// the payload ships in full id+value form and replaces the shadow
/// ([`DeltaForm::Full`]). The **receiver** calls
/// [`store`](DeltaShadow::store) on every full payload and
/// [`apply_delta`](DeltaShadow::apply_delta) on every delta payload,
/// reconstructing the unchanged rows bit-exactly from its shadow.
/// Because both sides derive their updates from the same payload
/// sequence, the shadows stay in lockstep without extra coordination
/// traffic.
///
/// Invalidation is identical to [`WireMemo`]:
/// [`begin_epoch`](DeltaShadow::begin_epoch) clears everything at each
/// epoch start and [`observe_liveness`](DeltaShadow::observe_liveness)
/// clears on any alive-set change, so the first post-fault (and
/// post-checkpoint-resume) exchange on every key is always a full
/// payload.
#[derive(Debug, Default)]
pub struct DeltaShadow {
    cache: HashMap<(usize, usize, usize, Channel), (Vec<u32>, Vec<f32>)>,
    live: Option<Liveness>,
    stage_ids: Vec<Vec<u32>>,
    stage_vals: Vec<Vec<f32>>,
}

impl DeltaShadow {
    /// An empty shadow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every shadow entry (call at each epoch start, both
    /// engines).
    pub fn begin_epoch(&mut self) {
        self.cache.clear();
        self.live = None;
    }

    /// Clears every shadow entry if the alive set changed since the
    /// last observation. Call once per sync round before any
    /// submit/store.
    pub fn observe_liveness(&mut self, live: &Liveness) {
        if self.live.as_ref() != Some(live) {
            self.cache.clear();
            self.live = Some(live.clone());
        }
    }

    /// Sender side: decides the layout for the payload `from` is about
    /// to ship `to` on `(layer, channel)` and advances the shadow.
    /// When `ids` matches the shadowed list, returns
    /// [`DeltaForm::Delta`] with a bit set for every row whose `f32`
    /// bits differ from the shadow (updating those shadow rows);
    /// otherwise replaces the whole shadow entry and returns
    /// [`DeltaForm::Full`].
    pub fn submit(
        &mut self,
        from: usize,
        to: usize,
        layer: usize,
        channel: Channel,
        ids: &[u32],
        values: &[f32],
        dim: usize,
    ) -> DeltaForm {
        debug_assert_eq!(values.len(), ids.len() * dim, "values/ids length mismatch");
        let key = (from, to, layer, channel);
        match self.cache.get_mut(&key) {
            Some((cids, cvals)) if cids.as_slice() == ids => {
                let n = ids.len();
                let mut mask = vec![0u8; mask_bytes(n)];
                let mut changed = 0;
                for r in 0..n {
                    let old = &cvals[r * dim..(r + 1) * dim];
                    let new = &values[r * dim..(r + 1) * dim];
                    if old.iter().zip(new).any(|(a, b)| a.to_bits() != b.to_bits()) {
                        mask[r / 8] |= 1 << (r % 8);
                        changed += 1;
                        cvals[r * dim..(r + 1) * dim].copy_from_slice(new);
                    }
                }
                DeltaForm::Delta { mask, changed }
            }
            Some((cids, cvals)) => {
                cids.clear();
                cids.extend_from_slice(ids);
                cvals.clear();
                cvals.extend_from_slice(values);
                DeltaForm::Full
            }
            None => {
                self.cache.insert(key, (ids.to_vec(), values.to_vec()));
                DeltaForm::Full
            }
        }
    }

    /// Receiver side: records the ids and rows decoded from a full
    /// id+value payload so later delta payloads on the same key can be
    /// reconstructed.
    pub fn store(
        &mut self,
        from: usize,
        to: usize,
        layer: usize,
        channel: Channel,
        ids: Vec<u32>,
        values: Vec<f32>,
    ) {
        self.cache.insert((from, to, layer, channel), (ids, values));
    }

    /// Receiver side: reconstructs the full `(ids, rows)` batch from a
    /// delta payload (mask + changed rows) against the shadow,
    /// advancing the shadow to the reconstructed state. Fails with
    /// [`WireError::BadLength`] when the payload does not carry exactly
    /// `mask_bytes(n) + popcount · value_bytes(dim)` bytes.
    ///
    /// A delta payload with no shadow entry is a protocol bug (the
    /// sender only ships deltas after a full exchange on the key), so
    /// that case panics rather than degrading silently.
    pub fn apply_delta(
        &mut self,
        from: usize,
        to: usize,
        layer: usize,
        channel: Channel,
        payload: &Bytes,
        dim: usize,
    ) -> Result<(&[u32], &[f32]), WireError> {
        let key = (from, to, layer, channel);
        let (ids, vals) = self
            .cache
            .get_mut(&key)
            .expect("delta payload with no shadow entry: protocol bug");
        let n = ids.len();
        let mb = mask_bytes(n);
        if payload.len() < mb {
            return Err(WireError::BadLength {
                claimed: mb,
                actual: payload.len(),
            });
        }
        let src = payload.as_slice();
        let mask = &src[..mb];
        let changed: usize = mask.iter().map(|b| b.count_ones() as usize).sum();
        let claimed = delta_bytes(dim, n, changed);
        if payload.len() != claimed {
            return Err(WireError::BadLength {
                claimed,
                actual: payload.len(),
            });
        }
        let mut changed_vals = vec![0.0f32; changed * dim];
        (kernels().decode_rows)(&src[mb..], &mut changed_vals);
        let mut ci = 0;
        for r in 0..n {
            if mask[r / 8] & (1 << (r % 8)) != 0 {
                vals[r * dim..(r + 1) * dim]
                    .copy_from_slice(&changed_vals[ci * dim..(ci + 1) * dim]);
                ci += 1;
            }
        }
        Ok((ids.as_slice(), vals.as_slice()))
    }

    /// Borrow-friendly staging: takes `n` cleared `(ids, values)`
    /// scratch pairs out of the shadow's pool (the sequential engine
    /// stages per-destination batches while iterating structures that
    /// also borrow the shadow's owner, then
    /// [`submit`](DeltaShadow::submit)s and
    /// [`put_stage`](DeltaShadow::put_stage)s them back).
    pub fn take_stage(&mut self, n: usize) -> (Vec<Vec<u32>>, Vec<Vec<f32>>) {
        let mut ids = std::mem::take(&mut self.stage_ids);
        let mut vals = std::mem::take(&mut self.stage_vals);
        ids.resize_with(n, Vec::new);
        ids.truncate(n);
        vals.resize_with(n, Vec::new);
        vals.truncate(n);
        for v in &mut ids {
            v.clear();
        }
        for v in &mut vals {
            v.clear();
        }
        (ids, vals)
    }

    /// Returns staging pairs taken with
    /// [`take_stage`](DeltaShadow::take_stage) so steady-state rounds
    /// reuse their allocations.
    pub fn put_stage(&mut self, ids: Vec<Vec<u32>>, vals: Vec<Vec<f32>>) {
        self.stage_ids = ids;
        self.stage_vals = vals;
    }
}

// ---------------------------------------------------------------------------
// Quantization scratch (quant mode)
// ---------------------------------------------------------------------------

/// Reusable buffers for the simulator's quantize→dequantize replay.
///
/// [`WireMode::Quant`] is stateless on the wire — nothing to
/// invalidate — but the sequential engine must apply the exact lossy
/// transform the threaded engine's payloads apply, on every
/// wire-crossing row. This scratch recycles the code buffer across
/// calls.
#[derive(Debug, Default)]
pub struct QuantScratch {
    scale: [f32; 1],
    offset: [f32; 1],
    codes: Vec<u8>,
}

impl QuantScratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the wire transform to one row in place: quantize to u8
    /// codes, dequantize back. A row that went through this is
    /// bit-identical to the same row decoded from a
    /// [`RowEncoder::finish_quant`] payload.
    pub fn qdq_row(&mut self, row: &mut [f32]) {
        if row.is_empty() {
            return;
        }
        self.codes.resize(row.len(), 0);
        (kernels().quantize_rows)(
            row,
            row.len(),
            &mut self.scale,
            &mut self.offset,
            &mut self.codes,
        );
        (kernels().dequantize_rows)(&self.codes, row.len(), &self.scale, &self.offset, row);
    }
}

// ---------------------------------------------------------------------------
// Per-run wire state
// ---------------------------------------------------------------------------

/// Per-trainer wire-protocol state for the run's [`WireMode`]; both
/// engines thread one of these through every sync round.
#[derive(Debug)]
pub enum WireState {
    /// [`WireMode::IdValue`]: stateless.
    Classic,
    /// [`WireMode::Memo`]: id-list caches.
    Memo(WireMemo),
    /// [`WireMode::Delta`]: last-sent row shadows.
    Delta(DeltaShadow),
    /// [`WireMode::Quant`]: stateless on the wire; scratch for the
    /// simulator's quantize→dequantize replay.
    Quant(QuantScratch),
}

impl WireState {
    /// Fresh state for `mode`.
    pub fn for_mode(mode: WireMode) -> Self {
        match mode {
            WireMode::IdValue => WireState::Classic,
            WireMode::Memo => WireState::Memo(WireMemo::new()),
            WireMode::Delta => WireState::Delta(DeltaShadow::new()),
            WireMode::Quant => WireState::Quant(QuantScratch::new()),
        }
    }

    /// The mode this state drives.
    pub fn mode(&self) -> WireMode {
        match self {
            WireState::Classic => WireMode::IdValue,
            WireState::Memo(_) => WireMode::Memo,
            WireState::Delta(_) => WireMode::Delta,
            WireState::Quant(_) => WireMode::Quant,
        }
    }

    /// Clears stateful caches at an epoch start (no-op for the
    /// stateless modes).
    pub fn begin_epoch(&mut self) {
        match self {
            WireState::Memo(m) => m.begin_epoch(),
            WireState::Delta(d) => d.begin_epoch(),
            WireState::Classic | WireState::Quant(_) => {}
        }
    }

    /// Invalidates stateful caches on any alive-set change (no-op for
    /// the stateless modes). Call once per sync round before any
    /// submit/store.
    pub fn observe_liveness(&mut self, live: &Liveness) {
        match self {
            WireState::Memo(m) => m.observe_liveness(live),
            WireState::Delta(d) => d.observe_liveness(live),
            WireState::Classic | WireState::Quant(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Checksummed frames
// ---------------------------------------------------------------------------

/// Magic number opening every sealed frame (`"GW2V"` little-endian).
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"GW2V");

/// Sealed-frame header size: magic `u32` + payload length `u32` +
/// CRC-32 `u32`, all little-endian.
pub const FRAME_HEADER_BYTES: usize = 12;

/// A received frame that failed validation.
///
/// The threaded engine treats any of these as a corrupted delivery: the
/// receiver NAKs the `(sender, layer)` slot and the sender retransmits
/// from its resend buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than a frame header, the header's length
    /// field disagrees with the actual payload size, or a value-only
    /// payload does not match its cached id list.
    BadLength {
        /// Bytes the header (or cached id list) claims the payload has
        /// (0 if no header fit).
        claimed: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The frame does not open with [`FRAME_MAGIC`].
    BadMagic,
    /// The payload's CRC-32 does not match the header checksum.
    Corrupt {
        /// Checksum carried in the header.
        expected: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadLength { claimed, actual } => {
                write!(
                    f,
                    "frame length mismatch: expected {claimed} payload bytes, got {actual}"
                )
            }
            WireError::BadMagic => write!(f, "frame does not start with GW2V magic"),
            WireError::Corrupt { expected, computed } => {
                write!(
                    f,
                    "payload checksum mismatch: header {expected:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Wraps a payload in a checksummed frame:
/// `[magic u32][payload_len u32][crc32(payload) u32][payload]`.
///
/// The frame's 12-byte overhead is transport armor, not model traffic —
/// comm-volume accounting ([`crate::volume::CommStats`]) keeps counting
/// the bare payload bytes, so sealed and unsealed runs report identical
/// volumes.
pub fn seal_frame(payload: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_BYTES + payload.len());
    buf.put_u32_le(FRAME_MAGIC);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(crc32(payload.as_slice()));
    buf.put_slice(payload.as_slice());
    buf.freeze()
}

/// Validates a sealed frame and returns the payload as a zero-copy slice
/// of `frame`.
///
/// Guarantees: a faultless `seal_frame` → `open_frame` round-trip is the
/// identity on payload bytes, and *any* single-bit corruption of the
/// frame (header or payload) is rejected — CRC-32 detects all single-bit
/// errors, and header fields are cross-checked against the buffer.
pub fn open_frame(frame: &Bytes) -> Result<Bytes, WireError> {
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(WireError::BadLength {
            claimed: 0,
            actual: frame.len(),
        });
    }
    let mut header = frame.slice(0..FRAME_HEADER_BYTES);
    if header.get_u32_le() != FRAME_MAGIC {
        return Err(WireError::BadMagic);
    }
    let claimed = header.get_u32_le() as usize;
    let actual = frame.len() - FRAME_HEADER_BYTES;
    if claimed != actual {
        return Err(WireError::BadLength { claimed, actual });
    }
    let expected = header.get_u32_le();
    let payload = frame.slice(FRAME_HEADER_BYTES..frame.len());
    let computed = crc32(payload.as_slice());
    if computed != expected {
        return Err(WireError::Corrupt { expected, computed });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut enc = RowEncoder::new(3);
        enc.push(7, &[1.0, -2.5, 0.0]);
        enc.push(u32::MAX - 1, &[f32::MIN_POSITIVE, 1e30, -1e-30]);
        assert_eq!(enc.count(), 2);
        assert_eq!(enc.byte_len(), 2 * entry_bytes(3));
        let buf = enc.finish();
        let mut dec = RowDecoder::new(buf, 3);
        assert_eq!(dec.remaining(), 2);
        let (n, r) = dec.next_entry().unwrap();
        assert_eq!(n, 7);
        assert_eq!(r, &[1.0, -2.5, 0.0]);
        let (n, r) = dec.next_entry().unwrap();
        assert_eq!(n, u32::MAX - 1);
        assert_eq!(r, &[f32::MIN_POSITIVE, 1e30, -1e-30]);
        assert!(dec.next_entry().is_none());
    }

    #[test]
    fn soa_layout_pins_byte_positions() {
        let mut enc = RowEncoder::new(2);
        enc.push(7, &[1.0, 2.0]);
        enc.push(9, &[3.0, 4.0]);
        let buf = enc.finish();
        assert_eq!(buf.len(), 2 * entry_bytes(2));
        let b = buf.as_slice();
        // Id region first: one LE u32 per entry, in push order.
        assert_eq!(&b[0..4], &7u32.to_le_bytes());
        assert_eq!(&b[4..8], &9u32.to_le_bytes());
        // Then the value region: rows back to back, in push order.
        assert_eq!(&b[8..12], &1.0f32.to_le_bytes());
        assert_eq!(&b[12..16], &2.0f32.to_le_bytes());
        assert_eq!(&b[16..20], &3.0f32.to_le_bytes());
        assert_eq!(&b[20..24], &4.0f32.to_le_bytes());
        // The value region is byte-identical to the value-only payload.
        assert_eq!(&b[8..], enc.finish_values().as_slice());
    }

    #[test]
    fn empty_buffer() {
        let enc = RowEncoder::new(5);
        assert_eq!(enc.byte_len(), 0);
        let mut dec = RowDecoder::new(enc.finish(), 5);
        assert!(dec.next_entry().is_none());
    }

    #[test]
    fn entry_bytes_formula() {
        assert_eq!(entry_bytes(0), 4);
        assert_eq!(entry_bytes(200), 804);
        assert_eq!(value_bytes(0), 0);
        assert_eq!(value_bytes(200), 800);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn truncated_buffer_rejected() {
        let mut enc = RowEncoder::new(2);
        enc.push(0, &[1.0, 2.0]);
        let buf = enc.finish();
        let _ = RowDecoder::new(buf.slice(0..7), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_rejected() {
        let mut enc = RowEncoder::new(2);
        enc.push(0, &[1.0]);
    }

    #[test]
    fn nan_survives_roundtrip_bitwise() {
        let mut enc = RowEncoder::new(1);
        enc.push(0, &[f32::NAN]);
        let mut dec = RowDecoder::new(enc.finish(), 1);
        let (_, r) = dec.next_entry().unwrap();
        assert!(r[0].is_nan());
    }

    #[test]
    fn value_only_roundtrip_against_cached_ids() {
        let mut enc = RowEncoder::new(2);
        enc.push(5, &[1.5, -2.0]);
        enc.push(9, &[f32::NAN, 0.25]);
        assert_eq!(enc.value_byte_len(), 2 * value_bytes(2));
        assert_eq!(enc.ids(), &[5, 9]);
        // Non-consuming: both layouts come off the same staged batch.
        let full = enc.finish();
        let vo = enc.finish_values();
        assert_eq!(full.len(), 2 * entry_bytes(2));
        assert_eq!(vo.len(), 2 * value_bytes(2));
        let mut dec = ValueDecoder::new(vo, 2, enc.ids()).unwrap();
        let (n, r) = dec.next_entry().unwrap();
        assert_eq!((n, r[0], r[1]), (5, 1.5, -2.0));
        let (n, r) = dec.next_entry().unwrap();
        assert_eq!(n, 9);
        assert!(r[0].is_nan() && r[1] == 0.25);
        assert!(dec.next_entry().is_none());
    }

    #[test]
    fn value_only_length_mismatch_rejected() {
        let mut enc = RowEncoder::new(2);
        enc.push(5, &[1.0, 2.0]);
        let vo = enc.finish_values();
        // Cached list claims two entries; payload has one.
        let err = ValueDecoder::new(vo, 2, &[5, 9]).unwrap_err();
        assert_eq!(
            err,
            WireError::BadLength {
                claimed: 2 * value_bytes(2),
                actual: value_bytes(2)
            }
        );
    }

    #[test]
    fn decode_into_fills_sink_rows() {
        let mut enc = RowEncoder::new(3);
        enc.push(1, &[1.0, 2.0, 3.0]);
        enc.push(3, &[-1.0, f32::NAN, 0.5]);
        let mut store = vec![vec![0.0f32; 3]; 4];
        let mut sink = |node: u32| -> *mut [f32] { store[node as usize].as_mut_slice() };
        RowDecoder::new(enc.finish(), 3).decode_into(&mut sink);
        assert_eq!(store[1], &[1.0, 2.0, 3.0]);
        assert!(store[3][1].is_nan() && store[3][2] == 0.5);
        // Same rows through the value-only path land identically.
        let mut store2 = vec![vec![0.0f32; 3]; 4];
        let mut sink2 = |node: u32| -> *mut [f32] { store2[node as usize].as_mut_slice() };
        ValueDecoder::new(enc.finish_values(), 3, enc.ids())
            .unwrap()
            .decode_into(&mut sink2);
        assert_eq!(store2[1], store[1]);
        assert_eq!(store2[3][0], store[3][0]);
    }

    #[test]
    fn memo_hit_miss_lifecycle() {
        let mut memo = WireMemo::new();
        let live3 = Liveness::all(3);
        memo.observe_liveness(&live3);
        // First submit is a miss; an identical resubmit hits.
        assert!(!memo.submit(0, 1, 0, Channel::Reduce, &[1, 2, 3]));
        assert!(memo.submit(0, 1, 0, Channel::Reduce, &[1, 2, 3]));
        // Different key dimensions miss independently.
        assert!(!memo.submit(0, 1, 1, Channel::Reduce, &[1, 2, 3]));
        assert!(!memo.submit(0, 1, 0, Channel::Broadcast, &[1, 2, 3]));
        assert!(!memo.submit(1, 0, 0, Channel::Reduce, &[1, 2, 3]));
        // A changed list misses and re-caches.
        assert!(!memo.submit(0, 1, 0, Channel::Reduce, &[1, 2]));
        assert!(memo.submit(0, 1, 0, Channel::Reduce, &[1, 2]));
        // Receiver-side store resolves value-only payloads.
        memo.store(2, 0, 0, Channel::Broadcast, vec![7, 8]);
        assert_eq!(memo.cached(2, 0, 0, Channel::Broadcast), Some(&[7, 8][..]));
        assert_eq!(memo.cached(2, 0, 1, Channel::Broadcast), None);
        // Liveness change clears everything …
        let mut live2 = live3.clone();
        live2.mark_dead(2);
        memo.observe_liveness(&live2);
        assert!(!memo.submit(0, 1, 0, Channel::Reduce, &[1, 2]));
        assert_eq!(memo.cached(2, 0, 0, Channel::Broadcast), None);
        // … an unchanged observation does not.
        memo.observe_liveness(&live2);
        assert!(memo.submit(0, 1, 0, Channel::Reduce, &[1, 2]));
        // Epoch start clears too.
        memo.begin_epoch();
        assert!(!memo.submit(0, 1, 0, Channel::Reduce, &[1, 2]));
    }

    #[test]
    fn memo_empty_lists_memoize_like_any_other() {
        let mut memo = WireMemo::new();
        assert!(!memo.submit(0, 1, 0, Channel::Reduce, &[]));
        assert!(memo.submit(0, 1, 0, Channel::Reduce, &[]));
        assert!(!memo.submit(0, 1, 0, Channel::Reduce, &[4]));
        assert!(!memo.submit(0, 1, 0, Channel::Reduce, &[]));
    }

    #[test]
    fn memo_stage_pool_recycles() {
        let mut memo = WireMemo::new();
        let mut stage = memo.take_stage(3);
        assert_eq!(stage.len(), 3);
        stage[1].extend_from_slice(&[1, 2, 3]);
        memo.put_stage(stage);
        let stage = memo.take_stage(2);
        assert_eq!(stage.len(), 2);
        assert!(
            stage.iter().all(Vec::is_empty),
            "stage lists come back cleared"
        );
        memo.put_stage(stage);
        let stage = memo.take_stage(4);
        assert_eq!(stage.len(), 4);
    }

    #[test]
    fn wire_mode_parse_and_label() {
        assert_eq!(WireMode::parse("id-value"), Some(WireMode::IdValue));
        assert_eq!(WireMode::parse("memo"), Some(WireMode::Memo));
        assert_eq!(WireMode::parse("memoized"), Some(WireMode::Memo));
        assert_eq!(WireMode::parse("delta"), Some(WireMode::Delta));
        assert_eq!(WireMode::parse("quant"), Some(WireMode::Quant));
        assert_eq!(WireMode::parse("quantized"), Some(WireMode::Quant));
        assert_eq!(WireMode::parse("zip"), None);
        assert_eq!(WireMode::default(), WireMode::IdValue);
        assert_eq!(WireMode::IdValue.label(), "id-value");
        assert_eq!(WireMode::Memo.label(), "memo");
        assert_eq!(WireMode::Delta.label(), "delta");
        assert_eq!(WireMode::Quant.label(), "quant");
    }

    #[test]
    fn wire_state_for_mode_roundtrips_and_dispatches() {
        for mode in [
            WireMode::IdValue,
            WireMode::Memo,
            WireMode::Delta,
            WireMode::Quant,
        ] {
            let mut st = WireState::for_mode(mode);
            assert_eq!(st.mode(), mode);
            // The stateless arms are no-ops; the stateful arms clear.
            st.begin_epoch();
            st.observe_liveness(&Liveness::all(2));
            assert_eq!(st.mode(), mode);
        }
    }

    #[test]
    fn delta_byte_formulas() {
        assert_eq!(mask_bytes(0), 0);
        assert_eq!(mask_bytes(1), 1);
        assert_eq!(mask_bytes(8), 1);
        assert_eq!(mask_bytes(9), 2);
        // A zero-change delta over n rows costs just the mask …
        assert_eq!(delta_bytes(16, 9, 0), 2);
        // … and even an all-change delta beats classic (mask ≤ ids).
        assert!(delta_bytes(16, 9, 9) < 9 * entry_bytes(16));
        assert_eq!(quant_entry_bytes(16), 28);
        assert!(quant_entry_bytes(3) < entry_bytes(3));
    }

    #[test]
    fn delta_shadow_lifecycle_and_roundtrip() {
        let mut sender = DeltaShadow::new();
        let mut receiver = DeltaShadow::new();
        let dim = 2;
        let ids = [3u32, 7, 9];
        let v1 = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];

        // First exchange: full payload, both ends store.
        let form = sender.submit(0, 1, 0, Channel::Reduce, &ids, &v1, dim);
        assert_eq!(form, DeltaForm::Full);
        assert_eq!(form.wire_bytes(3, dim), 3 * entry_bytes(dim));
        receiver.store(0, 1, 0, Channel::Reduce, ids.to_vec(), v1.to_vec());

        // Second round: only the middle row changes.
        let v2 = [1.0f32, 2.0, 3.5, 4.0, 5.0, 6.0];
        let form = sender.submit(0, 1, 0, Channel::Reduce, &ids, &v2, dim);
        let DeltaForm::Delta { ref mask, changed } = form else {
            panic!("expected delta form on id-list repeat");
        };
        assert_eq!((mask.as_slice(), changed), (&[0b010u8][..], 1));
        assert_eq!(form.wire_bytes(3, dim), delta_bytes(dim, 3, 1));

        // Ship mask + changed rows; receiver reconstructs all rows.
        let mut enc = RowEncoder::new(dim);
        for (i, &node) in ids.iter().enumerate() {
            enc.push(node, &v2[i * dim..(i + 1) * dim]);
        }
        let payload = enc.finish_delta(mask);
        assert_eq!(payload.len(), delta_bytes(dim, 3, 1));
        let (rids, rvals) = receiver
            .apply_delta(0, 1, 0, Channel::Reduce, &payload, dim)
            .unwrap();
        assert_eq!(rids, &ids);
        assert_eq!(rvals, &v2);

        // Third round: nothing changed → mask-only payload, receiver
        // reproduces the same rows from its shadow alone.
        let form = sender.submit(0, 1, 0, Channel::Reduce, &ids, &v2, dim);
        assert_eq!(
            form,
            DeltaForm::Delta {
                mask: vec![0],
                changed: 0
            }
        );
        let DeltaForm::Delta { ref mask, .. } = form else {
            unreachable!()
        };
        let payload = enc.finish_delta(mask);
        assert_eq!(payload.len(), mask_bytes(3));
        let (_, rvals) = receiver
            .apply_delta(0, 1, 0, Channel::Reduce, &payload, dim)
            .unwrap();
        assert_eq!(rvals, &v2);

        // A different id list falls back to full and re-shadows.
        let form = sender.submit(0, 1, 0, Channel::Reduce, &[3, 7], &v2[..4], dim);
        assert_eq!(form, DeltaForm::Full);
    }

    #[test]
    fn delta_shadow_invalidation_matches_memo_rules() {
        let mut shadow = DeltaShadow::new();
        let live3 = Liveness::all(3);
        shadow.observe_liveness(&live3);
        let v = [1.0f32, 2.0];
        assert_eq!(
            shadow.submit(0, 1, 0, Channel::Reduce, &[5], &v, 2),
            DeltaForm::Full
        );
        assert!(matches!(
            shadow.submit(0, 1, 0, Channel::Reduce, &[5], &v, 2),
            DeltaForm::Delta { changed: 0, .. }
        ));
        // Keys are independent per (from, to, layer, channel).
        assert_eq!(
            shadow.submit(0, 1, 1, Channel::Reduce, &[5], &v, 2),
            DeltaForm::Full
        );
        assert_eq!(
            shadow.submit(0, 1, 0, Channel::Broadcast, &[5], &v, 2),
            DeltaForm::Full
        );
        // Liveness change (crash) clears; unchanged observation keeps.
        let mut live2 = live3.clone();
        live2.mark_dead(2);
        shadow.observe_liveness(&live2);
        assert_eq!(
            shadow.submit(0, 1, 0, Channel::Reduce, &[5], &v, 2),
            DeltaForm::Full
        );
        shadow.observe_liveness(&live2);
        assert!(matches!(
            shadow.submit(0, 1, 0, Channel::Reduce, &[5], &v, 2),
            DeltaForm::Delta { .. }
        ));
        // Epoch boundary clears too.
        shadow.begin_epoch();
        assert_eq!(
            shadow.submit(0, 1, 0, Channel::Reduce, &[5], &v, 2),
            DeltaForm::Full
        );
    }

    #[test]
    fn shadow_and_memo_invalidate_when_alive_set_grows_midepoch() {
        // The rejoin=H@E case PR 5 left unpinned: a host coming *back*
        // changes the alive set just like a crash does, and every
        // cached id list / shadow row is stale the moment routing
        // changes. Both caches must flush on the grow transition.
        let mut live = Liveness::all(3);
        live.mark_dead(1);

        let mut memo = WireMemo::new();
        let mut shadow = DeltaShadow::new();
        memo.observe_liveness(&live);
        shadow.observe_liveness(&live);
        assert!(!memo.submit(0, 2, 0, Channel::Reduce, &[4, 5]));
        assert!(memo.submit(0, 2, 0, Channel::Reduce, &[4, 5]));
        let v = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(
            shadow.submit(0, 2, 0, Channel::Reduce, &[4, 5], &v, 2),
            DeltaForm::Full
        );
        assert!(matches!(
            shadow.submit(0, 2, 0, Channel::Reduce, &[4, 5], &v, 2),
            DeltaForm::Delta { changed: 0, .. }
        ));

        // Host 1 rejoins mid-epoch: alive set grows 2 → 3.
        let mut rejoined = live.clone();
        rejoined.mark_alive(1);
        memo.observe_liveness(&rejoined);
        shadow.observe_liveness(&rejoined);
        assert!(
            !memo.submit(0, 2, 0, Channel::Reduce, &[4, 5]),
            "memo must miss after a rejoin grows the alive set"
        );
        assert_eq!(
            shadow.submit(0, 2, 0, Channel::Reduce, &[4, 5], &v, 2),
            DeltaForm::Full,
            "shadow must go full after a rejoin grows the alive set"
        );
    }

    #[test]
    fn corrupted_value_only_frame_rejected_by_crc() {
        // A value-only payload has no ids of its own — corruption can
        // only be caught by the frame CRC (the length still matches the
        // cached list). Pin that the typed Corrupt error fires before
        // any decode against the cache could run.
        let mut enc = RowEncoder::new(2);
        enc.push(5, &[1.5, -2.0]);
        enc.push(9, &[0.25, 4.0]);
        let vo = enc.finish_values();
        let frame = seal_frame(&vo);
        // Flip one payload bit; the frame length stays valid.
        let mut bytes = frame.as_slice().to_vec();
        bytes[FRAME_HEADER_BYTES + 3] ^= 0x10;
        let err = open_frame(&Bytes::from(bytes)).unwrap_err();
        assert!(
            matches!(err, WireError::Corrupt { expected, computed } if expected != computed),
            "payload corruption must surface as WireError::Corrupt, got {err:?}"
        );
        // The pristine frame still decodes against the cached ids.
        let payload = open_frame(&frame).unwrap();
        let mut dec = ValueDecoder::new(payload, 2, enc.ids()).unwrap();
        assert_eq!(dec.next_entry().unwrap().0, 5);
    }

    #[test]
    fn delta_apply_rejects_bad_lengths() {
        let mut shadow = DeltaShadow::new();
        shadow.store(0, 1, 0, Channel::Reduce, vec![1, 2, 3], vec![0.0; 6]);
        // Too short to hold the 3-row mask (mask_bytes(3) == 1).
        let err = shadow
            .apply_delta(0, 1, 0, Channel::Reduce, &Bytes::from(vec![]), 2)
            .unwrap_err();
        assert_eq!(
            err,
            WireError::BadLength {
                claimed: 1,
                actual: 0
            }
        );
        // Mask claims one changed row but carries no row bytes.
        let err = shadow
            .apply_delta(
                0,
                1,
                0,
                Channel::Reduce,
                &Bytes::from(vec![0b001u8]),
                2,
            )
            .unwrap_err();
        assert_eq!(
            err,
            WireError::BadLength {
                claimed: delta_bytes(2, 3, 1),
                actual: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "protocol bug")]
    fn delta_without_shadow_entry_panics() {
        let mut shadow = DeltaShadow::new();
        let _ = shadow.apply_delta(0, 1, 0, Channel::Reduce, &Bytes::from(vec![0u8]), 2);
    }

    #[test]
    fn delta_stage_pool_recycles() {
        let mut shadow = DeltaShadow::new();
        let (mut ids, mut vals) = shadow.take_stage(3);
        assert_eq!((ids.len(), vals.len()), (3, 3));
        ids[1].push(7);
        vals[1].extend_from_slice(&[1.0, 2.0]);
        shadow.put_stage(ids, vals);
        let (ids, vals) = shadow.take_stage(2);
        assert!(ids.iter().all(Vec::is_empty) && vals.iter().all(Vec::is_empty));
        shadow.put_stage(ids, vals);
    }

    #[test]
    fn quant_payload_layout_and_roundtrip() {
        let dim = 5;
        let mut enc = RowEncoder::new(dim);
        enc.push(7, &[0.0, 1.0, 2.0, 3.0, 4.0]);
        enc.push(42, &[-1.0, -1.0, -1.0, -1.0, -1.0]); // flat row
        let buf = enc.finish_quant();
        assert_eq!(buf.len(), 2 * quant_entry_bytes(dim));
        let b = buf.as_slice();
        // SoA: ids, then scales, then offsets, then codes.
        assert_eq!(&b[0..4], &7u32.to_le_bytes());
        assert_eq!(&b[4..8], &42u32.to_le_bytes());
        let scale0 = f32::from_le_bytes(b[8..12].try_into().unwrap());
        let scale1 = f32::from_le_bytes(b[12..16].try_into().unwrap());
        let offset0 = f32::from_le_bytes(b[16..20].try_into().unwrap());
        let offset1 = f32::from_le_bytes(b[20..24].try_into().unwrap());
        assert_eq!(scale0, 4.0 / 255.0);
        assert_eq!(offset0, 0.0);
        // Flat rows pin scale 0 with the value in the offset.
        assert_eq!((scale1, offset1), (0.0, -1.0));
        // Codes: row 0 spans the grid, row 1 is all zeros.
        assert_eq!(&b[24 + 5..24 + 10], &[0, 0, 0, 0, 0]);
        assert_eq!(b[24], 0);
        assert_eq!(b[24 + 4], 255);

        let mut dec = QuantDecoder::new(buf, dim).unwrap();
        assert_eq!(dec.remaining(), 2);
        let (n, row) = dec.next_entry().unwrap();
        assert_eq!(n, 7);
        // Reconstruction error is bounded by half a grid step per value.
        for (got, want) in row.iter().zip([0.0, 1.0, 2.0, 3.0, 4.0]) {
            assert!((got - want).abs() <= scale0 * 0.5 + 1e-6);
        }
        let (n, row) = dec.next_entry().unwrap();
        assert_eq!(n, 42);
        assert_eq!(row, &[-1.0; 5]);
        assert!(dec.next_entry().is_none());
    }

    #[test]
    fn quant_decoder_matches_qdq_row_bitwise() {
        // The simulator replays the transform with QuantScratch; the
        // threaded engine decodes real payloads. Both must agree
        // bit-for-bit or engine parity breaks.
        let dim = 7;
        let rows = [
            [0.013f32, -4.2, 3.3, 0.0, -0.0, 17.25, -9.5],
            [1e-8f32, 2e-8, 3e-8, -1e-8, 0.0, 5e-8, 4e-8],
        ];
        let mut enc = RowEncoder::new(dim);
        for (i, row) in rows.iter().enumerate() {
            enc.push(i as u32, row);
        }
        let mut dec = QuantDecoder::new(enc.finish_quant(), dim).unwrap();
        let mut scratch = QuantScratch::new();
        for row in &rows {
            let mut replay = *row;
            scratch.qdq_row(&mut replay);
            let (_, decoded) = dec.next_entry().unwrap();
            for (a, b) in decoded.iter().zip(replay) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn quant_decoder_rejects_ragged_buffer() {
        let mut enc = RowEncoder::new(3);
        enc.push(0, &[1.0, 2.0, 3.0]);
        let buf = enc.finish_quant();
        let err = QuantDecoder::new(buf.slice(0..buf.len() - 1), 3).unwrap_err();
        assert!(matches!(err, WireError::BadLength { .. }));
    }

    #[test]
    fn quant_decode_into_fills_sink_rows() {
        let mut enc = RowEncoder::new(2);
        enc.push(1, &[1.0, 3.0]);
        enc.push(3, &[-2.0, 2.0]);
        let mut store = vec![vec![0.0f32; 2]; 4];
        let mut sink = |node: u32| -> *mut [f32] { store[node as usize].as_mut_slice() };
        QuantDecoder::new(enc.finish_quant(), 2)
            .unwrap()
            .decode_into(&mut sink);
        let mut expect = [1.0f32, 3.0];
        QuantScratch::new().qdq_row(&mut expect);
        assert_eq!(store[1], &expect);
    }

    fn sample_payload() -> Bytes {
        let mut enc = RowEncoder::new(3);
        enc.push(7, &[1.0, -2.5, f32::NAN]);
        enc.push(42, &[0.0, -0.0, 1e-30]);
        enc.finish()
    }

    #[test]
    fn frame_roundtrip_is_identity_on_payload() {
        let payload = sample_payload();
        let frame = seal_frame(&payload);
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload.len());
        let opened = open_frame(&frame).unwrap();
        assert_eq!(opened.as_slice(), payload.as_slice());
    }

    #[test]
    fn empty_payload_frames_fine() {
        let payload = RowEncoder::new(4).finish();
        let opened = open_frame(&seal_frame(&payload)).unwrap();
        assert!(opened.is_empty());
    }

    #[test]
    fn every_single_bit_flip_detected() {
        let frame = seal_frame(&sample_payload());
        for bit in 0..frame.len() * 8 {
            let mut bytes = frame.as_slice().to_vec();
            bytes[bit / 8] ^= 1 << (bit % 8);
            assert!(
                open_frame(&Bytes::from(bytes)).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn truncated_and_garbage_frames_rejected() {
        let frame = seal_frame(&sample_payload());
        assert_eq!(
            open_frame(&frame.slice(0..4)).unwrap_err(),
            WireError::BadLength {
                claimed: 0,
                actual: 4
            }
        );
        assert!(matches!(
            open_frame(&frame.slice(0..frame.len() - 1)),
            Err(WireError::BadLength { .. })
        ));
        assert_eq!(
            open_frame(&Bytes::from(vec![0xAB; 32])).unwrap_err(),
            WireError::BadMagic
        );
    }
}
