//! The distributed GraphWord2Vec engine — Algorithm 1 of the paper.
//!
//! ```text
//! procedure GraphWord2Vec(Corpus C, epochs R, sync rounds S, lr α):
//!   build vocabulary V from C            (done upstream, gw2v-corpus)
//!   read partition h of C as worklist WL (contiguous, token-balanced)
//!   build graph G from V                 (model replicas: 2 labels/node)
//!   for epoch r in 1..R:
//!     for sync round s in 1..S:
//!       Compute(WL_s, α, G)              (SGNS operator on chunk s)
//!       Synchronize(G)                   (Gluon reduce+broadcast, §4.3)
//!     decay α
//! ```
//!
//! Hosts are simulated deterministically in id order within one OS
//! thread (see DESIGN.md §1/§3 — this reproduction machine has one
//! core); each host's compute phase is wall-clock timed individually, so
//! per-round *virtual* time is `max_h(compute_h) + cost_model(volume)`,
//! which is exactly what a BSP cluster would experience. The threaded
//! engine in `gw2v-gluon` demonstrates the concurrent implementation of
//! the same protocol.
//!
//! For [`SyncPlan::PullModel`] the engine runs the paper's *inspection*
//! phase: after computing round `s` it replays round `s+1`'s edge
//! generation against a [`RecordingStore`] with a cloned RNG — producing
//! the exact per-host access sets the broadcast needs (§4.4).
//!
//! # Fault tolerance (DESIGN.md §3d)
//!
//! A [`FaultPlan`] injects faults into the simulator's *virtual* clocks
//! and schedule: scheduled crashes kill a host at a round boundary (its
//! partition is adopted by the next alive host, continuing on the
//! deterministic recovery RNG stream), stragglers add virtual seconds to
//! a host's compute clock, and drop/flip probabilities replay the exact
//! per-message coins the threaded transport consults, charging the
//! retransmissions it would perform as extra virtual communication time.
//! With the inert plan (the default) every fault path is skipped and the
//! run is bit-identical to a build without the fault subsystem.
//! Epoch-boundary [`Checkpoint`]s capture enough state — replicas, RNG
//! streams, schedule positions, liveness, accumulated clocks — to resume
//! bit-identically after a kill.

use crate::checkpoint::Checkpoint;
use crate::model::Word2VecModel;
use crate::params::Hyperparams;
use crate::schedule::LrSchedule;
use crate::setup::{TrainSetup, HOST_RNG_BASE, RECOVERY_RNG_BASE};
use crate::sgns::{RecordingStore, ReplicaStore};
use crate::trainer_hogbatch::{train_sentence_mode, MinibatchScratch, SgnsMode};
use gw2v_combiner::CombinerKind;
use gw2v_corpus::shard::Corpus;
use gw2v_corpus::vocab::Vocabulary;
use gw2v_faults::{counters, FaultPlan, OnPartition};
use gw2v_gluon::cost::CostModel;
use gw2v_gluon::liveness::Liveness;
use gw2v_gluon::plan::{AccessSets, SyncConfig, SyncPlan};
use gw2v_gluon::sync::{assemble_canonical_live, sync_round_degraded, SyncScratch};
use gw2v_gluon::threaded::REJOIN_CONTROL_BYTES;
use gw2v_gluon::volume::{CommStats, RoundVolume};
use gw2v_gluon::wire::{entry_bytes, WireMode, WireState, FRAME_HEADER_BYTES};
use gw2v_gluon::ModelReplica;
use gw2v_util::rng::{SplitMix64, Xoshiro256};
use std::path::PathBuf;
use std::time::Instant;

/// Sampled positive pairs per epoch-end loss probe (`core.loss` gauge).
const LOSS_PROBE_PAIRS: usize = 256;

/// Retry bound for the virtual retransmission model, mirroring the
/// threaded engine's [`gw2v_gluon::ClusterConfig`] default `max_retries`.
const VIRTUAL_MAX_RETRIES: u32 = 200;

/// Distributed-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Number of (simulated) hosts.
    pub n_hosts: usize,
    /// Synchronization rounds per epoch (the paper's key new
    /// hyperparameter, §4.1/§5.4).
    pub sync_rounds: usize,
    /// Communication plan (§4.4).
    pub plan: SyncPlan,
    /// Reduction operator (§3).
    pub combiner: CombinerKind,
    /// Network model for virtual communication time.
    pub cost: CostModel,
    /// Wire payload mode (§4.4 / Table 3): classic id+value entries,
    /// the id-memoized value-only format, shadow-diffed delta payloads,
    /// or u8-quantized rows. See docs/WIRE.md.
    pub wire: WireMode,
    /// SGNS inner loop: classic per-pair or shared-negative minibatch
    /// (HogBatch). Part of the checkpoint fingerprint — the RNG streams
    /// differ between modes, so a resume must match.
    pub sgns: SgnsMode,
    /// Policy for fault-plan network partitions: `Stall` rides out the
    /// NAK loop bit-identically to faultless runs; `Degrade` marks the
    /// dormant side unreachable and keeps training on the reachable side
    /// (deterministic crash/rejoin conversion, see
    /// [`gw2v_faults::FaultPlan::degrade_partitions`]).
    pub on_partition: OnPartition,
    /// Staleness bound for `Degrade`: a partition spanning more than
    /// this many rounds falls back to `Stall` (the dormant side would
    /// drift too far to heal inside the bound).
    pub max_stale_rounds: usize,
}

impl DistConfig {
    /// The paper's rule of thumb: "the synchronization frequency needs to
    /// be increased (roughly) linearly with the number of hosts"; Figure
    /// 8's labels are 1(1), 2(3), 4(6), 8(12), 16(24), 32(48), 64(96) —
    /// i.e. `S = 1.5·H` (and 1 for a single host).
    pub fn paper_sync_rounds(n_hosts: usize) -> usize {
        if n_hosts <= 1 {
            1
        } else {
            (3 * n_hosts) / 2
        }
    }

    /// Paper-default configuration for `n_hosts`: RepModel-Opt + Model
    /// Combiner, InfiniBand cost model, linear sync-frequency rule.
    pub fn paper_default(n_hosts: usize) -> Self {
        Self {
            n_hosts,
            sync_rounds: Self::paper_sync_rounds(n_hosts),
            plan: SyncPlan::RepModelOpt,
            combiner: CombinerKind::ModelCombiner,
            cost: CostModel::infiniband_56g(),
            wire: WireMode::IdValue,
            sgns: SgnsMode::PerPair,
            on_partition: OnPartition::Stall,
            max_stale_rounds: 8,
        }
    }
}

/// Passed to the per-epoch callback alongside the canonical model.
#[derive(Clone, Copy, Debug)]
pub struct EpochSnapshot {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Virtual time elapsed so far (compute + modeled communication).
    pub virtual_time: f64,
}

/// Everything a distributed run produces.
#[derive(Debug)]
pub struct TrainResult {
    /// The trained canonical model.
    pub model: Word2VecModel,
    /// Communication counters for the whole run.
    pub stats: CommStats,
    /// Virtual computation time: Σ_rounds max_h(compute_h), including
    /// PullModel inspection overhead.
    pub compute_time: f64,
    /// Virtual communication time: Σ_rounds cost_model(volume).
    pub comm_time: f64,
    /// Actual wall-clock time of the whole simulation.
    pub wall_time: f64,
    /// Positive pairs trained across all hosts.
    pub pairs_trained: u64,
    /// True when the run was stopped early by the fault plan's `kill`
    /// directive (after checkpointing that epoch).
    pub killed: bool,
    /// The epoch this run started at, when it resumed from a checkpoint.
    pub resumed_from: Option<usize>,
}

impl TrainResult {
    /// Total virtual execution time (what the paper's Figures 8–9 plot).
    pub fn virtual_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }
}

/// The distributed trainer.
pub struct DistributedTrainer {
    /// Hyperparameters.
    pub params: Hyperparams,
    /// Cluster configuration.
    pub config: DistConfig,
    faults: FaultPlan,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
}

impl DistributedTrainer {
    /// Creates a trainer.
    pub fn new(params: Hyperparams, config: DistConfig) -> Self {
        assert!(config.n_hosts > 0);
        assert!(config.sync_rounds > 0);
        Self {
            params,
            config,
            faults: FaultPlan::none(),
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
        }
    }

    /// Installs a fault plan. The inert plan (the default) leaves every
    /// fault path disabled and the run bit-identical to an unfaulted one.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Enables epoch-boundary checkpointing into `dir`, writing every
    /// `every_epochs` epochs (and always at the final epoch and before a
    /// planned kill).
    pub fn with_checkpointing(mut self, dir: impl Into<PathBuf>, every_epochs: usize) -> Self {
        assert!(every_epochs > 0, "checkpoint interval must be positive");
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = every_epochs;
        self
    }

    /// When enabled, training resumes from the newest checkpoint in the
    /// checkpointing directory (if one exists and matches this run's
    /// fingerprint), continuing bit-identically to the run that wrote it.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Trains and returns the result.
    pub fn train(&self, corpus: &Corpus, vocab: &Vocabulary) -> TrainResult {
        self.train_with_callback(corpus, vocab, |_, _| {})
    }

    /// Trains, invoking `on_epoch(&snapshot, &canonical_model)` after the
    /// synchronization that closes each epoch.
    pub fn train_with_callback(
        &self,
        corpus: &Corpus,
        vocab: &Vocabulary,
        mut on_epoch: impl FnMut(&EpochSnapshot, &Word2VecModel),
    ) -> TrainResult {
        let p = &self.params;
        let cfg = &self.config;
        // Degrade mode rewrites qualifying partition specs into
        // deterministic crash + rejoin pairs for the dormant side before
        // training starts; everything downstream (liveness, adoption,
        // rejoin state transfer) then runs the established crash
        // machinery unchanged. Non-qualifying specs (duration beyond the
        // staleness bound) stay in the plan and stall as usual.
        let degraded_plan;
        let plan = if cfg.on_partition == OnPartition::Degrade {
            let (eff, converted) = self
                .faults
                .degrade_partitions(cfg.max_stale_rounds, cfg.sync_rounds);
            for spec in &converted {
                counters::bump(counters::INJECTED_PARTITION);
                counters::bump(counters::DETECTED_PARTITION);
                if spec.to_round.div_ceil(cfg.sync_rounds.max(1)) < p.epochs {
                    // The dormant side's scheduled rejoin lands inside
                    // the run: the partition heals deterministically.
                    counters::bump(counters::RECOVERED_HEAL);
                }
            }
            degraded_plan = eff;
            &degraded_plan
        } else {
            &self.faults
        };
        let faults_on = !plan.is_inert();
        let h_count = cfg.n_hosts;
        let s_count = cfg.sync_rounds;
        let n_words = vocab.len();
        let wall_start = Instant::now();

        let setup = TrainSetup::new(vocab, p);
        let ctx = setup.ctx(p);
        let init = Word2VecModel::init(n_words, p.dim, p.seed);
        let mut replicas: Vec<ModelReplica> = (0..h_count)
            .map(|_| ModelReplica::new(vec![init.syn0.clone(), init.syn1neg.clone()]))
            .collect();
        let root = SplitMix64::new(p.seed);
        let mut rngs: Vec<Xoshiro256> = (0..h_count)
            .map(|h| Xoshiro256::new(root.derive(HOST_RNG_BASE + h as u64)))
            .collect();
        let schedule = LrSchedule::new(
            p.alpha,
            p.min_alpha_frac,
            corpus.total_tokens() as u64,
            p.epochs,
        );
        let shards: Vec<_> = (0..h_count).map(|h| corpus.partition(h, h_count)).collect();
        let sync_cfg = SyncConfig {
            plan: cfg.plan,
            combiner: cfg.combiner,
        };

        let mut stats = CommStats::default();
        let mut compute_time = 0.0f64;
        let mut comm_time = 0.0f64;
        let mut pairs_trained = 0u64;
        let mut processed = vec![0u64; h_count];
        let mut scratch = MinibatchScratch::new();
        let mut live = Liveness::all(h_count);
        // Adoption map for dead partitions: `adopters[d]` is the survivor
        // currently working host d's shard. A (re)assignment — first
        // adoption, or re-adoption after the adopter itself dies —
        // restarts d's worklist RNG on the deterministic recovery stream;
        // the threaded engine applies the identical rule, which keeps
        // degraded runs bit-comparable across engines.
        let mut adopters: Vec<Option<usize>> = vec![None; h_count];
        let fingerprint = Checkpoint::fingerprint_of(p, cfg);
        let mut start_epoch = 0usize;
        let mut resumed_from = None;

        if self.resume {
            let dir = self
                .checkpoint_dir
                .as_ref()
                .expect("resume requires a checkpoint directory");
            let latest = Checkpoint::latest_in(dir)
                .unwrap_or_else(|e| panic!("scanning checkpoint dir: {e}"));
            if let Some(path) = latest {
                let ckpt = Checkpoint::load(&path)
                    .unwrap_or_else(|e| panic!("loading {}: {e}", path.display()));
                assert_eq!(
                    ckpt.fingerprint,
                    fingerprint,
                    "checkpoint {} was written by a run with different \
                     hyperparameters or cluster configuration",
                    path.display()
                );
                replicas = ckpt
                    .layers
                    .iter()
                    .map(|layers| ModelReplica::new(layers.clone()))
                    .collect();
                for (rng, state) in rngs.iter_mut().zip(&ckpt.rng_states) {
                    *rng = Xoshiro256::from_state(*state);
                }
                processed.copy_from_slice(&ckpt.processed);
                for (h, &alive) in ckpt.alive.iter().enumerate() {
                    if !alive {
                        live.mark_dead(h);
                    }
                }
                for (d, adopter) in adopters.iter_mut().enumerate() {
                    if !live.is_alive(d) {
                        *adopter = live.adopter_of(d);
                    }
                }
                stats = ckpt.stats;
                compute_time = ckpt.compute_time;
                comm_time = ckpt.comm_time;
                pairs_trained = ckpt.pairs_trained;
                start_epoch = ckpt.epoch + 1;
                resumed_from = Some(start_epoch);
                counters::bump(counters::RECOVERED_RESUME);
            }
        }

        // Cached instrument handles: one registry lookup for the whole
        // run, then per-round recording is a relaxed atomic each. All of
        // this only *reads* the computation (never the RNG streams or the
        // model), so enabling metrics cannot change what gets trained —
        // pinned by tests/obs_overhead.rs.
        let obs_on = gw2v_obs::enabled();
        let pairs_ctr = obs_on.then(|| gw2v_obs::counter("core.pairs"));
        let compute_hist = obs_on.then(|| gw2v_obs::histogram("core.host_compute_ns"));
        let lr_gauge = obs_on.then(|| gw2v_obs::gauge("core.lr"));
        // One sync scratch for the whole run: after the first round the
        // reduce/broadcast path recycles its slab and buffers instead of
        // reallocating per round.
        let mut sync_scratch = SyncScratch::new();
        // Per-run wire-protocol state (memo caches / delta shadows /
        // quant scratch): epoch-scoped, cleared below at every epoch start
        // so checkpoint-resumed runs (which cut at epoch boundaries) make
        // identical payload-form decisions.
        let mut wire = WireState::for_mode(cfg.wire);
        let mut killed = false;

        for epoch in start_epoch..p.epochs {
            wire.begin_epoch();
            // ---- Epoch-boundary re-admission (rejoin=H@E). ----
            if faults_on && !plan.rejoins.is_empty() {
                let mut someone_rejoined = false;
                for d in 0..h_count {
                    if live.is_alive(d) || plan.rejoin_epoch(d) != Some(epoch) {
                        continue;
                    }
                    // The adopter streams its full replica back; the
                    // rejoiner resumes its worklist on the recovery
                    // stream it was being carried on (`rngs[d]` holds
                    // it), keeping the round bit-identical to a run
                    // where the ward had never changed hands.
                    let a = adopters[d].take().expect("dead host has an adopter");
                    replicas[d] = ModelReplica::new(replicas[a].layers.clone());
                    live.mark_alive(d);
                    counters::bump(counters::RECOVERED_REJOIN);
                    let bytes: u64 = replicas[d]
                        .layers
                        .iter()
                        .map(|l| l.rows() as u64 * entry_bytes(l.dim()) as u64)
                        .sum::<u64>()
                        + REJOIN_CONTROL_BYTES;
                    gw2v_obs::add("gluon.state_transfer_bytes", bytes);
                    someone_rejoined = true;
                }
                // A rejoin can change effective masters, so re-evaluate
                // the adoption map exactly like a death does: a migrated
                // ward restarts on a fresh recovery stream (its schedule
                // position survives in `processed`, which is RNG-free).
                if someone_rejoined {
                    for d in 0..h_count {
                        if live.is_alive(d) {
                            continue;
                        }
                        let a = live.adopter_of(d).expect("at least one survivor");
                        if adopters[d] != Some(a) {
                            adopters[d] = Some(a);
                            rngs[d] = Xoshiro256::new(root.derive(RECOVERY_RNG_BASE + d as u64));
                            counters::bump(counters::RECOVERED_ADOPT);
                        }
                    }
                }
            }
            for s in 0..s_count {
                let g = epoch * s_count + s;
                let mut round_span = gw2v_obs::span("core.round").epoch(epoch).round(g);
                let pairs_before = pairs_trained;

                // ---- Scheduled crashes strike at the round boundary. ----
                if faults_on {
                    let mut someone_died = false;
                    for h in 0..h_count {
                        if live.is_alive(h) && plan.crash_round(h) == Some(g) {
                            counters::bump(counters::INJECTED_CRASH);
                            live.mark_dead(h);
                            // The simulator notices instantly; the threaded
                            // engine spins on its liveness registry for the
                            // same effect.
                            counters::bump(counters::DETECTED_CRASH);
                            someone_died = true;
                        }
                    }
                    if someone_died {
                        for d in 0..h_count {
                            if live.is_alive(d) {
                                continue;
                            }
                            let a = live.adopter_of(d).expect("at least one survivor");
                            if adopters[d] != Some(a) {
                                adopters[d] = Some(a);
                                rngs[d] =
                                    Xoshiro256::new(root.derive(RECOVERY_RNG_BASE + d as u64));
                                counters::bump(counters::RECOVERED_ADOPT);
                            }
                        }
                    }
                }

                // ---- Compute phase (each host timed individually). ----
                let mut round_compute = vec![0.0f64; h_count];
                for h in 0..h_count {
                    if !live.is_alive(h) {
                        continue;
                    }
                    let chunk = shards[h].round_chunk(s, s_count);
                    let t0 = Instant::now();
                    for sentence in chunk.sentences() {
                        let alpha = schedule.alpha_for_host(processed[h], h_count);
                        let mut store = ReplicaStore {
                            replica: &mut replicas[h],
                        };
                        pairs_trained += train_sentence_mode(
                            cfg.sgns,
                            &mut store,
                            sentence,
                            alpha,
                            &ctx,
                            &mut rngs[h],
                            &mut scratch,
                        );
                        processed[h] += sentence.len() as u64;
                    }
                    round_compute[h] = t0.elapsed().as_secs_f64();
                    if faults_on {
                        if let Some(delay) = plan.straggler_delay(h, g) {
                            counters::bump(counters::INJECTED_STRAGGLE);
                            // Virtual-clock injection: the barrier (the max
                            // below) waits for the straggler.
                            round_compute[h] += delay;
                        }
                    }
                }

                // ---- Adopted partitions: dead hosts' chunks, trained by
                // their adopters on the adopters' replicas. ----
                if faults_on {
                    for d in 0..h_count {
                        if live.is_alive(d) {
                            continue;
                        }
                        let a = adopters[d].expect("dead host has an adopter");
                        let chunk = shards[d].round_chunk(s, s_count);
                        let t0 = Instant::now();
                        for sentence in chunk.sentences() {
                            let alpha = schedule.alpha_for_host(processed[d], h_count);
                            let mut store = ReplicaStore {
                                replica: &mut replicas[a],
                            };
                            pairs_trained += train_sentence_mode(
                                cfg.sgns,
                                &mut store,
                                sentence,
                                alpha,
                                &ctx,
                                &mut rngs[d],
                                &mut scratch,
                            );
                            processed[d] += sentence.len() as u64;
                        }
                        round_compute[a] += t0.elapsed().as_secs_f64();
                    }
                }

                // ---- PullModel inspection of the *next* round (§4.4). ----
                let access = if cfg.plan == SyncPlan::PullModel {
                    let next = if s + 1 < s_count {
                        Some(s + 1)
                    } else if epoch + 1 < p.epochs {
                        Some(0)
                    } else {
                        None
                    };
                    let mut sets = AccessSets::new(h_count, 2, n_words);
                    if let Some(next_s) = next {
                        for h in 0..h_count {
                            if !live.is_alive(h) {
                                continue;
                            }
                            let chunk = shards[h].round_chunk(next_s, s_count);
                            let t0 = Instant::now();
                            // Clone: replaying must not advance the real stream.
                            let mut probe_rng = rngs[h];
                            let mut recorder = RecordingStore::new(n_words, p.dim);
                            for sentence in chunk.sentences() {
                                train_sentence_mode(
                                    cfg.sgns,
                                    &mut recorder,
                                    sentence,
                                    0.0,
                                    &ctx,
                                    &mut probe_rng,
                                    &mut scratch,
                                );
                            }
                            // An adopter also touches its wards' chunks next
                            // round; fold those accesses into its sets.
                            for d in 0..h_count {
                                if live.is_alive(d) || adopters[d] != Some(h) {
                                    continue;
                                }
                                let ward_chunk = shards[d].round_chunk(next_s, s_count);
                                let mut ward_rng = rngs[d];
                                for sentence in ward_chunk.sentences() {
                                    train_sentence_mode(
                                        cfg.sgns,
                                        &mut recorder,
                                        sentence,
                                        0.0,
                                        &ctx,
                                        &mut ward_rng,
                                        &mut scratch,
                                    );
                                }
                            }
                            *sets.get_mut(h, 0) = recorder.syn0_access;
                            *sets.get_mut(h, 1) = recorder.syn1_access;
                            // Inspection is real per-host work: charge it.
                            round_compute[h] += t0.elapsed().as_secs_f64();
                        }
                    }
                    Some(sets)
                } else {
                    None
                };

                // ---- Synchronize (reduce + broadcast). ----
                let volume = sync_round_degraded(
                    &mut replicas,
                    &sync_cfg,
                    access.as_ref(),
                    &mut stats,
                    &mut sync_scratch,
                    &live,
                    &mut wire,
                );
                let round_comp = round_compute.iter().cloned().fold(0.0, f64::max);
                let mut round_comm = cfg.cost.round_time(&volume);
                if faults_on
                    && (plan.drop_p > 0.0
                        || plan.flip_p > 0.0
                        || plan.dup_p > 0.0
                        || plan.reorder_p > 0.0
                        || plan.partition_active(g))
                {
                    round_comm += virtual_retransmission_time(plan, g, &live, &volume, &cfg.cost);
                    round_comm += cfg.cost.partition_stall_time(plan, &live, g);
                }
                compute_time += round_comp;
                comm_time += round_comm;

                if obs_on {
                    if let Some(c) = &pairs_ctr {
                        c.add(pairs_trained - pairs_before);
                    }
                    if let Some(h) = &compute_hist {
                        for &t in &round_compute {
                            h.observe_secs(t);
                        }
                    }
                    if let Some(g) = &lr_gauge {
                        g.set(schedule.alpha_for_host(processed[0], h_count) as f64);
                    }
                    gw2v_obs::add("core.compute_ns", (round_comp * 1e9) as u64);
                    gw2v_obs::add("core.comm_virtual_ns", (round_comm * 1e9) as u64);
                    round_span.field("pairs", (pairs_trained - pairs_before) as f64);
                    round_span.field("compute_max_s", round_comp);
                    round_span.field("comm_s", round_comm);
                    round_span.field("bytes", volume.total_bytes() as f64);
                    round_span.virtual_secs(round_comp + round_comm);
                }
                drop(round_span);
            }
            let layers = assemble_canonical_live(&replicas, &live);
            let mut it = layers.into_iter();
            let canonical =
                Word2VecModel::from_layers(it.next().expect("syn0"), it.next().expect("syn1neg"));
            if obs_on {
                // Read-only loss probe on the canonical model, outside any
                // timed section and on its own RNG stream — the training
                // streams never see it.
                let loss = crate::loss::estimate_loss(
                    &canonical,
                    corpus,
                    &setup,
                    p.window,
                    p.negative,
                    LOSS_PROBE_PAIRS,
                    p.seed,
                );
                gw2v_obs::gauge_set("core.loss", loss);
                let mut ev = gw2v_obs::TraceEvent::new("core.epoch");
                ev.epoch = Some(epoch as u64);
                ev.virtual_s = Some(compute_time + comm_time);
                ev.fields.push(("loss".to_owned(), loss));
                gw2v_obs::event(ev);
            }
            let snap = EpochSnapshot {
                epoch,
                virtual_time: compute_time + comm_time,
            };
            on_epoch(&snap, &canonical);

            // ---- Epoch-boundary checkpoint + planned kill. ----
            let kill_here = faults_on && plan.kill_after_epoch == Some(epoch);
            if let Some(dir) = &self.checkpoint_dir {
                if (epoch + 1) % self.checkpoint_every == 0 || epoch + 1 == p.epochs || kill_here {
                    let ckpt = Checkpoint {
                        fingerprint,
                        epoch,
                        pairs_trained,
                        compute_time,
                        comm_time,
                        processed: processed.clone(),
                        alive: (0..h_count).map(|h| live.is_alive(h)).collect(),
                        rng_states: rngs.iter().map(Xoshiro256::state).collect(),
                        stats,
                        layers: replicas.iter().map(|r| r.layers.clone()).collect(),
                    };
                    ckpt.save_in(dir)
                        .unwrap_or_else(|e| panic!("writing checkpoint: {e}"));
                }
            }
            if kill_here {
                counters::bump(counters::INJECTED_KILL);
                killed = true;
                break;
            }
        }

        let layers = assemble_canonical_live(&replicas, &live);
        let mut it = layers.into_iter();
        let model =
            Word2VecModel::from_layers(it.next().expect("syn0"), it.next().expect("syn1neg"));
        let wall_time = wall_start.elapsed().as_secs_f64();
        if obs_on {
            gw2v_obs::gauge_set("core.compute_s", compute_time);
            gw2v_obs::gauge_set("core.comm_virtual_s", comm_time);
            gw2v_obs::gauge_set("core.wall_s", wall_time);
            if wall_time > 0.0 {
                gw2v_obs::gauge_set("core.pairs_per_sec", pairs_trained as f64 / wall_time);
            }
            gw2v_obs::add("core.epochs", p.epochs as u64);
            gw2v_obs::add(
                "core.negatives",
                pairs_trained.saturating_mul(p.negative as u64),
            );
        }
        TrainResult {
            model,
            stats,
            compute_time,
            comm_time,
            wall_time,
            pairs_trained,
            killed,
            resumed_from,
        }
    }
}

/// Models the transport retransmissions the threaded engine performs for
/// real: replays the per-message drop/flip coins for the round's two
/// phases (the same coins the threaded transport consults, so both
/// engines inject the same faults) and charges the resends at the
/// round's average message size under the α–β cost model. Each simulated
/// fault is also counted through the observability registry.
fn virtual_retransmission_time(
    plan: &FaultPlan,
    global_round: usize,
    live: &Liveness,
    volume: &RoundVolume,
    cost: &CostModel,
) -> f64 {
    let h_count = live.n_hosts();
    let n_layers = 2usize;
    let mut extra_msgs = 0u64;
    for phase in 0..2u64 {
        // The threaded engine's per-phase sequence numbers: round g runs
        // phases 2g+1 (reduce) and 2g+2 (broadcast).
        let seq = 2 * global_round as u64 + 1 + phase;
        for from in 0..h_count {
            if !live.is_alive(from) {
                continue;
            }
            for to in 0..h_count {
                if to == from || !live.is_alive(to) {
                    continue;
                }
                for layer in 0..n_layers {
                    // Replay the reorder coin: a deferred send changes
                    // per-channel delivery order, not bytes or time.
                    if plan.should_reorder(from, to, layer, seq) {
                        counters::bump(counters::INJECTED_REORDER);
                    }
                    let mut attempt = 0u32;
                    while attempt <= VIRTUAL_MAX_RETRIES {
                        if plan.partition_blocked(from, to, global_round, attempt) {
                            // Stall-mode partition withholds the leading
                            // attempts; the NAK loop heals the channel.
                            counters::bump(counters::INJECTED_PARTITION);
                            counters::bump(counters::DETECTED_TIMEOUT);
                        } else if plan.should_drop(from, to, layer, seq, attempt) {
                            counters::bump(counters::INJECTED_DROP);
                            counters::bump(counters::DETECTED_TIMEOUT);
                        } else if plan
                            // The flip decision coin is length-independent
                            // (any non-empty frame flips identically), so the
                            // header size stands in for the frame length.
                            .flip_bit(from, to, layer, seq, attempt, FRAME_HEADER_BYTES)
                            .is_some()
                        {
                            counters::bump(counters::INJECTED_FLIP);
                            counters::bump(counters::DETECTED_CORRUPT);
                        } else {
                            break;
                        }
                        counters::bump(counters::RECOVERED_RESEND);
                        attempt += 1;
                    }
                    if attempt > 0 && plan.partition_blocked(from, to, global_round, attempt - 1) {
                        // The delivered attempt is the first past the
                        // partition's withheld window.
                        counters::bump(counters::RECOVERED_HEAL);
                    }
                    // Replay the dup coin for the delivered (clean) attempt:
                    // one extra frame on the wire, discarded by the
                    // receiver's dedup.
                    if plan.should_dup(from, to, layer, seq, attempt) {
                        counters::bump(counters::INJECTED_DUP);
                        counters::bump(counters::RECOVERED_DEDUP);
                        extra_msgs += 1;
                    }
                    extra_msgs += attempt as u64;
                }
            }
        }
    }
    if extra_msgs == 0 {
        return 0.0;
    }
    let n_alive = live.n_alive() as u64;
    let delivered = 2 * n_alive * n_alive.saturating_sub(1) * n_layers as u64;
    let avg_bytes = volume.total_bytes() / delivered.max(1);
    cost.transfer_time(extra_msgs * avg_bytes) + extra_msgs as f64 * cost.latency_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer_seq::SequentialTrainer;
    use gw2v_corpus::tokenizer::TokenizerConfig;
    use gw2v_corpus::vocab::VocabBuilder;
    use gw2v_util::fvec;

    fn corpus(n_sentences: usize) -> (Corpus, Vocabulary) {
        let mut text = String::new();
        for i in 0..n_sentences {
            match i % 3 {
                0 => text.push_str("a0 a1 a2 a3 a1 a2\n"),
                1 => text.push_str("b0 b1 b2 b3 b1 b2\n"),
                _ => text.push_str("c0 c1 a1 b1 c2 c0\n"),
            }
        }
        let mut b = VocabBuilder::new();
        for tok in text.split_whitespace() {
            b.add_token(tok);
        }
        let vocab = b.build(1);
        let cfg = TokenizerConfig {
            lowercase: false,
            max_sentence_len: 6,
        };
        (Corpus::from_text(&text, &vocab, cfg), vocab)
    }

    fn dist_cfg(n_hosts: usize, rounds: usize, plan: SyncPlan, comb: CombinerKind) -> DistConfig {
        DistConfig {
            sgns: SgnsMode::PerPair,
            n_hosts,
            sync_rounds: rounds,
            plan,
            combiner: comb,
            cost: CostModel::infiniband_56g(),
            wire: WireMode::IdValue,
            on_partition: OnPartition::Stall,
            max_stale_rounds: 8,
        }
    }

    #[test]
    fn paper_sync_rounds_rule() {
        assert_eq!(DistConfig::paper_sync_rounds(1), 1);
        assert_eq!(DistConfig::paper_sync_rounds(2), 3);
        assert_eq!(DistConfig::paper_sync_rounds(4), 6);
        assert_eq!(DistConfig::paper_sync_rounds(8), 12);
        assert_eq!(DistConfig::paper_sync_rounds(16), 24);
        assert_eq!(DistConfig::paper_sync_rounds(32), 48);
        assert_eq!(DistConfig::paper_sync_rounds(64), 96);
    }

    #[test]
    fn one_host_matches_sequential_within_float_noise() {
        let (corpus, vocab) = corpus(120);
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let seq = SequentialTrainer::new(params.clone()).train(&corpus, &vocab);
        // 4 sync rounds/epoch: sync is a no-op at 1 host beyond the
        // base+delta reconstruction (float re-association only).
        let dist = DistributedTrainer::new(
            params,
            dist_cfg(1, 4, SyncPlan::RepModelOpt, CombinerKind::Sum),
        )
        .train(&corpus, &vocab);
        let a = seq.syn0.as_slice();
        let b = dist.model.syn0.as_slice();
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 1e-5 + 1e-4 * x.abs(), "{x} vs {y}");
        }
        assert_eq!(dist.stats.total_bytes(), 0, "1 host moves no bytes");
    }

    #[test]
    fn plans_train_identically() {
        let (corpus, vocab) = corpus(90);
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let run = |plan: SyncPlan| {
            DistributedTrainer::new(
                params.clone(),
                dist_cfg(3, 2, plan, CombinerKind::ModelCombiner),
            )
            .train(&corpus, &vocab)
        };
        let opt = run(SyncPlan::RepModelOpt);
        let naive = run(SyncPlan::RepModelNaive);
        let pull = run(SyncPlan::PullModel);
        assert_eq!(opt.model, naive.model, "Opt and Naive: same arithmetic");
        assert_eq!(opt.model, pull.model, "Opt and Pull: same arithmetic");
        // But very different communication volumes.
        assert!(naive.stats.total_bytes() > opt.stats.total_bytes());
        assert!(opt.pairs_trained > 0);
        assert_eq!(opt.pairs_trained, pull.pairs_trained);
    }

    #[test]
    fn determinism_across_runs() {
        let (corpus, vocab) = corpus(60);
        let params = Hyperparams {
            epochs: 1,
            ..Hyperparams::test_scale()
        };
        let mk = || {
            DistributedTrainer::new(
                params.clone(),
                dist_cfg(4, 3, SyncPlan::RepModelOpt, CombinerKind::ModelCombiner),
            )
            .train(&corpus, &vocab)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.model, b.model);
        assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
        assert_eq!(a.pairs_trained, b.pairs_trained);
    }

    #[test]
    fn combiners_differ_at_multiple_hosts() {
        let (corpus, vocab) = corpus(90);
        let params = Hyperparams {
            epochs: 1,
            ..Hyperparams::test_scale()
        };
        let run = |c: CombinerKind| {
            DistributedTrainer::new(params.clone(), dist_cfg(4, 2, SyncPlan::RepModelOpt, c))
                .train(&corpus, &vocab)
                .model
        };
        let mc = run(CombinerKind::ModelCombiner);
        let avg = run(CombinerKind::Avg);
        let sum = run(CombinerKind::Sum);
        assert_ne!(mc, avg);
        assert_ne!(mc, sum);
        assert_ne!(avg, sum);
    }

    #[test]
    fn distributed_still_learns() {
        let (corpus, vocab) = corpus(240);
        let params = Hyperparams {
            dim: 24,
            epochs: 6,
            negative: 5,
            subsample: 0.0,
            ..Hyperparams::test_scale()
        };
        let res =
            DistributedTrainer::new(params, DistConfig::paper_default(4)).train(&corpus, &vocab);
        let emb = |w: &str| res.model.embedding(vocab.id_of(w).unwrap());
        let same = fvec::cosine(emb("a0"), emb("a2"));
        let cross = fvec::cosine(emb("a0"), emb("b3"));
        assert!(same > cross, "same {same} vs cross {cross}");
    }

    #[test]
    fn epoch_callback_sees_progress() {
        let (corpus, vocab) = corpus(60);
        let params = Hyperparams {
            epochs: 3,
            ..Hyperparams::test_scale()
        };
        let mut epochs_seen = Vec::new();
        let mut last_t = -1.0;
        DistributedTrainer::new(params, DistConfig::paper_default(2)).train_with_callback(
            &corpus,
            &vocab,
            |snap, model| {
                epochs_seen.push(snap.epoch);
                assert!(snap.virtual_time >= last_t);
                last_t = snap.virtual_time;
                assert_eq!(model.dim(), 16);
            },
        );
        assert_eq!(epochs_seen, vec![0, 1, 2]);
    }

    #[test]
    fn more_hosts_spread_compute() {
        // Each host processes 1/H of the tokens; pairs_trained stays in
        // the same ballpark (not identical: different RNG streams).
        let (corpus, vocab) = corpus(150);
        let params = Hyperparams {
            epochs: 1,
            ..Hyperparams::test_scale()
        };
        let r1 = DistributedTrainer::new(
            params.clone(),
            dist_cfg(1, 1, SyncPlan::RepModelOpt, CombinerKind::ModelCombiner),
        )
        .train(&corpus, &vocab);
        let r4 = DistributedTrainer::new(
            params,
            dist_cfg(4, 6, SyncPlan::RepModelOpt, CombinerKind::ModelCombiner),
        )
        .train(&corpus, &vocab);
        let lo = r1.pairs_trained / 2;
        let hi = r1.pairs_trained * 2;
        assert!((lo..hi).contains(&r4.pairs_trained));
        assert!(r4.stats.total_bytes() > 0);
        assert!(r4.comm_time > 0.0);
    }

    #[test]
    fn crash_degrades_gracefully_and_still_learns() {
        let (corpus, vocab) = corpus(180);
        let params = Hyperparams {
            dim: 24,
            epochs: 4,
            negative: 5,
            subsample: 0.0,
            ..Hyperparams::test_scale()
        };
        let plan: FaultPlan = "crash=1@2".parse().unwrap();
        let res = DistributedTrainer::new(
            params,
            dist_cfg(3, 2, SyncPlan::RepModelOpt, CombinerKind::ModelCombiner),
        )
        .with_faults(plan)
        .train(&corpus, &vocab);
        assert!(!res.killed);
        assert!(res.model.syn0.as_slice().iter().all(|x| x.is_finite()));
        let emb = |w: &str| res.model.embedding(vocab.id_of(w).unwrap());
        let same = fvec::cosine(emb("a0"), emb("a2"));
        let cross = fvec::cosine(emb("a0"), emb("b3"));
        assert!(same > cross, "same {same} vs cross {cross}");
    }

    #[test]
    fn degraded_runs_are_deterministic() {
        let (corpus, vocab) = corpus(90);
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let plan: FaultPlan = "seed=11,drop=0.05,crash=2@1,straggle=0@0x10ms"
            .parse()
            .unwrap();
        let mk = || {
            DistributedTrainer::new(
                params.clone(),
                dist_cfg(3, 2, SyncPlan::RepModelOpt, CombinerKind::ModelCombiner),
            )
            .with_faults(plan.clone())
            .train(&corpus, &vocab)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.model, b.model, "same plan, same bits");
        assert_eq!(a.pairs_trained, b.pairs_trained);
        assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
    }

    #[test]
    fn stragglers_inflate_virtual_time_only() {
        let (corpus, vocab) = corpus(60);
        let params = Hyperparams {
            epochs: 1,
            ..Hyperparams::test_scale()
        };
        let cfg = dist_cfg(2, 2, SyncPlan::RepModelOpt, CombinerKind::ModelCombiner);
        let clean = DistributedTrainer::new(params.clone(), cfg).train(&corpus, &vocab);
        let slow = DistributedTrainer::new(params, cfg)
            .with_faults("straggle=1@0x2s".parse().unwrap())
            .train(&corpus, &vocab);
        assert_eq!(clean.model, slow.model, "a straggler changes no bits");
        assert!(
            slow.compute_time >= clean.compute_time + 1.9,
            "virtual clock must absorb the 2 s delay: {} vs {}",
            slow.compute_time,
            clean.compute_time
        );
    }
}
