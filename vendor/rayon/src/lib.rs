//! Minimal, self-contained stand-in for the `rayon` crate.
//!
//! Presents the parallel-iterator surface the workspace uses
//! (`par_iter().map().reduce()`, `into_par_iter().map().collect()`) but runs
//! sequentially on the calling thread. The container runs on a single core,
//! so this loses no throughput; callers keep rayon-shaped code so restoring
//! the real crate later is a manifest change only. The reduce operator's
//! associativity contract is unchanged — callers cannot rely on a
//! particular grouping, and this stub folds left-to-right, which is one of
//! the groupings real rayon may produce.

use std::ops::Range;

/// Glob-import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// A "parallel" iterator: a thin wrapper over a sequential one.
#[derive(Debug)]
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Filters items.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Reduces with an identity factory and an associative operator
    /// (rayon's signature; the grouping is unspecified).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Collects into any `FromIterator` target.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Runs `f` on each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Item count.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = Range<usize>;
    type Item = usize;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

impl IntoParallelIterator for Range<u32> {
    type Iter = Range<u32>;
    type Item = u32;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

/// Conversion into a borrowing parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a reference).
    type Item: 'a;
    /// Borrows as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let shards = vec![vec![1u64, 2], vec![3], vec![4, 5, 6]];
        let total: u64 = shards
            .par_iter()
            .map(|s| s.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 21);
    }

    #[test]
    fn into_par_iter_collect() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[9], 81);
    }
}
