//! End-to-end benchmark: one full training epoch of each trainer on a
//! tiny synthetic corpus (the macro-level regression guard).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gw2v_bench::prepare;
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_core::params::Hyperparams;
use gw2v_core::trainer_batched::BatchedTrainer;
use gw2v_core::trainer_hogbatch::HogBatchTrainer;
use gw2v_core::trainer_hogwild::HogwildTrainer;
use gw2v_core::trainer_seq::SequentialTrainer;
use gw2v_corpus::datasets::{Scale, PRESETS};
use std::hint::black_box;

fn bench_epoch(c: &mut Criterion) {
    let d = prepare(&PRESETS[0], Scale::Tiny, 42);
    let params = Hyperparams {
        dim: 32,
        negative: 5,
        epochs: 1,
        seed: 1,
        ..Hyperparams::default()
    };
    let mut group = c.benchmark_group("epoch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(d.corpus.total_tokens() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(SequentialTrainer::new(params.clone()).train(&d.corpus, &d.vocab)));
    });
    group.bench_function("batched", |b| {
        b.iter(|| black_box(BatchedTrainer::new(params.clone()).train(&d.corpus, &d.vocab)));
    });
    group.bench_function("hogwild_2threads", |b| {
        b.iter(|| black_box(HogwildTrainer::new(params.clone(), 2).train(&d.corpus, &d.vocab)));
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("hogbatch_{threads}threads").as_str(), |b| {
            b.iter(|| {
                black_box(HogBatchTrainer::new(params.clone(), threads).train(&d.corpus, &d.vocab))
            });
        });
    }
    for hosts in [4usize, 16] {
        group.bench_function(BenchmarkId::new("distributed", hosts), |b| {
            b.iter(|| {
                black_box(
                    DistributedTrainer::new(params.clone(), DistConfig::paper_default(hosts))
                        .train(&d.corpus, &d.vocab),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
