//! Hyperparameters.
//!
//! Defaults follow the paper's §5.1: "window size: 5, number of negative
//! samples: 15, sentence length of 10K, threshold of 1e-4 for
//! downsampling the frequent words, and vector dimensionality (or
//! embedding size) of 200. We also trained all the models for 16
//! epochs", with the C implementation's default starting learning rate
//! of 0.025 for Skip-Gram.

use serde::{Deserialize, Serialize};

/// Which negative-sampling table implementation to use (ablation knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplerChoice {
    /// The classic big-array table of the C implementation.
    Table,
    /// Exact Walker alias sampling.
    Alias,
}

/// Word2Vec training hyperparameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Hyperparams {
    /// Embedding dimensionality (paper: 200).
    pub dim: usize,
    /// Maximum context window radius (paper: 5); each center position
    /// samples an effective radius uniformly from `1..=window`.
    pub window: usize,
    /// Negative samples per positive pair (paper: 15).
    pub negative: usize,
    /// Starting learning rate (C default for SG: 0.025).
    pub alpha: f32,
    /// The learning rate never decays below `alpha * min_alpha_frac`
    /// (C uses 1e-4).
    pub min_alpha_frac: f32,
    /// Training epochs (paper: 16).
    pub epochs: usize,
    /// Frequent-word downsampling threshold (paper: 1e-4; 0 disables).
    pub subsample: f64,
    /// Minimum corpus count for a word to enter the vocabulary.
    pub min_count: u64,
    /// Maximum training-sentence length in words (paper: 10 000).
    pub max_sentence_len: usize,
    /// Negative-sampling table implementation.
    pub sampler: SamplerChoice,
    /// Master seed for all stochastic choices.
    pub seed: u64,
}

impl Default for Hyperparams {
    fn default() -> Self {
        Self {
            dim: 200,
            window: 5,
            negative: 15,
            alpha: 0.025,
            min_alpha_frac: 1e-4,
            epochs: 16,
            subsample: 1e-4,
            min_count: 1,
            max_sentence_len: 10_000,
            sampler: SamplerChoice::Table,
            seed: 1,
        }
    }
}

impl Hyperparams {
    /// A scaled-down configuration for the experiment harness on this
    /// single-core reproduction machine: dim 64, 5 negatives (defaults
    /// otherwise). EXPERIMENTS.md records this deviation.
    pub fn bench_scale() -> Self {
        Self {
            dim: 64,
            negative: 5,
            ..Self::default()
        }
    }

    /// A tiny configuration for unit/integration tests.
    pub fn test_scale() -> Self {
        Self {
            dim: 16,
            window: 3,
            negative: 3,
            epochs: 2,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = Hyperparams::default();
        assert_eq!(p.dim, 200);
        assert_eq!(p.window, 5);
        assert_eq!(p.negative, 15);
        assert_eq!(p.epochs, 16);
        assert_eq!(p.subsample, 1e-4);
        assert_eq!(p.max_sentence_len, 10_000);
        assert!((p.alpha - 0.025).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Hyperparams::bench_scale();
        let json = serde_json::to_string(&p).unwrap();
        let back: Hyperparams = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dim, 64);
        assert_eq!(back.negative, 5);
        assert_eq!(back.sampler, SamplerChoice::Table);
    }
}
