//! On-disk corpus handling.
//!
//! The paper's corpora are multi-gigabyte files that never fit in
//! memory: "Because the training corpus may not fit in the memory of a
//! single host, we stream it from disk to construct the vocabulary"
//! (§4.1). This module provides that streaming path: vocabulary
//! construction over a `BufRead` without materializing sentences, plus
//! helpers to write/read corpora and to stream a specific *host
//! partition* of a file (contiguous byte range snapped to whitespace
//! boundaries, §4.2).

use crate::tokenizer::{SentenceStream, TokenizerConfig};
use crate::vocab::{VocabBuilder, Vocabulary};
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Streams a reader once and builds the vocabulary (never holds more
/// than one sentence in memory).
pub fn build_vocab_streaming<R: BufRead>(
    reader: R,
    config: TokenizerConfig,
    min_count: u64,
) -> std::io::Result<Vocabulary> {
    let mut builder = VocabBuilder::new();
    for sentence in SentenceStream::new(reader, config) {
        builder.add_sentence(&sentence?);
    }
    Ok(builder.build(min_count))
}

/// Builds a vocabulary from a file path.
pub fn build_vocab_from_path<P: AsRef<Path>>(
    path: P,
    config: TokenizerConfig,
    min_count: u64,
) -> std::io::Result<Vocabulary> {
    build_vocab_streaming(BufReader::new(File::open(path)?), config, min_count)
}

/// Writes corpus text to a file (convenience for the generator CLI).
pub fn write_corpus<P: AsRef<Path>>(path: P, text: &str) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(text.as_bytes())
}

/// Streams the `host`-th of `n_hosts` contiguous byte partitions of a
/// file as encoded sentences.
///
/// Partition boundaries are byte offsets `len·h/H`, snapped forward to
/// the next whitespace so no token is split — the "logical partitioning
/// into roughly equal contiguous chunks" of §4.2. Every byte of the file
/// belongs to exactly one partition.
pub fn read_partition<P: AsRef<Path>>(
    path: P,
    host: usize,
    n_hosts: usize,
    vocab: &Vocabulary,
    config: TokenizerConfig,
) -> std::io::Result<Vec<Vec<u32>>> {
    assert!(n_hosts > 0 && host < n_hosts);
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    let start = snap_to_boundary(&mut file, len * host as u64 / n_hosts as u64, len)?;
    let end = snap_to_boundary(&mut file, len * (host as u64 + 1) / n_hosts as u64, len)?;
    if start >= end {
        return Ok(Vec::new());
    }
    file.seek(SeekFrom::Start(start))?;
    let reader = BufReader::new(file.take(end - start));
    let mut sentences = Vec::new();
    for sentence in SentenceStream::new(reader, config) {
        let encoded = vocab.encode_sentence(&sentence?);
        if !encoded.is_empty() {
            sentences.push(encoded);
        }
    }
    Ok(sentences)
}

/// Returns the first byte offset at or after `pos` that begins a token
/// (i.e. is preceded by whitespace or the file start). Offsets ≥ `len`
/// return `len`.
fn snap_to_boundary(file: &mut File, pos: u64, len: u64) -> std::io::Result<u64> {
    if pos == 0 || pos >= len {
        return Ok(pos.min(len));
    }
    // Scan forward from pos-1: the partition starts after the first
    // whitespace at or beyond pos-1 (so a token straddling pos belongs
    // to the previous partition).
    file.seek(SeekFrom::Start(pos - 1))?;
    let mut buf = [0u8; 4096];
    let mut offset = pos - 1;
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok(len);
        }
        for (i, &b) in buf[..n].iter().enumerate() {
            if b.is_ascii_whitespace() {
                return Ok(offset + i as u64 + 1);
            }
        }
        offset += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tmpfile(content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "gw2v_corpus_test_{}_{}.txt",
            std::process::id(),
            content.len()
        ));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn streaming_vocab_matches_in_memory() {
        let text = "the quick brown fox the lazy dog the end";
        let vocab =
            build_vocab_streaming(Cursor::new(text), TokenizerConfig::default(), 1).unwrap();
        assert_eq!(vocab.word_of(0), "the");
        assert_eq!(vocab.count_of(0), 3);
        assert_eq!(vocab.len(), 7);
    }

    #[test]
    fn partitions_cover_all_tokens_exactly_once() {
        let words: Vec<String> = (0..500).map(|i| format!("tok{i:04}")).collect();
        let text = words.join(" ") + "\n";
        let path = tmpfile(&text);
        let vocab = build_vocab_from_path(&path, TokenizerConfig::default(), 1).unwrap();
        for n_hosts in [1usize, 2, 3, 7] {
            let mut seen = Vec::new();
            for h in 0..n_hosts {
                let sents =
                    read_partition(&path, h, n_hosts, &vocab, TokenizerConfig::default()).unwrap();
                for s in sents {
                    for id in s {
                        seen.push(vocab.word_of(id).to_owned());
                    }
                }
            }
            seen.sort();
            let mut want = words.clone();
            want.sort();
            assert_eq!(seen, want, "n_hosts={n_hosts}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn no_token_is_split_across_partitions() {
        // Long tokens make straddling likely if snapping is wrong.
        let words: Vec<String> = (0..50)
            .map(|i| format!("verylongtoken{i:03}xxxxxxxx"))
            .collect();
        let text = words.join(" ");
        let path = tmpfile(&text);
        let vocab = build_vocab_from_path(&path, TokenizerConfig::default(), 1).unwrap();
        for h in 0..5 {
            let sents = read_partition(&path, h, 5, &vocab, TokenizerConfig::default()).unwrap();
            for s in sents {
                for id in s {
                    // Every decoded token must be a whole vocabulary word.
                    assert!(vocab.word_of(id).starts_with("verylongtoken"));
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn more_hosts_than_tokens() {
        let path = tmpfile("a b");
        let vocab = build_vocab_from_path(&path, TokenizerConfig::default(), 1).unwrap();
        let mut total = 0;
        for h in 0..8 {
            total += read_partition(&path, h, 8, &vocab, TokenizerConfig::default())
                .unwrap()
                .iter()
                .map(|s| s.len())
                .sum::<usize>();
        }
        assert_eq!(total, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_then_stream_roundtrip() {
        let path = tmpfile("");
        write_corpus(&path, "alpha beta gamma alpha\n").unwrap();
        let vocab = build_vocab_from_path(&path, TokenizerConfig::default(), 1).unwrap();
        assert_eq!(vocab.total_words(), 4);
        assert_eq!(vocab.count_of(vocab.id_of("alpha").unwrap()), 2);
        std::fs::remove_file(&path).ok();
    }
}
