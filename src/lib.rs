//! # graph-word2vec
//!
//! Facade crate re-exporting the whole GraphWord2Vec workspace — a Rust
//! reproduction of *"Distributed Training of Embeddings using Graph
//! Analytics"* (Gill et al., IPDPS 2021). See the README for a tour,
//! DESIGN.md for the system inventory and EXPERIMENTS.md for the
//! paper-vs-measured record.
//!
//! ```
//! use graph_word2vec::prelude::*;
//!
//! // Generate a small corpus with planted analogy relations.
//! let preset = DatasetPreset::by_name("1-billion").unwrap();
//! let synth = preset.generate(Scale::Tiny, 42);
//!
//! // Vocabulary + encoded corpus.
//! let cfg = TokenizerConfig::default();
//! let mut b = VocabBuilder::new();
//! for s in sentences_from_text(&synth.text, cfg.clone()) {
//!     b.add_sentence(&s);
//! }
//! let vocab = b.build(1);
//! let corpus = Corpus::from_text(&synth.text, &vocab, cfg);
//!
//! // Distributed training: 4 hosts, model combiner, RepModel-Opt.
//! let params = Hyperparams { dim: 16, epochs: 1, negative: 3, ..Hyperparams::default() };
//! let result = DistributedTrainer::new(params, DistConfig::paper_default(4))
//!     .train(&corpus, &vocab);
//! assert!(result.pairs_trained > 0);
//! assert!(result.stats.total_bytes() > 0);
//! ```

pub use gw2v_combiner as combiner;
pub use gw2v_core as core;
pub use gw2v_corpus as corpus;
pub use gw2v_eval as eval;
pub use gw2v_faults as faults;
pub use gw2v_gluon as gluon;
pub use gw2v_graph as graph;
pub use gw2v_obs as obs;
pub use gw2v_serve as serve;
pub use gw2v_util as util;

/// The most common imports in one place.
pub mod prelude {
    pub use gw2v_combiner::CombinerKind;
    pub use gw2v_core::checkpoint::{Checkpoint, CheckpointError};
    pub use gw2v_core::distributed::{DistConfig, DistributedTrainer, TrainResult};
    pub use gw2v_core::model::Word2VecModel;
    pub use gw2v_core::params::Hyperparams;
    pub use gw2v_core::trainer_hogbatch::{HogBatchTrainer, SgnsMode};
    pub use gw2v_core::trainer_hogwild::HogwildTrainer;
    pub use gw2v_core::trainer_seq::SequentialTrainer;
    pub use gw2v_core::trainer_threaded::ThreadedTrainer;
    pub use gw2v_corpus::datasets::{DatasetPreset, Scale};
    pub use gw2v_corpus::shard::Corpus;
    pub use gw2v_corpus::tokenizer::{sentences_from_text, TokenizerConfig};
    pub use gw2v_corpus::vocab::{VocabBuilder, Vocabulary};
    pub use gw2v_eval::analogy::evaluate;
    pub use gw2v_eval::knn::EmbeddingIndex;
    pub use gw2v_faults::FaultPlan;
    pub use gw2v_gluon::plan::SyncPlan;
    pub use gw2v_serve::{Query, QueryEngine, ServeError, ShardedStore};
}
