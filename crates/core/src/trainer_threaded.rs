//! The distributed protocol on the threaded cluster engine.
//!
//! [`ThreadedTrainer`] runs Algorithm 1 with one OS thread per host on
//! the gw2v-gluon threaded fabric: real message passing (CRC-framed,
//! NAK/resend reliable), real barriers, real crashes. It is the
//! demonstration that the protocol the BSP simulator models — including
//! the fault-tolerance story of DESIGN.md §3d — executes correctly under
//! genuine concurrency:
//!
//! * a faultless run produces a model **bit-identical** to
//!   [`crate::DistributedTrainer`]'s (same RNG streams, same fold order),
//!   for all three sync plans — PullModel runs the same inspection
//!   replay per host and pulls exactly the rows the simulator copies;
//! * drops and bit-flips are detected (CRC / timeout) and repaired by
//!   retransmission, leaving the result bit-identical to a clean run;
//! * a crashed host's shard is adopted by the next alive host, which
//!   re-derives the dead worklist's position deterministically (raw token
//!   counts are RNG-free) and continues it on the recovery RNG stream —
//!   the same rule the simulator applies, so degraded runs also match the
//!   simulator bit-for-bit;
//! * a `rejoin=H@E` directive re-admits a crashed host at the boundary
//!   of epoch `E`: its adopter streams the full partition state (replica
//!   rows, ward RNG state, schedule position) back over CRC-sealed
//!   out-of-band frames, the rejoiner re-registers in the liveness
//!   registry before acknowledging, resynchronizes its lockstep phase
//!   counter, and resumes ownership — again bit-identical to the
//!   simulator's analytic re-admission;
//! * epoch-boundary GW2VCKP1 checkpoints are written by the lowest
//!   alive host after all live hosts deposit their state at a shared
//!   rendezvous barrier, and `--resume` restores a kill→resume run
//!   bit-for-bit equal to an uninterrupted one;
//! * a `kill=E` directive stops the whole cluster after epoch `E`.
//!
//! The one scope limit that remains by design: virtual time accounting
//! (`compute_time`/`comm_time` are reported as zero — wall time is the
//! real measurement here; the simulator owns the virtual clocks).

use crate::checkpoint::Checkpoint;
use crate::distributed::{DistConfig, TrainResult};
use crate::model::Word2VecModel;
use crate::params::Hyperparams;
use crate::schedule::LrSchedule;
use crate::setup::{TrainSetup, HOST_RNG_BASE, RECOVERY_RNG_BASE};
use crate::sgns::{RecordingStore, ReplicaStore};
use crate::trainer_hogbatch::{train_sentence_mode, MinibatchScratch};
use gw2v_corpus::shard::{Corpus, CorpusShard};
use gw2v_corpus::vocab::Vocabulary;
use gw2v_faults::{counters, FaultPlan, OnPartition};
use gw2v_gluon::liveness::Liveness;
use gw2v_gluon::plan::{AccessSets, SyncConfig, SyncPlan};
use gw2v_gluon::sync::assemble_canonical_live;
use gw2v_gluon::threaded::{
    phases_per_round, run_cluster_with, sync_round_threaded_degraded, ClusterConfig, ClusterError,
    HostCtx, ThreadedSyncScratch,
};
use gw2v_gluon::volume::CommStats;
use gw2v_gluon::wire::WireState;
use gw2v_gluon::ModelReplica;
use gw2v_util::fvec::FlatMatrix;
use gw2v_util::rng::{SplitMix64, Xoshiro256};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// A dead host's shard, carried forward by its adopter.
struct Ward {
    host: usize,
    rng: Xoshiro256,
    processed: u64,
}

/// What each host thread hands back to the coordinator.
struct HostOutcome {
    crashed: bool,
    layers: Vec<FlatMatrix>,
    stats: CommStats,
    pairs: u64,
}

/// One live host's contribution to a checkpoint rendezvous: everything
/// the writer needs to reassemble the simulator-shaped [`Checkpoint`].
struct HostSnapshot {
    layers: Vec<FlatMatrix>,
    rng: [u64; 4],
    processed: u64,
    stats: CommStats,
    pairs: u64,
    /// `(host, rng_state, processed)` for each ward this host carries —
    /// the dead slots of the checkpoint are filled from these.
    wards: Vec<(usize, [u64; 4], u64)>,
}

/// Tokens host `d` has processed by the start of `(epoch, s)`: full
/// epochs' worth of its shard plus this epoch's earlier chunks. Raw
/// token counts are independent of any RNG stream, so an adopter can
/// recompute a dead host's schedule position exactly.
fn processed_at(shard: &CorpusShard<'_>, epoch: usize, s: usize, s_count: usize) -> u64 {
    let mut total = epoch as u64 * shard.total_tokens() as u64;
    for s_prior in 0..s {
        total += shard.round_chunk(s_prior, s_count).total_tokens() as u64;
    }
    total
}

/// The deterministic liveness view just *before* the re-admissions at
/// the boundary of `epoch`, derived by replaying the plan's events from
/// the start of the run. Both engines re-evaluate the adoption map at
/// every liveness change (death rounds and rejoin boundaries alike), so
/// this view's `adopter_of` is exactly the host holding a dormant host's
/// ward at that boundary — which is how a rejoiner knows whom to expect
/// its state transfer from without any coordination.
fn liveness_before_epoch(
    plan: &FaultPlan,
    h_count: usize,
    s_count: usize,
    epoch: usize,
) -> Liveness {
    let mut live = Liveness::all(h_count);
    for e in 0..epoch {
        for d in 0..h_count {
            if !live.is_alive(d) && plan.rejoin_epoch(d) == Some(e) {
                live.mark_alive(d);
            }
        }
        for g in e * s_count..(e + 1) * s_count {
            for h in 0..h_count {
                if live.is_alive(h) && plan.crash_round(h) == Some(g) {
                    live.mark_dead(h);
                }
            }
        }
    }
    live
}

/// The epoch at which dead `host` will be re-admitted, if the plan
/// schedules one the cluster will actually reach: strictly after the
/// crash (when its round is known), within this run's epochs, and not
/// beyond a whole-cluster kill that fires first.
fn readmission_epoch(
    plan: &FaultPlan,
    host: usize,
    crashed_g: Option<usize>,
    start_epoch: usize,
    epochs: usize,
    s_count: usize,
) -> Option<usize> {
    let e = plan.rejoin_epoch(host)?;
    if e >= epochs || e < start_epoch {
        return None;
    }
    if let Some(g) = crashed_g {
        if e * s_count <= g {
            return None;
        }
    }
    if let Some(k) = plan.kill_after_epoch {
        if k + 1 < epochs && k >= start_epoch && e > k {
            return None;
        }
    }
    Some(e)
}

/// Dormancy's wake-up call: blocks until the adopter streams the
/// partition state for the boundary of `e_rejoin`, registers this host
/// alive, and returns the restored `(replica, rng, processed, live)` —
/// `live` being the shared deterministic view *after* this host's own
/// re-admission (other same-boundary rejoiners are folded in by the
/// epoch-top block the caller re-enters).
fn await_readmission(
    ctx: &HostCtx,
    h_count: usize,
    s_count: usize,
    e_rejoin: usize,
    n_words: usize,
    dim: usize,
) -> Result<(ModelReplica, Xoshiro256, u64, Liveness), ClusterError> {
    let pre = liveness_before_epoch(ctx.plan(), h_count, s_count, e_rejoin);
    let adopter = pre
        .adopter_of(ctx.host)
        .expect("dormant host has an adopter");
    let shape = vec![(n_words, dim); 2];
    let (rng_state, processed, layers) = ctx.recv_partition_state(adopter, &shape)?;
    counters::bump(counters::RECOVERED_REJOIN);
    let mut live = pre;
    live.mark_alive(ctx.host);
    Ok((
        ModelReplica::new(layers),
        Xoshiro256::from_state(rng_state),
        processed,
        live,
    ))
}

/// The distributed trainer on the threaded cluster engine.
pub struct ThreadedTrainer {
    /// Hyperparameters.
    pub params: Hyperparams,
    /// Cluster configuration (all three [`SyncPlan`]s are supported).
    pub config: DistConfig,
    faults: FaultPlan,
    cluster: ClusterConfig,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
}

impl ThreadedTrainer {
    /// Creates a trainer.
    pub fn new(params: Hyperparams, config: DistConfig) -> Self {
        assert!(config.n_hosts > 0);
        assert!(config.sync_rounds > 0);
        Self {
            params,
            config,
            faults: FaultPlan::none(),
            cluster: ClusterConfig::default(),
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
        }
    }

    /// Installs a fault plan; drops, flips, stragglers, crashes and
    /// re-admissions are injected for real (withheld frames, corrupted
    /// bytes, `sleep`s, exiting threads, state transfers).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Overrides the reliable-transport timing knobs.
    pub fn with_cluster_config(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Enables epoch-boundary checkpointing into `dir`, writing every
    /// `every` epochs (plus the final epoch and any `kill=E` boundary).
    /// All live hosts deposit their state at a shared rendezvous barrier
    /// and the lowest alive host writes one simulator-compatible
    /// GW2VCKP1 file.
    pub fn with_checkpointing(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be at least 1 epoch");
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = every;
        self
    }

    /// Resumes from the newest checkpoint in the configured directory
    /// (no-op when the directory has none).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Trains on one thread per host. Returns the canonical model
    /// (assembled block-wise from each partition's effective master, so
    /// PullModel's deliberately divergent mirrors don't matter) or the
    /// first cluster-fabric error.
    pub fn train(&self, corpus: &Corpus, vocab: &Vocabulary) -> Result<TrainResult, ClusterError> {
        let p = &self.params;
        let cfg = &self.config;
        let h_count = cfg.n_hosts;
        let s_count = cfg.sync_rounds;
        let n_words = vocab.len();
        // Degrade mode rewrites qualifying partition specs into crash +
        // rejoin pairs for the dormant side before the fabric spawns
        // (mirroring the simulator exactly — see
        // [`FaultPlan::degrade_partitions`]); every host and the fabric
        // then run the established crash/rejoin machinery on the single
        // effective plan. Non-qualifying specs stay and stall.
        let degraded_plan;
        let plan: &FaultPlan = if cfg.on_partition == OnPartition::Degrade {
            let (eff, converted) = self
                .faults
                .degrade_partitions(cfg.max_stale_rounds, cfg.sync_rounds);
            for spec in &converted {
                counters::bump(counters::INJECTED_PARTITION);
                counters::bump(counters::DETECTED_PARTITION);
                if spec.to_round.div_ceil(cfg.sync_rounds.max(1)) < p.epochs {
                    counters::bump(counters::RECOVERED_HEAL);
                }
            }
            degraded_plan = eff;
            &degraded_plan
        } else {
            &self.faults
        };
        let faults_on = !plan.is_inert();
        let wall_start = Instant::now();

        let setup = TrainSetup::new(vocab, p);
        let init = Word2VecModel::init(n_words, p.dim, p.seed);
        let root = SplitMix64::new(p.seed);
        let schedule = LrSchedule::new(
            p.alpha,
            p.min_alpha_frac,
            corpus.total_tokens() as u64,
            p.epochs,
        );
        let sync_cfg = SyncConfig {
            plan: cfg.plan,
            combiner: cfg.combiner,
        };
        let fingerprint = Checkpoint::fingerprint_of(p, cfg);

        // Resume: the coordinator loads and validates once, before any
        // thread spawns; every host restores from the same snapshot.
        let resume_ckpt: Option<Checkpoint> = if self.resume {
            let dir = self
                .checkpoint_dir
                .as_ref()
                .expect("resume requires a checkpoint directory");
            let latest = Checkpoint::latest_in(dir)
                .unwrap_or_else(|e| panic!("scanning checkpoint dir: {e}"));
            latest.map(|path| {
                let ckpt = Checkpoint::load(&path)
                    .unwrap_or_else(|e| panic!("loading {}: {e}", path.display()));
                assert_eq!(
                    ckpt.fingerprint,
                    fingerprint,
                    "checkpoint {} was written by a run with different \
                     hyperparameters or cluster configuration",
                    path.display()
                );
                counters::bump(counters::RECOVERED_RESUME);
                ckpt
            })
        } else {
            None
        };
        let start_epoch = resume_ckpt.as_ref().map_or(0, |c| c.epoch + 1);
        let resumed_from = resume_ckpt.as_ref().map(|_| start_epoch);
        let killed = plan
            .kill_after_epoch
            .is_some_and(|e| e + 1 < p.epochs && e >= start_epoch);

        // Checkpoint rendezvous mailbox: live hosts deposit, the lowest
        // alive host assembles and writes, the second barrier releases
        // everyone back into the epoch loop.
        let deposits: Mutex<Vec<Option<HostSnapshot>>> =
            Mutex::new((0..h_count).map(|_| None).collect());
        // A crashing host leaves its tallies here so checkpoints written
        // while it is dead still account for its pre-crash work (the
        // simulator's global accumulators keep it implicitly). Cleared on
        // re-admission: from then on the host's own counters carry it.
        let orphans: Mutex<Vec<Option<(CommStats, u64)>>> =
            Mutex::new((0..h_count).map(|_| None).collect());
        let ckpt_dir = self.checkpoint_dir.as_deref();
        let ckpt_every = self.checkpoint_every;
        let resume_ckpt = &resume_ckpt;
        let deposits_ref = &deposits;
        let orphans_ref = &orphans;

        let outcomes = run_cluster_with(
            h_count,
            plan.clone(),
            self.cluster,
            |ctx| -> Result<HostOutcome, ClusterError> {
                let h = ctx.host;
                let train_ctx = setup.ctx(p);
                let shard = corpus.partition(h, h_count);
                let mut replica = ModelReplica::new(vec![init.syn0.clone(), init.syn1neg.clone()]);
                let mut rng = Xoshiro256::new(root.derive(HOST_RNG_BASE + h as u64));
                let mut processed = 0u64;
                let mut stats = CommStats::default();
                let mut pairs = 0u64;
                let mut scratch = MinibatchScratch::new();
                let mut sync_scratch = ThreadedSyncScratch::new();
                // Per-host wire-protocol state (memo caches / delta
                // shadows / quant scratch). Holds this host's sender keys
                // (self→*) and receiver keys (*→self); epoch-scoped via
                // `begin_epoch` at the loop top, which also covers rejoin
                // re-entry, so payload-form decisions match the
                // simulator's exactly.
                let mut wire = WireState::for_mode(cfg.wire);
                let mut live = Liveness::all(h_count);
                let mut wards: Vec<Ward> = Vec::new();
                let mut epoch = start_epoch;
                // Set when this host just came back from dormancy: forces
                // the epoch-top ward migration even if it is the only
                // rejoiner at the boundary.
                let mut pending_migration = false;

                if let Some(ckpt) = resume_ckpt.as_ref() {
                    for (d, &alive) in ckpt.alive.iter().enumerate() {
                        if !alive {
                            live.mark_dead(d);
                        }
                    }
                    if !ckpt.alive[h] {
                        // Dead at the checkpoint: the crash was already
                        // counted by the run that wrote it. Resign
                        // quietly, then either wait out dormancy until a
                        // scheduled re-admission or exit for good.
                        ctx.resign();
                        let Some(e_rejoin) =
                            readmission_epoch(ctx.plan(), h, None, start_epoch, p.epochs, s_count)
                        else {
                            return Ok(HostOutcome {
                                crashed: true,
                                layers: Vec::new(),
                                stats,
                                pairs,
                            });
                        };
                        let (r, g, t, l) =
                            await_readmission(&ctx, h_count, s_count, e_rejoin, n_words, p.dim)?;
                        (replica, rng, processed, live) = (r, g, t, l);
                        wards.clear();
                        pending_migration = true;
                        ctx.resync_seq(
                            phases_per_round(cfg.plan)
                                * ((e_rejoin - start_epoch) * s_count) as u64,
                        );
                        epoch = e_rejoin;
                    } else {
                        replica = ModelReplica::new(ckpt.layers[h].clone());
                        rng = Xoshiro256::from_state(ckpt.rng_states[h]);
                        processed = ckpt.processed[h];
                        // Reconstruct wards the way the simulator
                        // reconstructs its adoption map: both engines keep
                        // the map equal to `adopter_of` at every boundary,
                        // so the restored liveness view determines them.
                        // No adopt counter — the original run counted it.
                        for d in 0..h_count {
                            if live.is_alive(d) || live.adopter_of(d) != Some(h) {
                                continue;
                            }
                            wards.push(Ward {
                                host: d,
                                rng: Xoshiro256::from_state(ckpt.rng_states[d]),
                                processed: ckpt.processed[d],
                            });
                        }
                        wards.sort_by_key(|w| w.host);
                    }
                }

                'epochs: while epoch < p.epochs {
                    wire.begin_epoch();
                    // ---- Epoch-boundary re-admission (rejoin=H@E). ----
                    if faults_on {
                        let mut someone_rejoined = false;
                        for d in 0..h_count {
                            if live.is_alive(d) || ctx.plan().rejoin_epoch(d) != Some(epoch) {
                                continue;
                            }
                            if let Some(pos) = wards.iter().position(|w| w.host == d) {
                                // This host is the adopter: stream the
                                // partition back and release the ward. The
                                // send blocks for the rejoiner's ACK, which
                                // it sends only after re-registering alive —
                                // so the next barrier already counts it.
                                let ward = wards.remove(pos);
                                let sent = ctx.send_partition_state(
                                    d,
                                    ward.rng.state(),
                                    ward.processed,
                                    &replica.layers,
                                )?;
                                gw2v_obs::add("gluon.state_transfer_bytes", sent);
                            }
                            live.mark_alive(d);
                            someone_rejoined = true;
                        }
                        if someone_rejoined || pending_migration {
                            pending_migration = false;
                            // Mirror the simulator's adoption-map
                            // re-evaluation: a rejoin can change effective
                            // masters, migrating a ward to a new holder —
                            // which restarts it on a fresh recovery stream
                            // at its RNG-free recomputed schedule position.
                            wards.retain(|w| live.adopter_of(w.host) == Some(h));
                            for d in 0..h_count {
                                if live.is_alive(d)
                                    || live.adopter_of(d) != Some(h)
                                    || wards.iter().any(|w| w.host == d)
                                {
                                    continue;
                                }
                                counters::bump(counters::RECOVERED_ADOPT);
                                wards.push(Ward {
                                    host: d,
                                    rng: Xoshiro256::new(root.derive(RECOVERY_RNG_BASE + d as u64)),
                                    processed: processed_at(
                                        &corpus.partition(d, h_count),
                                        epoch,
                                        0,
                                        s_count,
                                    ),
                                });
                            }
                            wards.sort_by_key(|w| w.host);
                        }
                    }
                    for s in 0..s_count {
                        let g = epoch * s_count + s;
                        // Partition blocking is round-indexed: tell the
                        // fabric which global round the coming phases
                        // belong to.
                        ctx.begin_round(g);
                        if ctx.plan().crash_round(h) == Some(g) {
                            // Orphan the tallies *before* announcing the
                            // death: await_death releases survivors, and
                            // the next checkpoint writer must already see
                            // this record.
                            orphans_ref.lock().expect("orphan lock")[h] = Some((stats, pairs));
                            ctx.mark_self_dead();
                            let Some(e_rejoin) = readmission_epoch(
                                ctx.plan(),
                                h,
                                Some(g),
                                start_epoch,
                                p.epochs,
                                s_count,
                            ) else {
                                return Ok(HostOutcome {
                                    crashed: true,
                                    layers: Vec::new(),
                                    stats,
                                    pairs,
                                });
                            };
                            // Dormancy: wait for the adopter's state
                            // transfer at epoch `e_rejoin`'s boundary, take
                            // the partition back, resynchronize the phase
                            // counter, and re-enter the epoch loop there.
                            let (r, g2, t, l) = await_readmission(
                                &ctx, h_count, s_count, e_rejoin, n_words, p.dim,
                            )?;
                            (replica, rng, processed, live) = (r, g2, t, l);
                            // Alive again: this host's own counters carry
                            // its pre-crash work from here on.
                            orphans_ref.lock().expect("orphan lock")[h] = None;
                            wards.clear();
                            pending_migration = true;
                            ctx.resync_seq(
                                phases_per_round(cfg.plan)
                                    * ((e_rejoin - start_epoch) * s_count) as u64,
                            );
                            epoch = e_rejoin;
                            continue 'epochs;
                        }
                        // Peers scheduled to die this round: confirm each
                        // death through the runtime registry, then degrade
                        // the deterministic view every survivor shares.
                        let mut someone_died = false;
                        for peer in 0..h_count {
                            if peer != h
                                && live.is_alive(peer)
                                && ctx.plan().crash_round(peer) == Some(g)
                            {
                                ctx.await_death(peer);
                                live.mark_dead(peer);
                                someone_died = true;
                            }
                        }
                        if someone_died {
                            for d in 0..h_count {
                                if live.is_alive(d)
                                    || live.adopter_of(d) != Some(h)
                                    || wards.iter().any(|w| w.host == d)
                                {
                                    continue;
                                }
                                counters::bump(counters::RECOVERED_ADOPT);
                                wards.push(Ward {
                                    host: d,
                                    rng: Xoshiro256::new(root.derive(RECOVERY_RNG_BASE + d as u64)),
                                    processed: processed_at(
                                        &corpus.partition(d, h_count),
                                        epoch,
                                        s,
                                        s_count,
                                    ),
                                });
                            }
                            wards.sort_by_key(|w| w.host);
                        }
                        ctx.maybe_straggle(g);

                        // Own chunk first, then adopted chunks in dead-host
                        // order — the simulator applies updates to this
                        // replica in exactly this sequence.
                        for sentence in shard.round_chunk(s, s_count).sentences() {
                            let alpha = schedule.alpha_for_host(processed, h_count);
                            let mut store = ReplicaStore {
                                replica: &mut replica,
                            };
                            pairs += train_sentence_mode(
                                cfg.sgns,
                                &mut store,
                                sentence,
                                alpha,
                                &train_ctx,
                                &mut rng,
                                &mut scratch,
                            );
                            processed += sentence.len() as u64;
                        }
                        for w in wards.iter_mut() {
                            let ward_shard = corpus.partition(w.host, h_count);
                            for sentence in ward_shard.round_chunk(s, s_count).sentences() {
                                let alpha = schedule.alpha_for_host(w.processed, h_count);
                                let mut store = ReplicaStore {
                                    replica: &mut replica,
                                };
                                pairs += train_sentence_mode(
                                    cfg.sgns,
                                    &mut store,
                                    sentence,
                                    alpha,
                                    &train_ctx,
                                    &mut w.rng,
                                    &mut scratch,
                                );
                                w.processed += sentence.len() as u64;
                            }
                        }

                        // ---- PullModel inspection of the *next* round:
                        // replay its edge generation (own chunk plus
                        // wards) against a recorder with cloned RNGs —
                        // this host's rows of the access-set matrix, same
                        // replay the simulator runs (§4.4). ----
                        let access = if cfg.plan == SyncPlan::PullModel {
                            let next = if s + 1 < s_count {
                                Some(s + 1)
                            } else if epoch + 1 < p.epochs {
                                Some(0)
                            } else {
                                None
                            };
                            let mut sets = AccessSets::new(h_count, 2, n_words);
                            if let Some(next_s) = next {
                                let mut recorder = RecordingStore::new(n_words, p.dim);
                                let mut probe_rng = rng;
                                for sentence in shard.round_chunk(next_s, s_count).sentences() {
                                    train_sentence_mode(
                                        cfg.sgns,
                                        &mut recorder,
                                        sentence,
                                        0.0,
                                        &train_ctx,
                                        &mut probe_rng,
                                        &mut scratch,
                                    );
                                }
                                for w in wards.iter() {
                                    let ward_shard = corpus.partition(w.host, h_count);
                                    let mut ward_rng = w.rng;
                                    for sentence in
                                        ward_shard.round_chunk(next_s, s_count).sentences()
                                    {
                                        train_sentence_mode(
                                            cfg.sgns,
                                            &mut recorder,
                                            sentence,
                                            0.0,
                                            &train_ctx,
                                            &mut ward_rng,
                                            &mut scratch,
                                        );
                                    }
                                }
                                *sets.get_mut(h, 0) = recorder.syn0_access;
                                *sets.get_mut(h, 1) = recorder.syn1_access;
                            }
                            Some(sets)
                        } else {
                            None
                        };

                        sync_round_threaded_degraded(
                            &ctx,
                            &mut replica,
                            &sync_cfg,
                            access.as_ref(),
                            &mut stats,
                            &mut sync_scratch,
                            &live,
                            &mut wire,
                        )?;
                    }

                    // ---- Epoch-boundary checkpoint rendezvous. ----
                    let kill_here = faults_on && ctx.plan().kill_after_epoch == Some(epoch);
                    if let Some(dir) = ckpt_dir {
                        if (epoch + 1).is_multiple_of(ckpt_every)
                            || epoch + 1 == p.epochs
                            || kill_here
                        {
                            {
                                let mut slots = deposits_ref.lock().expect("deposit lock");
                                slots[h] = Some(HostSnapshot {
                                    layers: replica.layers.clone(),
                                    rng: rng.state(),
                                    processed,
                                    stats,
                                    pairs,
                                    wards: wards
                                        .iter()
                                        .map(|w| (w.host, w.rng.state(), w.processed))
                                        .collect(),
                                });
                            }
                            ctx.barrier_wait();
                            if (0..h_count).find(|&x| live.is_alive(x)) == Some(h) {
                                let mut slots = deposits_ref.lock().expect("deposit lock");
                                let orphan_slots = orphans_ref.lock().expect("orphan lock");
                                let ckpt = assemble_checkpoint(
                                    fingerprint,
                                    epoch,
                                    h_count,
                                    &live,
                                    &slots,
                                    &orphan_slots,
                                    resume_ckpt.as_ref(),
                                );
                                drop(orphan_slots);
                                ckpt.save_in(dir)
                                    .unwrap_or_else(|e| panic!("writing checkpoint: {e}"));
                                for slot in slots.iter_mut() {
                                    *slot = None;
                                }
                            }
                            ctx.barrier_wait();
                        }
                    }
                    if ctx.plan().kill_after_epoch == Some(epoch) && epoch + 1 < p.epochs {
                        // Whole-cluster stop; the lowest alive host counts it.
                        if (0..h_count).find(|&x| live.is_alive(x)) == Some(h) {
                            counters::bump(counters::INJECTED_KILL);
                        }
                        break;
                    }
                    epoch += 1;
                }
                Ok(HostOutcome {
                    crashed: false,
                    layers: replica.layers,
                    stats,
                    pairs,
                })
            },
        );

        // Coordinator: merge host outcomes onto the resume base, then
        // assemble the canonical model block-wise from each partition's
        // effective master (for RepModel plans every survivor's replica
        // is already canonical; for PullModel only the masters are).
        let mut stats = resume_ckpt.as_ref().map(|c| c.stats).unwrap_or_default();
        let base_rounds = stats.rounds;
        let mut pairs_trained = resume_ckpt.as_ref().map_or(0, |c| c.pairs_trained);
        let mut rounds = 0u64;
        let mut final_live = Liveness::all(h_count);
        let mut host_layers: Vec<Option<Vec<FlatMatrix>>> = Vec::with_capacity(h_count);
        for (h, outcome) in outcomes.into_iter().enumerate() {
            let outcome = outcome?;
            stats.merge(&outcome.stats);
            rounds = rounds.max(outcome.stats.rounds);
            pairs_trained += outcome.pairs;
            if outcome.crashed {
                final_live.mark_dead(h);
                host_layers.push(None);
            } else {
                host_layers.push(Some(outcome.layers));
            }
        }
        stats.rounds = base_rounds + rounds;
        // Dead hosts' replicas are never read by the block-wise assembly
        // (every effective master is alive); give them a survivor's
        // layers so the replica vector is uniformly shaped.
        let fallback = host_layers
            .iter()
            .flatten()
            .next()
            .expect("at least one host survives")
            .clone();
        let replicas: Vec<ModelReplica> = host_layers
            .into_iter()
            .map(|layers| ModelReplica::new(layers.unwrap_or_else(|| fallback.clone())))
            .collect();
        let mut it = assemble_canonical_live(&replicas, &final_live).into_iter();
        let model =
            Word2VecModel::from_layers(it.next().expect("syn0"), it.next().expect("syn1neg"));
        Ok(TrainResult {
            model,
            stats,
            compute_time: 0.0,
            comm_time: 0.0,
            wall_time: wall_start.elapsed().as_secs_f64(),
            pairs_trained,
            killed,
            resumed_from,
        })
    }
}

/// Reassembles a simulator-shaped [`Checkpoint`] from the rendezvous
/// deposits: live slots come from each host's snapshot, dead slots from
/// their adopters' ward records, and the totals ride on top of whatever
/// base this run resumed from.
fn assemble_checkpoint(
    fingerprint: u64,
    epoch: usize,
    h_count: usize,
    live: &Liveness,
    slots: &[Option<HostSnapshot>],
    orphans: &[Option<(CommStats, u64)>],
    base: Option<&Checkpoint>,
) -> Checkpoint {
    let mut stats = base.map(|c| c.stats).unwrap_or_default();
    let base_rounds = stats.rounds;
    let mut rounds = 0u64;
    let mut pairs_trained = base.map_or(0, |c| c.pairs_trained);
    // Dead hosts' pre-crash tallies, parked when they crashed this run.
    for (ostats, opairs) in orphans.iter().flatten() {
        stats.merge(ostats);
        pairs_trained += opairs;
    }
    let mut processed = vec![0u64; h_count];
    let mut rng_states = vec![[0u64; 4]; h_count];
    let mut layers: Vec<Option<Vec<FlatMatrix>>> = (0..h_count).map(|_| None).collect();
    for (h, slot) in slots.iter().enumerate() {
        let Some(snap) = slot else {
            assert!(!live.is_alive(h), "live host missed the rendezvous");
            continue;
        };
        stats.merge(&snap.stats);
        rounds = rounds.max(snap.stats.rounds);
        pairs_trained += snap.pairs;
        processed[h] = snap.processed;
        rng_states[h] = snap.rng;
        layers[h] = Some(snap.layers.clone());
        for &(d, state, proc) in &snap.wards {
            rng_states[d] = state;
            processed[d] = proc;
        }
    }
    stats.rounds = base_rounds + rounds;
    // Dead slots' layers are never read on resume (a dead host either
    // resigns or is overwritten by its adopter's state transfer at the
    // rejoin boundary); store the writer's view to keep the file shaped
    // exactly like the simulator's.
    let fallback = layers
        .iter()
        .flatten()
        .next()
        .expect("at least one live host deposits")
        .clone();
    Checkpoint {
        fingerprint,
        epoch,
        pairs_trained,
        compute_time: base.map_or(0.0, |c| c.compute_time),
        comm_time: base.map_or(0.0, |c| c.comm_time),
        processed,
        alive: (0..h_count).map(|h| live.is_alive(h)).collect(),
        rng_states,
        stats,
        layers: layers
            .into_iter()
            .map(|l| l.unwrap_or_else(|| fallback.clone()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::DistributedTrainer;
    use gw2v_combiner::CombinerKind;
    use gw2v_corpus::tokenizer::TokenizerConfig;
    use gw2v_corpus::vocab::VocabBuilder;
    use gw2v_gluon::cost::CostModel;

    fn corpus(n_sentences: usize) -> (Corpus, Vocabulary) {
        let mut text = String::new();
        for i in 0..n_sentences {
            match i % 3 {
                0 => text.push_str("a0 a1 a2 a3 a1 a2\n"),
                1 => text.push_str("b0 b1 b2 b3 b1 b2\n"),
                _ => text.push_str("c0 c1 a1 b1 c2 c0\n"),
            }
        }
        let mut b = VocabBuilder::new();
        for tok in text.split_whitespace() {
            b.add_token(tok);
        }
        let vocab = b.build(1);
        let cfg = TokenizerConfig {
            lowercase: false,
            max_sentence_len: 6,
        };
        (Corpus::from_text(&text, &vocab, cfg), vocab)
    }

    fn cfg(n_hosts: usize, rounds: usize) -> DistConfig {
        DistConfig {
            n_hosts,
            sync_rounds: rounds,
            plan: SyncPlan::RepModelOpt,
            combiner: CombinerKind::ModelCombiner,
            cost: CostModel::infiniband_56g(),
            wire: gw2v_gluon::wire::WireMode::IdValue,
            sgns: crate::trainer_hogbatch::SgnsMode::PerPair,
            on_partition: gw2v_faults::OnPartition::Stall,
            max_stale_rounds: 8,
        }
    }

    #[test]
    fn faultless_threaded_matches_simulator_bitwise() {
        let (corpus, vocab) = corpus(90);
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let sim = DistributedTrainer::new(params.clone(), cfg(3, 2)).train(&corpus, &vocab);
        let thr = ThreadedTrainer::new(params, cfg(3, 2))
            .train(&corpus, &vocab)
            .expect("faultless cluster run");
        assert_eq!(sim.model, thr.model, "engines must agree bit-for-bit");
        assert_eq!(sim.pairs_trained, thr.pairs_trained);
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
        assert_eq!(sim.stats.rounds, thr.stats.rounds);
    }

    #[test]
    fn hogbatch_threaded_matches_simulator_bitwise() {
        // PullModel + HogBatch is the strictest combination: both the
        // training and the inspection-replay sites must dispatch to the
        // minibatch loop identically in both engines.
        let (corpus, vocab) = corpus(90);
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let dc = DistConfig {
            plan: SyncPlan::PullModel,
            sgns: crate::trainer_hogbatch::SgnsMode::HogBatch,
            ..cfg(3, 2)
        };
        let sim = DistributedTrainer::new(params.clone(), dc).train(&corpus, &vocab);
        let thr = ThreadedTrainer::new(params, dc)
            .train(&corpus, &vocab)
            .expect("hogbatch cluster run");
        assert_eq!(sim.model, thr.model, "engines must agree bit-for-bit");
        assert_eq!(sim.pairs_trained, thr.pairs_trained);
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
    }

    #[test]
    fn pull_model_threaded_matches_simulator_bitwise() {
        let (corpus, vocab) = corpus(90);
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let dc = DistConfig {
            plan: SyncPlan::PullModel,
            ..cfg(3, 2)
        };
        let sim = DistributedTrainer::new(params.clone(), dc).train(&corpus, &vocab);
        let thr = ThreadedTrainer::new(params, dc)
            .train(&corpus, &vocab)
            .expect("pull-model cluster run");
        assert_eq!(sim.model, thr.model, "engines must agree bit-for-bit");
        assert_eq!(sim.pairs_trained, thr.pairs_trained);
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
    }

    #[test]
    fn rejoined_host_matches_simulator_bitwise() {
        let (corpus, vocab) = corpus(90);
        let params = Hyperparams {
            epochs: 3,
            ..Hyperparams::test_scale()
        };
        let plan = FaultPlan::parse("seed=7,crash=1@1,rejoin=1@2").unwrap();
        let sim = DistributedTrainer::new(params.clone(), cfg(3, 2))
            .with_faults(plan.clone())
            .train(&corpus, &vocab);
        let thr = ThreadedTrainer::new(params, cfg(3, 2))
            .with_faults(plan)
            .train(&corpus, &vocab)
            .expect("rejoin cluster run");
        assert_eq!(sim.model, thr.model, "engines must agree bit-for-bit");
        assert_eq!(sim.pairs_trained, thr.pairs_trained);
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
    }
}
