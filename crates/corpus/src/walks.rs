//! Seeded random-walk corpora: DeepWalk and node2vec over a
//! [`WalkGraph`](crate::graphs::WalkGraph).
//!
//! The generator turns a graph into plain text — one walk per line,
//! nodes spelled via [`node_word`](crate::graphs::node_word) — so the
//! entire existing pipeline (tokenizer → vocabulary → sharded corpus →
//! any trainer) consumes graphs *unchanged*. node2vec's second-order
//! bias (Grover & Leskovec 2016) is controlled by the return parameter
//! `p` and in-out parameter `q`: stepping from `t` to `v`, the next hop
//! `x` is drawn proportionally to `1/p` if `x == t`, `1` if `x` is also
//! a neighbour of `t`, and `1/q` otherwise. All transitions — first
//! step and biased steps alike — are drawn through the same Walker
//! alias sampler ([`crate::unigram::AliasSampler`]), so `p = q = 1`
//! degenerates to the uniform DeepWalk random walk **bit-identically**:
//! uniform weights make the alias table a pass-through that consumes
//! the exact same RNG draws.
//!
//! Determinism contract: the corpus is a pure function of
//! `(seed, graph, params)`. Each walk owns a private RNG stream derived
//! as `SplitMix64::new(seed).derive(round * n_nodes + start_node)`, so
//! the output is independent of generation order and identical across
//! SIMD backends and engines (walk generation is pure scalar code; the
//! CI graph-smoke job byte-compares scalar vs dispatched anyway).

use crate::graphs::{node_word, WalkGraph};
use crate::unigram::{AliasSampler, NegativeSampler};
use gw2v_util::rng::{SplitMix64, Xoshiro256};

/// Parameters of a node2vec walk ensemble.
#[derive(Clone, Debug, PartialEq)]
pub struct WalkParams {
    /// Walks started from every node (rounds).
    pub walks_per_node: usize,
    /// Nodes per walk, including the start node.
    pub walk_length: usize,
    /// Return parameter: weight `1/p` for stepping back to the
    /// previous node. `p = q = 1` is a uniform (DeepWalk) walk.
    pub p: f64,
    /// In-out parameter: weight `1/q` for stepping to a node not
    /// adjacent to the previous one.
    pub q: f64,
    /// Root seed of the walk ensemble.
    pub seed: u64,
}

impl Default for WalkParams {
    fn default() -> Self {
        Self {
            walks_per_node: 10,
            walk_length: 40,
            p: 1.0,
            q: 1.0,
            seed: 1,
        }
    }
}

impl WalkParams {
    fn validate(&self) {
        assert!(self.walks_per_node >= 1, "need at least one walk per node");
        assert!(
            self.walk_length >= 1,
            "walks contain at least the start node"
        );
        assert!(
            self.p > 0.0 && self.q > 0.0,
            "node2vec p and q must be positive"
        );
    }

    /// True if the parameters require second-order (edge-conditioned)
    /// transition tables; `p = q = 1` is served by first-order tables
    /// with bit-identical output.
    pub fn is_biased(&self) -> bool {
        self.p != 1.0 || self.q != 1.0
    }
}

/// A generated walk corpus: text ready for the tokenizer pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkCorpus {
    /// One walk per line, nodes as `n{id}` tokens.
    pub text: String,
    /// Number of walks (lines).
    pub n_walks: usize,
    /// Number of node tokens across all walks.
    pub n_tokens: usize,
}

/// Per-directed-edge alias tables for biased second-order transitions.
///
/// The table of directed edge `t → v` (where `v` is the `j`-th
/// neighbour of `t`, table index `edge_base[t] + j`) distributes over
/// the neighbours of `v` with node2vec weights conditioned on `t`.
struct SecondOrderTables {
    edge_base: Vec<usize>,
    tables: Vec<AliasSampler>,
}

impl SecondOrderTables {
    fn build(graph: &WalkGraph, p: f64, q: f64) -> Self {
        let n = graph.n_nodes();
        let mut edge_base = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        edge_base.push(0);
        for u in 0..n as u32 {
            acc += graph.degree(u);
            edge_base.push(acc);
        }
        let mut tables = Vec::with_capacity(acc);
        let mut weights: Vec<f64> = Vec::new();
        for t in 0..n as u32 {
            for &v in graph.neighbors(t) {
                weights.clear();
                weights.extend(graph.neighbors(v).iter().map(|&x| {
                    if x == t {
                        1.0 / p
                    } else if graph.has_edge(t, x) {
                        1.0
                    } else {
                        1.0 / q
                    }
                }));
                tables.push(AliasSampler::from_weights(&weights));
            }
        }
        Self { edge_base, tables }
    }

    /// The table conditioned on having stepped `t → v`.
    fn table(&self, graph: &WalkGraph, t: u32, v: u32) -> &AliasSampler {
        let j = graph
            .neighbors(t)
            .binary_search(&v)
            .expect("t → v must be an edge of the walk");
        &self.tables[self.edge_base[t as usize] + j]
    }
}

/// Generates the walk corpus for `graph` under `params`. Pure function
/// of its arguments; see the module docs for the determinism contract.
/// Isolated nodes produce single-token walks (`walk_length` is an upper
/// bound only for them).
pub fn generate_walks(graph: &WalkGraph, params: &WalkParams) -> WalkCorpus {
    generate_impl(graph, params, params.is_biased())
}

/// Test seam: forces the second-order (edge-table) code path even when
/// `p = q = 1`, to pin that it degenerates bit-identically to the
/// first-order uniform walk.
#[doc(hidden)]
pub fn generate_walks_second_order(graph: &WalkGraph, params: &WalkParams) -> WalkCorpus {
    generate_impl(graph, params, true)
}

fn generate_impl(graph: &WalkGraph, params: &WalkParams, second_order: bool) -> WalkCorpus {
    params.validate();
    let n = graph.n_nodes();
    // First-order tables: uniform over each node's neighbours. Built
    // through the alias sampler (not a bare index draw) so biased and
    // uniform walks consume identical RNG streams.
    let node_tables: Vec<Option<AliasSampler>> = (0..n as u32)
        .map(|u| {
            let d = graph.degree(u);
            (d > 0).then(|| AliasSampler::from_weights(&vec![1.0; d]))
        })
        .collect();
    let edge_tables = second_order.then(|| SecondOrderTables::build(graph, params.p, params.q));

    let root = SplitMix64::new(params.seed);
    let mut text = String::new();
    let mut n_tokens = 0usize;
    for round in 0..params.walks_per_node {
        for start in 0..n as u32 {
            let mut rng = Xoshiro256::new(root.derive((round * n + start as usize) as u64));
            let mut prev = start;
            let mut cur = start;
            text.push_str(&node_word(start));
            n_tokens += 1;
            for step in 1..params.walk_length {
                let next = if step == 1 {
                    // No previous edge yet: uniform first hop (or stop
                    // at an isolated start node).
                    match &node_tables[cur as usize] {
                        None => break,
                        Some(t) => graph.neighbors(cur)[t.sample(&mut rng) as usize],
                    }
                } else if let Some(tables) = &edge_tables {
                    let t = tables.table(graph, prev, cur);
                    graph.neighbors(cur)[t.sample(&mut rng) as usize]
                } else {
                    let t = node_tables[cur as usize]
                        .as_ref()
                        .expect("reached nodes have at least one neighbour");
                    graph.neighbors(cur)[t.sample(&mut rng) as usize]
                };
                prev = cur;
                cur = next;
                text.push(' ');
                text.push_str(&node_word(cur));
                n_tokens += 1;
            }
            text.push('\n');
        }
    }
    WalkCorpus {
        text,
        n_walks: params.walks_per_node * n,
        n_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{sbm, WalkGraph};

    fn ring(n: u32) -> WalkGraph {
        let edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
        WalkGraph::from_edges(n as usize, &edges).unwrap()
    }

    #[test]
    fn corpus_shape_and_tokens() {
        let g = ring(10);
        let params = WalkParams {
            walks_per_node: 3,
            walk_length: 7,
            ..WalkParams::default()
        };
        let c = generate_walks(&g, &params);
        assert_eq!(c.n_walks, 30);
        assert_eq!(c.n_tokens, 30 * 7, "no isolated nodes: full-length walks");
        assert_eq!(c.text.lines().count(), 30);
        for line in c.text.lines() {
            assert_eq!(line.split_whitespace().count(), 7);
        }
    }

    #[test]
    fn isolated_node_single_token_walk() {
        // Node 2 is isolated; nodes 0–1 form an edge.
        let g = WalkGraph::from_edges(3, &[(0, 1)]).unwrap();
        let c = generate_walks(
            &g,
            &WalkParams {
                walks_per_node: 1,
                walk_length: 5,
                ..WalkParams::default()
            },
        );
        let lines: Vec<&str> = c.text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], "n2", "isolated start stops immediately");
        assert_eq!(lines[0].split_whitespace().count(), 5);
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, _) = sbm(&[15, 15], 0.3, 0.02, 4);
        let params = WalkParams {
            walks_per_node: 2,
            walk_length: 10,
            seed: 77,
            ..WalkParams::default()
        };
        assert_eq!(generate_walks(&g, &params), generate_walks(&g, &params));
        let other = WalkParams {
            seed: 78,
            ..params.clone()
        };
        assert_ne!(generate_walks(&g, &params), generate_walks(&g, &other));
    }

    #[test]
    fn pq_one_degenerates_to_uniform_bitwise() {
        let (g, _) = sbm(&[15, 15], 0.3, 0.02, 4);
        let params = WalkParams {
            walks_per_node: 2,
            walk_length: 12,
            p: 1.0,
            q: 1.0,
            seed: 9,
        };
        assert!(!params.is_biased());
        assert_eq!(
            generate_walks(&g, &params),
            generate_walks_second_order(&g, &params),
            "uniform alias tables must be a pass-through"
        );
    }

    #[test]
    fn biased_walks_differ_from_uniform() {
        let (g, _) = sbm(&[15, 15], 0.3, 0.02, 4);
        let uniform = WalkParams {
            walks_per_node: 2,
            walk_length: 12,
            seed: 9,
            ..WalkParams::default()
        };
        let biased = WalkParams {
            p: 0.25,
            q: 4.0,
            ..uniform.clone()
        };
        assert!(biased.is_biased());
        assert_ne!(generate_walks(&g, &uniform), generate_walks(&g, &biased));
    }

    #[test]
    fn every_transition_is_an_edge() {
        let (g, _) = sbm(&[12, 12], 0.35, 0.05, 6);
        let c = generate_walks(
            &g,
            &WalkParams {
                walks_per_node: 2,
                walk_length: 9,
                p: 0.5,
                q: 2.0,
                seed: 3,
            },
        );
        for line in c.text.lines() {
            let ids: Vec<u32> = line
                .split_whitespace()
                .map(|w| crate::graphs::parse_node_word(w).unwrap())
                .collect();
            for pair in ids.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "{} -> {}", pair[0], pair[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_p_rejected() {
        let g = ring(4);
        generate_walks(
            &g,
            &WalkParams {
                p: 0.0,
                ..WalkParams::default()
            },
        );
    }
}
