//! Tokenization and streaming sentence extraction.
//!
//! The corpus format is the same as the Word2Vec C tool's: plain text,
//! words separated by ASCII whitespace, newlines treated like any other
//! separator. "Sentences" for training are fixed-size windows of at most
//! [`TokenizerConfig::max_sentence_len`] words (the paper uses 10 000);
//! this caps the memory the per-sentence buffers need and bounds the
//! context-window wraparound.

use std::io::BufRead;

/// Tokenizer configuration.
#[derive(Clone, Debug)]
pub struct TokenizerConfig {
    /// Convert tokens to ASCII lowercase.
    pub lowercase: bool,
    /// Maximum words per training sentence; longer runs are split.
    pub max_sentence_len: usize,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        Self {
            lowercase: false,
            max_sentence_len: 10_000,
        }
    }
}

/// Splits one line into word tokens (ASCII whitespace separated).
pub fn tokenize_line(line: &str) -> impl Iterator<Item = &str> {
    line.split_ascii_whitespace()
}

/// Streams sentences from a reader.
///
/// Each yielded sentence has between 1 and `config.max_sentence_len`
/// tokens. Input lines are concatenated into the running sentence buffer;
/// the buffer is flushed when it reaches the maximum length, so the
/// sentence structure of the text (newlines) does *not* create sentence
/// boundaries — matching the C implementation's treatment of a corpus as
/// one long word stream chopped into fixed windows.
pub struct SentenceStream<R: BufRead> {
    reader: R,
    config: TokenizerConfig,
    pending: Vec<String>,
    done: bool,
}

impl<R: BufRead> SentenceStream<R> {
    /// Creates a stream over `reader` with the given config.
    pub fn new(reader: R, config: TokenizerConfig) -> Self {
        Self {
            reader,
            config,
            pending: Vec::new(),
            done: false,
        }
    }
}

impl<R: BufRead> Iterator for SentenceStream<R> {
    type Item = std::io::Result<Vec<String>>;

    fn next(&mut self) -> Option<Self::Item> {
        let max = self.config.max_sentence_len;
        let mut line = String::new();
        loop {
            if self.pending.len() >= max {
                let rest = self.pending.split_off(max);
                let full = std::mem::replace(&mut self.pending, rest);
                return Some(Ok(full));
            }
            if self.done {
                if self.pending.is_empty() {
                    return None;
                }
                return Some(Ok(std::mem::take(&mut self.pending)));
            }
            line.clear();
            match self.reader.read_line(&mut line) {
                Err(e) => return Some(Err(e)),
                Ok(0) => {
                    self.done = true;
                }
                Ok(_) => {
                    for tok in tokenize_line(&line) {
                        let word = if self.config.lowercase {
                            tok.to_ascii_lowercase()
                        } else {
                            tok.to_owned()
                        };
                        self.pending.push(word);
                    }
                }
            }
        }
    }
}

/// Convenience: collect all sentences from an in-memory text.
pub fn sentences_from_text(text: &str, config: TokenizerConfig) -> Vec<Vec<String>> {
    SentenceStream::new(std::io::Cursor::new(text), config)
        .map(|s| s.expect("in-memory read cannot fail"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_line_splits_whitespace() {
        let toks: Vec<&str> = tokenize_line("  the quick\tbrown   fox ").collect();
        assert_eq!(toks, vec!["the", "quick", "brown", "fox"]);
        assert_eq!(tokenize_line("").count(), 0);
        assert_eq!(tokenize_line("   \t ").count(), 0);
    }

    #[test]
    fn stream_respects_max_len() {
        let text = "a b c d e f g";
        let cfg = TokenizerConfig {
            lowercase: false,
            max_sentence_len: 3,
        };
        let sents = sentences_from_text(text, cfg);
        assert_eq!(
            sents,
            vec![vec!["a", "b", "c"], vec!["d", "e", "f"], vec!["g"]]
        );
    }

    #[test]
    fn newlines_do_not_break_sentences() {
        let text = "a b\nc d\ne";
        let cfg = TokenizerConfig {
            lowercase: false,
            max_sentence_len: 4,
        };
        let sents = sentences_from_text(text, cfg);
        assert_eq!(sents, vec![vec!["a", "b", "c", "d"], vec!["e"]]);
    }

    #[test]
    fn lowercase_option() {
        let cfg = TokenizerConfig {
            lowercase: true,
            max_sentence_len: 10,
        };
        let sents = sentences_from_text("The QUICK Fox", cfg);
        assert_eq!(sents, vec![vec!["the", "quick", "fox"]]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(sentences_from_text("", TokenizerConfig::default()).is_empty());
        assert!(sentences_from_text(" \n\t\n", TokenizerConfig::default()).is_empty());
    }

    #[test]
    fn exact_multiple_of_max_len() {
        let cfg = TokenizerConfig {
            lowercase: false,
            max_sentence_len: 2,
        };
        let sents = sentences_from_text("a b c d", cfg);
        assert_eq!(sents, vec![vec!["a", "b"], vec!["c", "d"]]);
    }
}
