//! # gw2v-gluon
//!
//! The communication substrate — the Gluon analogue (paper §2.4, §4.3,
//! §4.4) specialized for synchronizing replicated vector models across
//! simulated hosts.
//!
//! The model is fully replicated (every host has a proxy for every node,
//! paper §4.2); masters are assigned in contiguous blocks. Each
//! synchronization round runs the Gluon protocol:
//!
//! 1. hosts compute *deltas* for the nodes they touched since the last
//!    sync (current value minus the snapshot taken on first touch);
//! 2. **reduce** — touched mirror deltas are shipped to the node's master
//!    host and folded together with a [`gw2v_combiner::CombinerKind`]
//!    (Sum / Avg / the paper's Model Combiner);
//! 3. **broadcast** — reconciled canonical values are shipped back to
//!    mirrors.
//!
//! Three communication plans reproduce the paper's variants (§4.4):
//! [`SyncPlan::RepModelNaive`] ships everything both ways;
//! [`SyncPlan::RepModelOpt`] ships only touched/updated nodes (bit-vector
//! sparse); [`SyncPlan::PullModel`] additionally restricts the broadcast
//! to the nodes each host will access in its *next* round, supplied by an
//! inspection pass. All three plans produce bit-identical models — they
//! differ only in bytes moved — and tests pin that invariant.
//!
//! Two engines execute the protocol:
//!
//! * [`sync::sync_round`] — deterministic sequential engine (hosts
//!   processed in id order within one thread). Exact and reproducible;
//!   all scaling experiments use it, paired with [`cost::CostModel`] to
//!   convert measured bytes into modeled network time (this reproduction
//!   runs on a single machine — see DESIGN.md §1).
//! * [`threaded::run_cluster`] — one OS thread per host exchanging
//!   serialized [`wire`] buffers over crossbeam channels with barrier
//!   separation; produces bit-identical results to the sequential engine
//!   (messages are folded in host-id order).
//!
//! Both engines take an optional reusable scratch
//! ([`sync::SyncScratch`] / [`threaded::ThreadedSyncScratch`]) so
//! steady-state rounds run without heap allocation in the
//! reduce/broadcast path; results are bit-identical either way.

#![deny(missing_docs)]
// Index-driven loops across parallel per-host arrays are clearer than
// iterator chains in the synchronization protocol code.
#![allow(clippy::needless_range_loop)]

pub mod cost;
pub mod liveness;
pub mod plan;
pub mod replica;
pub mod sync;
pub mod threaded;
pub mod volume;
pub mod wire;

pub use cost::{nak_backoff_secs, CostModel, NAK_BACKOFF_EXP_CAP};
pub use liveness::{Liveness, SharedLiveness};
pub use plan::{AccessSets, SyncConfig, SyncPlan};
pub use replica::{DeltaTracker, ModelReplica};
pub use sync::{sync_round, sync_round_degraded, sync_round_with_scratch, SyncScratch};
pub use threaded::{ClusterConfig, ClusterError};
pub use volume::{CommStats, RoundVolume};
pub use wire::{
    open_frame, seal_frame, DeltaForm, DeltaShadow, QuantScratch, WireError, WireMemo, WireMode,
    WireState,
};
