//! Connected components by label propagation.
//!
//! Each node's label starts as its own id; every round each edge pulls
//! the minimum label across it; min-reduce reconciles proxies. At the
//! fixed point every node in a (weakly, if the input is symmetrized)
//! connected component carries the component's minimum node id.

use crate::bsp::{BspRuntime, SyncStats};
use crate::csr::Csr;
use crate::partition::Partitioned;

/// Sequential reference: union-find with path compression.
pub fn cc_sequential<W: Copy>(g: &Csr<W>) -> Vec<u32> {
    let n = g.n_nodes();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (s, d, _) in g.all_edges() {
        let rs = find(&mut parent, s);
        let rd = find(&mut parent, d);
        if rs != rd {
            // Union by smaller id so the representative is the min id.
            let (lo, hi) = if rs < rd { (rs, rd) } else { (rd, rs) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|x| find(&mut parent, x)).collect()
}

/// Distributed label propagation. Treats edges as undirected by
/// propagating labels in both directions across each local edge.
pub fn cc_distributed<W: Copy>(parted: &Partitioned<W>) -> (Vec<u32>, SyncStats) {
    let mut rt: BspRuntime<u32, W> = BspRuntime::new(parted, |g| g);
    loop {
        for host in 0..parted.parts.len() {
            let part = &parted.parts[host];
            let (labels, touched) = rt.host_mut(host);
            // Iterate to a local fixed point each round to cut down the
            // number of global rounds (standard optimization).
            let mut local_changed = true;
            while local_changed {
                local_changed = false;
                for u in 0..part.local_graph.n_nodes() as u32 {
                    for &v in part.local_graph.neighbors(u) {
                        let (lu, lv) = (labels[u as usize], labels[v as usize]);
                        if lu < lv {
                            labels[v as usize] = lu;
                            touched.set(v as usize);
                            local_changed = true;
                        } else if lv < lu {
                            labels[u as usize] = lv;
                            touched.set(u as usize);
                            local_changed = true;
                        }
                    }
                }
            }
        }
        let (any_touched, _) = rt.sync(|canonical, incoming| {
            if incoming < *canonical {
                *canonical = incoming;
                true
            } else {
                false
            }
        });
        if !any_touched {
            break;
        }
    }
    let labels = (0..parted.n_nodes as u32)
        .map(|g| rt.read_canonical(g))
        .collect();
    (labels, *rt.stats())
}

/// Number of distinct components in a label assignment.
pub fn component_count(labels: &[u32]) -> usize {
    let mut set: Vec<u32> = labels.to_vec();
    set.sort_unstable();
    set.dedup();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::partition_blocked;

    /// Adds reverse edges so directed inputs become symmetric.
    fn symmetrize(g: &Csr<u32>) -> Csr<u32> {
        let mut edges: Vec<(u32, u32, u32)> = g.all_edges().collect();
        edges.extend(g.all_edges().map(|(s, d, w)| (d, s, w)));
        Csr::from_edges(g.n_nodes(), &edges)
    }

    #[test]
    fn two_components() {
        let g: Csr = Csr::from_edges(5, &[(0, 1, ()), (1, 0, ()), (3, 4, ()), (4, 3, ())]);
        let want = vec![0, 0, 2, 3, 3];
        assert_eq!(cc_sequential(&g), want);
        for hosts in [1, 2, 4] {
            let p = partition_blocked(&g, hosts);
            let (got, _) = cc_distributed(&p);
            assert_eq!(got, want, "hosts={hosts}");
        }
    }

    #[test]
    fn all_isolated() {
        let g: Csr = Csr::from_edges(4, &[]);
        let p = partition_blocked(&g, 2);
        let (labels, _) = cc_distributed(&p);
        assert_eq!(labels, vec![0, 1, 2, 3]);
        assert_eq!(component_count(&labels), 4);
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        for seed in [10u64, 20, 30] {
            let g = symmetrize(&gen::uniform_random(50, 60, 1, seed));
            let want = cc_sequential(&g);
            for hosts in [1, 3, 5] {
                let p = partition_blocked(&g, hosts);
                let (got, _) = cc_distributed(&p);
                assert_eq!(got, want, "seed={seed} hosts={hosts}");
            }
        }
    }

    #[test]
    fn grid_is_one_component() {
        let g = gen::grid(8, 8);
        let p = partition_blocked(&g, 4);
        let (labels, _) = cc_distributed(&p);
        assert_eq!(component_count(&labels), 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn rmat_matches() {
        let g = symmetrize(&gen::rmat(6, 4, 5, gen::RMAT_GRAPH500));
        let want = cc_sequential(&g);
        let p = partition_blocked(&g, 6);
        let (got, _) = cc_distributed(&p);
        assert_eq!(got, want);
    }
}
