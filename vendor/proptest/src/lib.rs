//! Minimal, self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the narrow property-testing surface the workspace uses:
//! the `proptest!` macro (with `#![proptest_config(...)]`), range and tuple
//! strategies, `Just`, `any::<T>()`, `prop_oneof!`, `collection::vec`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports the seed and the generated
//!   inputs; rerun with `PROPTEST_SEED=<seed>` to reproduce exactly.
//! - Generation is a plain seeded SplitMix64 stream (no recursive
//!   strategy trees, no local rejection bookkeeping beyond `prop_assume!`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Convenient glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Error signalled by a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

/// Per-test configuration. Only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this stub trades a little coverage
        // for suite runtime. Heavier tests override via with_cases anyway.
        Self { cases: 64 }
    }
}

/// Seeded SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    /// The seed this stream started from (reported on failure).
    pub seed: u64,
}

impl TestRng {
    /// Creates a generator from `PROPTEST_SEED` if set, else from the clock.
    pub fn from_env() -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .trim()
                .parse::<u64>()
                .expect("PROPTEST_SEED must be a u64"),
            Err(_) => {
                let now = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
                now ^ (std::process::id() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            }
        };
        Self::from_seed(seed)
    }

    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed, seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of test-case inputs.
///
/// Unlike real proptest there is no value tree: `generate` directly yields
/// a value from the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Strategy producing a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u8, u16, u32, u64);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`Arbitrary`] types; construct via [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given non-empty alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(element, len)` — a vector whose length is drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Formats generated inputs for a failure report.
pub fn format_inputs(pairs: &[(&str, String)]) -> String {
    pairs
        .iter()
        .map(|(name, value)| format!("    {name} = {value}\n"))
        .collect()
}

/// Runs one property given a config; used by the `proptest!` expansion.
pub fn run_property<F>(cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    let mut rng = TestRng::from_env();
    let seed = rng.seed;
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cfg.cases.saturating_mul(16).max(256);
    while passed < cfg.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest stub: too many rejected cases ({} accepted of {} wanted; seed {seed}); \
             loosen prop_assume! or the strategies",
            passed,
            cfg.cases
        );
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err((TestCaseError::Reject, _)) => {}
            Err((TestCaseError::Fail(msg), inputs)) => {
                panic!(
                    "proptest case failed: {msg}\n  reproduce with PROPTEST_SEED={seed}\n  \
                     inputs:\n{inputs}"
                );
            }
        }
    }
}

/// Declares property tests. Mirrors real proptest's surface for plain
/// `name(binding in strategy, ...)` functions with an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_property(&__cfg, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __inputs = $crate::format_inputs(&[
                        $((stringify!($arg), format!("{:?}", $arg))),+
                    ]);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __outcome.map_err(|e| (e, __inputs))
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", ...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __a, __b
        );
    }};
}

/// `prop_assert_ne!(a, b)` / `prop_assert_ne!(a, b, "fmt", ...)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "{}\n  both: {:?}",
            format!($($fmt)+), __a
        );
    }};
}

/// `prop_assume!(cond)` — rejects the case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// `prop_oneof![a, b, c]` — uniform choice among strategies of one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0usize..8, any::<bool>()), 0..20)) {
            prop_assert!(v.len() < 20);
            for (n, _flag) in &v {
                prop_assert!(*n < 8);
            }
        }

        #[test]
        fn oneof_only_yields_options(k in prop_oneof![Just(1u32), Just(5u32), Just(9u32)]) {
            prop_assert!(k == 1 || k == 5 || k == 9);
        }

        #[test]
        fn assume_rejects(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_parses(x in 0u32..4) {
            prop_assert!(x < 4);
        }
    }

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = crate::TestRng::from_seed(42);
        let mut b = crate::TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
