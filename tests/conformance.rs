//! Differential conformance suite: threaded engine vs BSP simulator.
//!
//! The two engines implement the same protocol on very different
//! substrates — virtual clocks and in-order folds on one side, OS
//! threads, CRC-framed transport and real barriers on the other. The
//! contract is that for every sync plan and every fault family they
//! produce **bit-identical** final models (`syn0`/`syn1neg`) and train
//! the same number of pairs. Virtual-time numbers and fault counters are
//! explicitly *not* compared: the simulator models retransmission
//! latency analytically while the threaded engine lives it (different
//! retry counts, n−1 observers per crash instead of one).
//!
//! The suite also pins the threaded engine's checkpoint/resume story:
//! kill → resume must be bit-for-bit the uninterrupted run, including
//! when a host is dead at the checkpoint and re-admitted after resume.

use graph_word2vec::combiner::CombinerKind;
use graph_word2vec::core::distributed::{DistConfig, DistributedTrainer, TrainResult};
use graph_word2vec::core::params::Hyperparams;
use graph_word2vec::core::trainer_threaded::ThreadedTrainer;
use graph_word2vec::corpus::datasets::{DatasetPreset, Scale};
use graph_word2vec::corpus::shard::Corpus;
use graph_word2vec::corpus::tokenizer::{sentences_from_text, TokenizerConfig};
use graph_word2vec::corpus::vocab::{VocabBuilder, Vocabulary};
use graph_word2vec::faults::FaultPlan;
use graph_word2vec::gluon::cost::CostModel;
use graph_word2vec::gluon::plan::SyncPlan;
use graph_word2vec::gluon::{ClusterConfig, WireMode};
use std::path::PathBuf;
use std::time::Duration;

const PLANS: [SyncPlan; 3] = [
    SyncPlan::RepModelNaive,
    SyncPlan::RepModelOpt,
    SyncPlan::PullModel,
];

fn prepare() -> (Vocabulary, Corpus, Hyperparams) {
    let preset = DatasetPreset::by_name("1-billion").expect("preset");
    let synth = preset.generate(Scale::Tiny, 42);
    let cfg = TokenizerConfig::default();
    let mut b = VocabBuilder::new();
    for s in sentences_from_text(&synth.text, cfg.clone()) {
        b.add_sentence(&s);
    }
    let vocab = b.build(1);
    // Shrink the corpus so the threaded runs stay fast.
    let corpus = Corpus::from_sentences(
        Corpus::from_text(&synth.text, &vocab, cfg)
            .sentences()
            .iter()
            .take(240)
            .cloned()
            .collect(),
    );
    let params = Hyperparams {
        dim: 16,
        window: 3,
        negative: 3,
        epochs: 3,
        seed: 11,
        ..Hyperparams::default()
    };
    (vocab, corpus, params)
}

fn dist_cfg(plan: SyncPlan) -> DistConfig {
    DistConfig {
        n_hosts: 3,
        sync_rounds: 2,
        plan,
        combiner: CombinerKind::ModelCombiner,
        cost: CostModel::infiniband_56g(),
        wire: WireMode::IdValue,
        sgns: graph_word2vec::core::trainer_hogbatch::SgnsMode::PerPair,
        on_partition: graph_word2vec::faults::OnPartition::Stall,
        max_stale_rounds: 8,
    }
}

fn fast_cluster() -> ClusterConfig {
    ClusterConfig {
        tick: Duration::from_millis(1),
        nak_delay: Duration::from_millis(10),
        ..ClusterConfig::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gw2v-conf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs both engines under `plan_str` and asserts model + pairs
/// bit-identity; returns the pair for extra per-family assertions.
fn run_pair(sync: SyncPlan, plan_str: &str) -> (TrainResult, TrainResult) {
    run_pair_wire(sync, WireMode::IdValue, plan_str)
}

/// [`run_pair`] with an explicit wire payload mode.
fn run_pair_wire(sync: SyncPlan, wire: WireMode, plan_str: &str) -> (TrainResult, TrainResult) {
    let (vocab, corpus, params) = prepare();
    let cfg = DistConfig {
        wire,
        ..dist_cfg(sync)
    };
    let plan = FaultPlan::parse(plan_str).expect("fault plan");
    let sim = DistributedTrainer::new(params.clone(), cfg)
        .with_faults(plan.clone())
        .train(&corpus, &vocab);
    let thr = ThreadedTrainer::new(params, cfg)
        .with_faults(plan)
        .with_cluster_config(fast_cluster())
        .train(&corpus, &vocab)
        .expect("threaded run must complete");
    assert_eq!(
        sim.model, thr.model,
        "[{sync:?} / {plan_str:?}] engines must agree bit-for-bit"
    );
    assert_eq!(
        sim.pairs_trained, thr.pairs_trained,
        "[{sync:?} / {plan_str:?}] pair counts must agree"
    );
    (sim, thr)
}

/// Faultless: every plan, both engines, identical bits and identical
/// communication volume.
#[test]
fn conformance_faultless_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair(sync, "seed=7");
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
        assert_eq!(sim.stats.rounds, thr.stats.rounds);
    }
}

/// Message corruption: drops and bit-flips are repaired by NAK/resend in
/// the threaded engine and charged as virtual latency in the simulator —
/// the model bits must come out untouched either way.
#[test]
fn conformance_drops_and_flips_all_plans() {
    for sync in PLANS {
        run_pair(sync, "seed=7,drop=0.03,flip=0.02");
    }
}

/// Host crash mid-run: the survivor adoption protocol must degrade both
/// engines identically, shard bytes included.
#[test]
fn conformance_crash_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair(sync, "seed=7,crash=1@2");
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
        assert!(!sim.killed && !thr.killed);
    }
}

/// Stragglers delay but never change arithmetic.
#[test]
fn conformance_straggle_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair(sync, "seed=7,straggle=2@1x15ms");
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
    }
}

/// Crash → re-admission: the rejoined host takes its partition back at
/// an epoch boundary (an analytic copy in the simulator, a CRC-sealed
/// state stream from the adopter in the threaded engine) and both
/// engines land on the same bits.
#[test]
fn conformance_rejoin_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair(sync, "seed=7,crash=1@1,rejoin=1@2");
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
    }
}

/// Threaded checkpoint → kill → resume must reproduce the uninterrupted
/// threaded run bit-for-bit (which itself matches the simulator).
#[test]
fn threaded_kill_resume_is_bit_identical() {
    let (vocab, corpus, params) = prepare();
    let cfg = dist_cfg(SyncPlan::RepModelOpt);
    let dir = tmpdir("thr-resume");

    let uninterrupted = ThreadedTrainer::new(params.clone(), cfg)
        .with_cluster_config(fast_cluster())
        .train(&corpus, &vocab)
        .expect("uninterrupted run");

    let killed = ThreadedTrainer::new(params.clone(), cfg)
        .with_cluster_config(fast_cluster())
        .with_checkpointing(&dir, 1)
        .with_faults(FaultPlan::parse("kill=1").unwrap())
        .train(&corpus, &vocab)
        .expect("killed run");
    assert!(killed.killed, "kill=1 must stop the cluster early");
    assert_ne!(
        killed.model, uninterrupted.model,
        "the killed run stopped an epoch short"
    );

    let resumed = ThreadedTrainer::new(params.clone(), cfg)
        .with_cluster_config(fast_cluster())
        .with_checkpointing(&dir, 1)
        .with_resume(true)
        .train(&corpus, &vocab)
        .expect("resumed run");
    assert_eq!(resumed.resumed_from, Some(2), "must resume at epoch 2");
    assert_eq!(
        resumed.model, uninterrupted.model,
        "threaded resume must reproduce the uninterrupted run bit-for-bit"
    );
    assert_eq!(resumed.pairs_trained, uninterrupted.pairs_trained);
    assert_eq!(resumed.stats, uninterrupted.stats);

    // The simulator agrees with the whole story.
    let sim = DistributedTrainer::new(params, cfg).train(&corpus, &vocab);
    assert_eq!(sim.model, resumed.model);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The hard case: a host is dead at the checkpoint, the cluster is
/// killed, and the resumed run re-admits it at the first epoch back.
/// Kill → resume must equal the uninterrupted crash+rejoin run in both
/// engines, and the engines must agree with each other.
#[test]
fn threaded_resume_with_dormant_rejoin_is_bit_identical() {
    let (vocab, corpus, params) = prepare();
    let cfg = dist_cfg(SyncPlan::RepModelOpt);
    let full_plan = FaultPlan::parse("seed=7,crash=1@1,rejoin=1@2").unwrap();
    let cut_plan = FaultPlan::parse("seed=7,crash=1@1,rejoin=1@2,kill=1").unwrap();

    let thr_full = ThreadedTrainer::new(params.clone(), cfg)
        .with_faults(full_plan.clone())
        .with_cluster_config(fast_cluster())
        .train(&corpus, &vocab)
        .expect("uninterrupted crash+rejoin run");

    let dir = tmpdir("thr-dormant");
    let thr_cut = ThreadedTrainer::new(params.clone(), cfg)
        .with_faults(cut_plan.clone())
        .with_cluster_config(fast_cluster())
        .with_checkpointing(&dir, 1)
        .train(&corpus, &vocab)
        .expect("killed run");
    assert!(thr_cut.killed);
    let thr_resumed = ThreadedTrainer::new(params.clone(), cfg)
        .with_faults(cut_plan.clone())
        .with_cluster_config(fast_cluster())
        .with_checkpointing(&dir, 1)
        .with_resume(true)
        .train(&corpus, &vocab)
        .expect("resumed run with dormant host");
    assert_eq!(thr_resumed.resumed_from, Some(2));
    assert_eq!(
        thr_resumed.model, thr_full.model,
        "resume with a dormant rejoiner must match the uninterrupted run"
    );
    assert_eq!(thr_resumed.pairs_trained, thr_full.pairs_trained);
    assert_eq!(thr_resumed.stats, thr_full.stats);
    let _ = std::fs::remove_dir_all(&dir);

    // Simulator under the same kill → resume sequence.
    let dir = tmpdir("sim-dormant");
    let sim_full = DistributedTrainer::new(params.clone(), cfg)
        .with_faults(full_plan)
        .train(&corpus, &vocab);
    let _ = DistributedTrainer::new(params.clone(), cfg)
        .with_faults(cut_plan.clone())
        .with_checkpointing(&dir, 1)
        .train(&corpus, &vocab);
    let sim_resumed = DistributedTrainer::new(params, cfg)
        .with_faults(cut_plan)
        .with_checkpointing(&dir, 1)
        .with_resume(true)
        .train(&corpus, &vocab);
    assert_eq!(sim_resumed.model, sim_full.model);
    assert_eq!(
        sim_full.model, thr_full.model,
        "engines must agree on the crash+rejoin run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Memoized wire mode, faultless: the id-list caches on both ends must
/// make identical hit/miss decisions in the analytic simulator and the
/// threaded engine (analytic == measured bytes), training must stay
/// bit-identical to the classic id+value mode, and the mode must never
/// cost more bytes than classic. RepModel-Naive repeats its dense id
/// lists every round, so from the second round of each epoch every
/// payload is value-only — a strictly lower byte total.
#[test]
fn conformance_memo_faultless_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair_wire(sync, WireMode::Memo, "seed=7");
        assert_eq!(
            sim.stats, thr.stats,
            "[{sync:?}] memoized counters must agree across engines"
        );

        let (vocab, corpus, params) = prepare();
        let classic = DistributedTrainer::new(params, dist_cfg(sync)).train(&corpus, &vocab);
        assert_eq!(
            sim.model, classic.model,
            "[{sync:?}] the wire mode must not change training arithmetic"
        );
        assert!(
            sim.stats.total_bytes() <= classic.stats.total_bytes(),
            "[{sync:?}] memoized mode must never ship more than classic"
        );
        if sync == SyncPlan::RepModelNaive {
            assert!(
                sim.stats.total_bytes() < classic.stats.total_bytes(),
                "[{sync:?}] dense id lists repeat — memoization must save bytes"
            );
        }
    }
}

/// Memoized mode under message corruption: drops and bit-flips hit the
/// CRC-framed transport, not the caches (the `value_only` flag rides in
/// the message metadata), so repair via NAK/resend leaves the decisions
/// and the model untouched.
#[test]
fn conformance_memo_drops_and_flips_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair_wire(sync, WireMode::Memo, "seed=7,drop=0.03,flip=0.02");
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
    }
}

/// Memoized mode across a crash: the liveness change must invalidate
/// every cache in both engines at the same round boundary.
#[test]
fn conformance_memo_crash_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair_wire(sync, WireMode::Memo, "seed=7,crash=1@2");
        assert_eq!(sim.stats, thr.stats);
        assert!(!sim.killed && !thr.killed);
    }
}

/// Memoized mode across crash + re-admission: the rejoin flips liveness
/// a second time (and re-enters the epoch loop on the rejoiner), so the
/// caches are invalidated twice and rebuilt — both engines must land on
/// identical bytes and bits.
#[test]
fn conformance_memo_rejoin_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair_wire(sync, WireMode::Memo, "seed=7,crash=1@1,rejoin=1@2");
        assert_eq!(sim.stats, thr.stats);
    }
}

/// Delta wire mode, faultless: shadow copies on both ends must make
/// identical full/delta decisions in the analytic simulator and the
/// threaded engine (analytic == measured bytes), training must stay
/// bit-identical to the classic id+value mode (delta is lossless), and
/// the mode must never cost more bytes than classic. The dense plan
/// re-ships mostly-unchanged rows every round, so the change mask must
/// save bytes there.
#[test]
fn conformance_delta_faultless_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair_wire(sync, WireMode::Delta, "seed=7");
        assert_eq!(
            sim.stats, thr.stats,
            "[{sync:?}] delta counters must agree across engines"
        );

        let (vocab, corpus, params) = prepare();
        let classic = DistributedTrainer::new(params, dist_cfg(sync)).train(&corpus, &vocab);
        assert_eq!(
            sim.model, classic.model,
            "[{sync:?}] delta payloads must not change training arithmetic"
        );
        assert!(
            sim.stats.total_bytes() <= classic.stats.total_bytes(),
            "[{sync:?}] delta mode must never ship more than classic"
        );
        if sync == SyncPlan::RepModelNaive {
            assert!(
                sim.stats.total_bytes() < classic.stats.total_bytes(),
                "[{sync:?}] dense rows repeat — the change mask must save bytes"
            );
        }
    }
}

/// Delta mode across every fault family: drops and flips are healed
/// under the CRC frames without touching the shadows; crash, rejoin and
/// the combined partition plan flip liveness, which must invalidate
/// every shadow in both engines at the same round boundary.
#[test]
fn conformance_delta_chaos_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair_wire(sync, WireMode::Delta, "seed=7,drop=0.03,flip=0.02");
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
        let (sim, thr) = run_pair_wire(sync, WireMode::Delta, "seed=7,crash=1@2");
        assert_eq!(sim.stats, thr.stats);
        let (sim, thr) = run_pair_wire(sync, WireMode::Delta, "seed=7,crash=1@1,rejoin=1@2");
        assert_eq!(sim.stats, thr.stats);
        let (sim, thr) = run_pair_wire(sync, WireMode::Delta, COMBINED_PARTITION_PLAN);
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
    }
}

/// Quantized wire mode, faultless: the transform is deterministically
/// lossy, so the engines must agree bit-for-bit with *each other* (the
/// simulator replays the exact quantize→dequantize image the threaded
/// payloads apply), counters must match analytically, and one byte per
/// dimension plus the 12-byte row header must undercut classic's four
/// bytes per dimension on every plan.
#[test]
fn conformance_quant_faultless_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair_wire(sync, WireMode::Quant, "seed=7");
        assert_eq!(
            sim.stats, thr.stats,
            "[{sync:?}] quant counters must agree across engines"
        );

        let (vocab, corpus, params) = prepare();
        let classic = DistributedTrainer::new(params, dist_cfg(sync)).train(&corpus, &vocab);
        assert_ne!(
            sim.model, classic.model,
            "[{sync:?}] quantization is lossy — bit-equality with classic \
             would mean the transform never ran"
        );
        assert!(
            sim.stats.total_bytes() < classic.stats.total_bytes(),
            "[{sync:?}] quantized rows must beat classic on total bytes"
        );
    }
}

/// Quantized mode across every fault family: payload repair and liveness
/// churn must leave the deterministic transform untouched — the engines
/// stay bit-identical to each other under chaos.
#[test]
fn conformance_quant_chaos_all_plans() {
    for sync in PLANS {
        let (sim, thr) = run_pair_wire(sync, WireMode::Quant, "seed=7,drop=0.03,flip=0.02");
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
        let (sim, thr) = run_pair_wire(sync, WireMode::Quant, "seed=7,crash=1@2");
        assert_eq!(sim.stats, thr.stats);
        let (sim, thr) = run_pair_wire(sync, WireMode::Quant, "seed=7,crash=1@1,rejoin=1@2");
        assert_eq!(sim.stats, thr.stats);
        let (sim, thr) = run_pair_wire(sync, WireMode::Quant, COMBINED_PARTITION_PLAN);
        assert_eq!(sim.stats.total_bytes(), thr.stats.total_bytes());
    }
}

/// The dense plan's byte totals must order delta ≤ memo ≤ classic:
/// memo strips repeated id lists, delta additionally strips repeated
/// row values. Invoked from scripts/perf_smoke.sh as the CI bytes
/// assertion for the compressed wire modes.
#[test]
fn conformance_naive_wire_bytes_ordering() {
    // Delta's edge over memo needs rows that repeat *unchanged*: a large
    // vocabulary touched only sparsely per round. The shared `prepare`
    // corpus is built on a ~200-word synthetic vocabulary that negative
    // sampling covers almost entirely every round (changed ≈ n, where a
    // change mask costs more than it saves), so this cell builds its
    // own: 1500 words in the vocabulary, training sentences drawing on a
    // 40-word pool.
    let mut text = String::new();
    for i in 0..24 {
        for j in 0..12 {
            text.push_str(&format!("w{:04} ", (i * 5 + j * 7) % 40));
        }
        text.push('\n');
    }
    let corpus_lines = text.lines().count();
    for w in 0..1500 {
        text.push_str(&format!("w{w:04} "));
        if w % 20 == 19 {
            text.push('\n');
        }
    }
    let cfg = TokenizerConfig::default();
    let mut b = VocabBuilder::new();
    for s in sentences_from_text(&text, cfg.clone()) {
        b.add_sentence(&s);
    }
    let vocab = b.build(1);
    let corpus = Corpus::from_sentences(
        Corpus::from_text(&text, &vocab, cfg)
            .sentences()
            .iter()
            .take(corpus_lines)
            .cloned()
            .collect(),
    );
    let params = Hyperparams {
        dim: 16,
        window: 3,
        negative: 3,
        epochs: 2,
        seed: 11,
        ..Hyperparams::default()
    };
    let total = |wire: WireMode| {
        let cfg = DistConfig {
            wire,
            ..dist_cfg(SyncPlan::RepModelNaive)
        };
        DistributedTrainer::new(params.clone(), cfg)
            .train(&corpus, &vocab)
            .stats
            .total_bytes()
    };
    let classic = total(WireMode::IdValue);
    let memo = total(WireMode::Memo);
    let delta = total(WireMode::Delta);
    assert!(
        memo <= classic,
        "memo ({memo}) must not exceed classic ({classic})"
    );
    assert!(
        delta <= memo,
        "delta ({delta}) must not exceed memo ({memo}): unchanged dense \
         rows cost a mask bit, not a full value row"
    );
    assert!(
        delta < classic,
        "delta ({delta}) must strictly beat classic ({classic}) on the dense plan"
    );
}

/// A combined partition + dup + reorder + drop + crash plan. Everything
/// a partition withholds in stall mode is healed by the NAK loop, so a
/// stall run must be bit-identical across engines AND bit-identical to
/// the same plan with the partition erased (delivery-order and retry
/// noise never reach the fold).
const COMBINED_PARTITION_PLAN: &str =
    "seed=9,partition=0.1|2@2..4,dup=0.05,reorder=0.2,drop=0.01,crash=1@5";

#[test]
fn conformance_partition_combined_stall_all_plans() {
    for sync in PLANS {
        let (sim, _thr) = run_pair(sync, COMBINED_PARTITION_PLAN);
        let (unpartitioned, _) = run_pair(sync, "seed=9,dup=0.05,reorder=0.2,drop=0.01,crash=1@5");
        assert_eq!(
            sim.model, unpartitioned.model,
            "[{sync:?}] a stalled partition heals without touching bits"
        );
        // The simulator charges the stall as virtual time.
        assert!(
            sim.comm_time > unpartitioned.comm_time,
            "[{sync:?}] stalling must cost virtual communication time"
        );
    }
}

/// Degrade mode under the same combined plan: the dormant side (host 2,
/// the smaller group) is converted to a deterministic crash at the
/// partition's start and a rejoin at its healing epoch. Both engines
/// must agree bit-for-bit, and the result must *differ* from the stall
/// run (the reachable side really trains without host 2 for a while).
#[test]
fn conformance_partition_combined_degrade_all_plans() {
    let (vocab, corpus, params) = prepare();
    let plan = FaultPlan::parse(COMBINED_PARTITION_PLAN).expect("fault plan");
    for sync in PLANS {
        let cfg = DistConfig {
            on_partition: graph_word2vec::faults::OnPartition::Degrade,
            ..dist_cfg(sync)
        };
        let sim = DistributedTrainer::new(params.clone(), cfg)
            .with_faults(plan.clone())
            .train(&corpus, &vocab);
        let thr = ThreadedTrainer::new(params.clone(), cfg)
            .with_faults(plan.clone())
            .with_cluster_config(fast_cluster())
            .train(&corpus, &vocab)
            .expect("degraded threaded run");
        assert_eq!(
            sim.model, thr.model,
            "[{sync:?}] degrade mode must stay bit-identical across engines"
        );
        assert_eq!(sim.pairs_trained, thr.pairs_trained);

        let (stall, _) = run_pair(sync, COMBINED_PARTITION_PLAN);
        assert_ne!(
            sim.model, stall.model,
            "[{sync:?}] degrade really changes arithmetic: the dormant \
             side's work moves to an adopter on the recovery RNG stream"
        );
    }
}

/// A partition longer than the staleness bound must fall back to stall
/// even under `--on-partition degrade`: the whole run is then
/// bit-identical to the stall run of the same plan.
#[test]
fn conformance_degrade_staleness_fallback() {
    let (vocab, corpus, params) = prepare();
    let plan = FaultPlan::parse(COMBINED_PARTITION_PLAN).expect("fault plan");
    let tight = DistConfig {
        on_partition: graph_word2vec::faults::OnPartition::Degrade,
        max_stale_rounds: 1, // the spec spans 2 rounds: beyond the bound
        ..dist_cfg(SyncPlan::RepModelOpt)
    };
    let degraded = DistributedTrainer::new(params.clone(), tight)
        .with_faults(plan.clone())
        .train(&corpus, &vocab);
    let (stall_sim, _) = run_pair(SyncPlan::RepModelOpt, COMBINED_PARTITION_PLAN);
    assert_eq!(
        degraded.model, stall_sim.model,
        "a partition past the staleness bound must stall, not degrade"
    );
    let thr = ThreadedTrainer::new(params, tight)
        .with_faults(plan)
        .with_cluster_config(fast_cluster())
        .train(&corpus, &vocab)
        .expect("threaded fallback run");
    assert_eq!(degraded.model, thr.model);
}

/// Checkpoint → kill at an epoch boundary *inside* an active partition →
/// resume: the resumed cluster re-enters the still-covered rounds, heals
/// through the NAK loop exactly like the uninterrupted run, and must be
/// bit-identical to it.
#[test]
fn threaded_resume_mid_partition_is_bit_identical() {
    let (vocab, corpus, params) = prepare();
    let cfg = dist_cfg(SyncPlan::RepModelOpt);
    // Rounds 1..4 are partitioned; kill=1 cuts after epoch 1 (round 3),
    // so the resume at epoch 2 re-enters round 4 mid-partition.
    let full_plan = FaultPlan::parse("seed=9,partition=0.1|2@1..5,dup=0.05,reorder=0.2").unwrap();
    let cut_plan =
        FaultPlan::parse("seed=9,partition=0.1|2@1..5,dup=0.05,reorder=0.2,kill=1").unwrap();

    let thr_full = ThreadedTrainer::new(params.clone(), cfg)
        .with_faults(full_plan.clone())
        .with_cluster_config(fast_cluster())
        .train(&corpus, &vocab)
        .expect("uninterrupted partitioned run");

    let dir = tmpdir("thr-mid-partition");
    let thr_cut = ThreadedTrainer::new(params.clone(), cfg)
        .with_faults(cut_plan.clone())
        .with_cluster_config(fast_cluster())
        .with_checkpointing(&dir, 1)
        .train(&corpus, &vocab)
        .expect("killed mid-partition run");
    assert!(thr_cut.killed, "kill=1 must stop the cluster early");
    let thr_resumed = ThreadedTrainer::new(params.clone(), cfg)
        .with_faults(cut_plan.clone())
        .with_cluster_config(fast_cluster())
        .with_checkpointing(&dir, 1)
        .with_resume(true)
        .train(&corpus, &vocab)
        .expect("resumed mid-partition run");
    assert_eq!(thr_resumed.resumed_from, Some(2), "must resume at epoch 2");
    assert_eq!(
        thr_resumed.model, thr_full.model,
        "resume inside an active partition must match the uninterrupted run"
    );
    assert_eq!(thr_resumed.pairs_trained, thr_full.pairs_trained);
    let _ = std::fs::remove_dir_all(&dir);

    // The simulator agrees with the whole story.
    let sim_full = DistributedTrainer::new(params, cfg)
        .with_faults(full_plan)
        .train(&corpus, &vocab);
    assert_eq!(sim_full.model, thr_full.model);
}
