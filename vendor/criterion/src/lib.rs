//! Minimal, self-contained stand-in for the `criterion` crate.
//!
//! Measures wall-clock time with batched calibration (so per-iteration
//! `Instant` overhead does not pollute nanosecond-scale kernels) and prints
//! one machine-readable line per benchmark:
//!
//! ```text
//! BENCH_RESULT\t<group>/<id>\t<ns_per_iter>\t<iters>
//! ```
//!
//! Tuning via environment:
//! - `GW2V_BENCH_MS` — measurement budget per benchmark in milliseconds
//!   (default 300).
//!
//! Supports `--test` (run every routine once, no timing — what
//! `cargo test --benches` passes) and a positional substring filter
//! (what `cargo bench -- <filter>` passes).

use std::fmt::Display;
use std::time::Instant;

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the workspace benches already use).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; recorded for display purposes only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id; implemented for `&str`, `String`, and
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The textual id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    budget_ns: u128,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms: u64 = std::env::var("GW2V_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300);
        Self {
            filter: None,
            test_mode: false,
            budget_ns: u128::from(budget_ms) * 1_000_000,
        }
    }
}

impl Criterion {
    /// Builds a harness from the process arguments (filter, `--test`).
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into_id(), f);
        self
    }

    fn run_one<F>(&mut self, full_id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            budget_ns: self.budget_ns,
            test_mode: self.test_mode,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test bench {full_id} ... ok");
        } else {
            println!(
                "{full_id}: {:.2} ns/iter ({} iters)",
                b.ns_per_iter, b.iters
            );
            println!("BENCH_RESULT\t{full_id}\t{:.3}\t{}", b.ns_per_iter, b.iters);
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not rescaled.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a routine within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_id());
        self.parent.run_one(full_id, f);
        self
    }

    /// Benchmarks a routine parameterized by a borrowed input.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    budget_ns: u128,
    test_mode: bool,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, batching iterations so timer overhead is amortized.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Calibrate: double the batch size until one batch takes >= 2 ms
        // (or a single iteration already exceeds the threshold).
        let mut batch: u64 = 1;
        let (mut total_ns, mut iters): (u128, u64);
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t.elapsed().as_nanos();
            if dt >= 2_000_000 || batch >= (1 << 30) {
                total_ns = dt;
                iters = batch;
                break;
            }
            batch *= 2;
        }
        // Measure: accumulate whole batches until the budget is spent,
        // with at least two batches so one warm-up outlier cannot dominate.
        let mut batches = 1u32;
        while total_ns < self.budget_ns || batches < 2 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total_ns += t.elapsed().as_nanos();
            iters += batch;
            batches += 1;
        }
        self.ns_per_iter = total_ns as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` only, rebuilding its input with `setup` each
    /// iteration (unbatched: intended for µs-scale or slower routines).
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let wall = Instant::now();
        let wall_limit = self.budget_ns.saturating_mul(4);
        let mut total_ns: u128 = 0;
        let mut iters: u64 = 0;
        loop {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            total_ns += t.elapsed().as_nanos();
            std::hint::black_box(out);
            iters += 1;
            let routine_done = total_ns >= self.budget_ns;
            let wall_done = wall.elapsed().as_nanos() >= wall_limit;
            if (routine_done || wall_done) && iters >= 2 {
                break;
            }
        }
        self.ns_per_iter = total_ns as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        acc
    }

    #[test]
    fn iter_reports_positive_time() {
        std::env::set_var("GW2V_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(10)
            .throughput(Throughput::Elements(100))
            .bench_function(BenchmarkId::new("spin", 100), |b| {
                b.iter(|| spin(100));
            });
        group.finish();
    }

    #[test]
    fn iter_with_setup_times_routine_only() {
        std::env::set_var("GW2V_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("setup_smoke", |b| {
            b.iter_with_setup(|| vec![1u64; 64], |v| v.iter().sum::<u64>());
        });
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |_b| ran = true);
        assert!(!ran);
    }
}
