//! Breadth-first search (hop distance).
//!
//! Structurally identical to SSSP with unit weights but on unweighted
//! graphs and `u32` levels — it exercises the substrate with a different
//! label type and a topology-driven round structure where each BSP round
//! advances the frontier exactly one hop.

use crate::bsp::{BspRuntime, SyncStats};
use crate::csr::Csr;
use crate::partition::Partitioned;

/// Unreached marker.
pub const UNREACHED: u32 = u32::MAX;

/// Sequential reference BFS.
pub fn bfs_sequential<W: Copy>(g: &Csr<W>, source: u32) -> Vec<u32> {
    let mut level = vec![UNREACHED; g.n_nodes()];
    let mut queue = std::collections::VecDeque::new();
    level[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = level[u as usize] + 1;
        for &v in g.neighbors(u) {
            if level[v as usize] == UNREACHED {
                level[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
    level
}

/// Distributed BFS over a partitioned graph.
pub fn bfs_distributed<W: Copy>(parted: &Partitioned<W>, source: u32) -> (Vec<u32>, SyncStats) {
    let mut rt: BspRuntime<u32, W> =
        BspRuntime::new(parted, |g| if g == source { 0 } else { UNREACHED });
    loop {
        for host in 0..parted.parts.len() {
            let part = &parted.parts[host];
            let (labels, touched) = rt.host_mut(host);
            for u in 0..part.local_graph.n_nodes() as u32 {
                let lu = labels[u as usize];
                if lu == UNREACHED {
                    continue;
                }
                for &v in part.local_graph.neighbors(u) {
                    if lu + 1 < labels[v as usize] {
                        labels[v as usize] = lu + 1;
                        touched.set(v as usize);
                    }
                }
            }
        }
        let (any_touched, _) = rt.sync(|canonical, incoming| {
            if incoming < *canonical {
                *canonical = incoming;
                true
            } else {
                false
            }
        });
        if !any_touched {
            break;
        }
    }
    let level = (0..parted.n_nodes as u32)
        .map(|g| rt.read_canonical(g))
        .collect();
    (level, *rt.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::partition_blocked;

    #[test]
    fn star_graph() {
        let g: Csr = Csr::from_edges(4, &[(0, 1, ()), (0, 2, ()), (0, 3, ())]);
        let want = vec![0, 1, 1, 1];
        assert_eq!(bfs_sequential(&g, 0), want);
        let p = partition_blocked(&g, 2);
        assert_eq!(bfs_distributed(&p, 0).0, want);
    }

    #[test]
    fn disconnected_component() {
        let g: Csr = Csr::from_edges(5, &[(0, 1, ()), (3, 4, ())]);
        let p = partition_blocked(&g, 3);
        let (levels, _) = bfs_distributed(&p, 0);
        assert_eq!(levels, vec![0, 1, UNREACHED, UNREACHED, UNREACHED]);
    }

    #[test]
    fn matches_sequential_on_random_and_rmat() {
        for (name, g) in [
            ("uniform", gen::uniform_random(60, 240, 1, 8)),
            ("rmat", gen::rmat(6, 8, 21, gen::RMAT_GRAPH500)),
        ] {
            let want = bfs_sequential(&g, 0);
            for hosts in [1, 3, 6] {
                let p = partition_blocked(&g, hosts);
                let (got, _) = bfs_distributed(&p, 0);
                assert_eq!(got, want, "{name} hosts={hosts}");
            }
        }
    }

    #[test]
    fn rounds_track_graph_diameter() {
        // A 20-node directed path: BFS needs ~20 rounds (one hop per round
        // reaches masters, but mirrors propagate within a host instantly;
        // with 4 hosts the frontier still needs many rounds).
        let edges: Vec<(u32, u32, ())> = (0..19).map(|i| (i, i + 1, ())).collect();
        let g = Csr::from_edges(20, &edges);
        let p = partition_blocked(&g, 4);
        let (levels, stats) = bfs_distributed(&p, 0);
        assert_eq!(levels[19], 19);
        assert!(stats.rounds >= 4, "rounds = {}", stats.rounds);
    }
}
