//! The seeded, deterministic fault plan.

use gw2v_util::rng::SplitMix64;
use std::fmt;

/// Domain-separation tags for the per-fault-kind decision streams.
const TAG_DROP: u64 = 0xD80F;
const TAG_FLIP: u64 = 0xF117;
const TAG_FLIP_POS: u64 = 0xF119;
const TAG_DUP: u64 = 0xD0B1;
const TAG_REORDER: u64 = 0x0EDE;
const TAG_BACKOFF: u64 = 0xBAC0;

/// Leading delivery attempts blocked on a partitioned channel.
///
/// A BSP round cannot advance while frames are withheld, so a partition's
/// in-round "duration" is modeled in *attempts*, not wall time: every
/// cross-group frame of an affected round is withheld for this many
/// delivery attempts and delivered by the NAK/resend loop afterwards.
/// Being a pure function of `(channel, round, attempt)`, the healing
/// point is identical in the simulator and the threaded cluster, and the
/// stall can never deadlock the lockstep protocol.
pub const PARTITION_STALL_ATTEMPTS: u32 = 2;

/// Crash `host` at the start of global sync round `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Host to kill.
    pub host: usize,
    /// Global round index (`epoch · sync_rounds + s`) at whose start the
    /// host dies, before computing or sending anything.
    pub round: usize,
}

/// Delay `host`'s compute phase in global sync round `round`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerSpec {
    /// Host to slow down.
    pub host: usize,
    /// Global round index the delay applies to.
    pub round: usize,
    /// Added compute time in seconds (a real sleep on the threaded
    /// engine, virtual seconds on the BSP simulator).
    pub delay_secs: f64,
}

/// Re-admit crashed `host` at the start of epoch `epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejoinSpec {
    /// Host to bring back.
    pub host: usize,
    /// Epoch at whose start the host rejoins. The rejoin is ignored if
    /// the host is still alive then (it never crashed, or crashed later).
    pub epoch: usize,
}

/// A network partition: hosts in `group_a` and hosts in `group_b`
/// cannot exchange data frames for global rounds `from_round ..
/// to_round` (half-open). Hosts listed in neither group reach both
/// sides. Control traffic (NAKs, out-of-band state transfer) still
/// crosses — like drops, the partition models a lossy data path, not a
/// severed control plane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// One side of the split.
    pub group_a: Vec<usize>,
    /// The other side. On degrade-mode conversion the smaller group
    /// goes dormant; `group_b` yields on a size tie.
    pub group_b: Vec<usize>,
    /// First global round the split is active in.
    pub from_round: usize,
    /// First global round after the heal (exclusive bound).
    pub to_round: usize,
}

impl PartitionSpec {
    /// Round range covered by this spec.
    pub fn covers(&self, round: usize) -> bool {
        (self.from_round..self.to_round).contains(&round)
    }

    /// True if `from` and `to` sit on opposite sides of the split.
    pub fn severs(&self, from: usize, to: usize) -> bool {
        (self.group_a.contains(&from) && self.group_b.contains(&to))
            || (self.group_b.contains(&from) && self.group_a.contains(&to))
    }

    /// The side that goes dormant under degrade-mode conversion: the
    /// smaller group, with `group_b` yielding on a size tie.
    pub fn dormant_side(&self) -> &[usize] {
        if self.group_a.len() < self.group_b.len() {
            &self.group_a
        } else {
            &self.group_b
        }
    }
}

/// What a distributed trainer does when a fault plan partitions the
/// cluster. Selected per run (`--on-partition`), not per plan: the same
/// plan replays under either policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnPartition {
    /// Stall: affected rounds block on the NAK/resend loop until the
    /// partition's attempt-indexed healing point
    /// ([`PARTITION_STALL_ATTEMPTS`]). Preserves bit-identity with
    /// partition-free behavior — the model never sees the fault.
    #[default]
    Stall,
    /// Degrade: the partition's yielding side goes dormant-unreachable
    /// at `from_round` (synthesized crash, adoption-map takeover) and
    /// heals through the rejoin/state-transfer path at the first epoch
    /// boundary at or after `to_round` — unless the partition outlives
    /// the staleness bound, in which case that spec falls back to stall.
    Degrade,
}

impl OnPartition {
    /// Parses the `--on-partition` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "stall" => Some(Self::Stall),
            "degrade" => Some(Self::Degrade),
            _ => None,
        }
    }
}

impl fmt::Display for OnPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Stall => "stall",
            Self::Degrade => "degrade",
        })
    }
}

/// A deterministic, seeded schedule of faults to inject into a
/// distributed training run.
///
/// All stochastic decisions (drops, flips) are pure functions of
/// `(seed, message coordinates, attempt)` — hashed, not drawn from a
/// stateful stream — so they are independent of query order, thread
/// interleaving and wall-clock time. Two runs with the same plan inject
/// byte-identical faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the drop/flip decision hashes.
    pub seed: u64,
    /// Per-message, per-attempt drop probability in `[0, 1]`.
    pub drop_p: f64,
    /// Per-message, per-attempt bit-flip probability in `[0, 1]`.
    pub flip_p: f64,
    /// Scheduled host crashes.
    pub crashes: Vec<CrashSpec>,
    /// Scheduled straggler delays.
    pub stragglers: Vec<StragglerSpec>,
    /// Scheduled crashed-host re-admissions.
    pub rejoins: Vec<RejoinSpec>,
    /// Scheduled network partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Per-delivered-frame duplication probability in `[0, 1]`: a clean
    /// delivery is delivered a second time, exercising the receiver's
    /// attempt-dedup path.
    pub dup_p: f64,
    /// Per-message send-reorder probability in `[0, 1]`: the sender
    /// defers the frame to the end of its phase's send sequence,
    /// shuffling per-channel delivery order.
    pub reorder_p: f64,
    /// Stop the whole training process after this epoch completes (and
    /// checkpoints) — the injector's stand-in for SIGKILL in
    /// checkpoint/resume tests.
    pub kill_after_epoch: Option<usize>,
}

/// A fault-plan spec string that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanParseError {
    /// A directive word that names no known fault family — a typo like
    /// `dorp=0.1` must fail loudly, never silently inject nothing.
    UnknownDirective(String),
    /// A known directive whose value does not fit its grammar.
    Malformed(String),
}

impl PlanParseError {
    fn malformed(msg: impl Into<String>) -> Self {
        Self::Malformed(msg.into())
    }
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownDirective(word) => {
                write!(f, "bad fault plan: unknown directive {word:?}")
            }
            Self::Malformed(msg) => write!(f, "bad fault plan: {msg}"),
        }
    }
}

impl std::error::Error for PlanParseError {}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The inert plan: injects nothing, costs nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_p: 0.0,
            flip_p: 0.0,
            crashes: Vec::new(),
            stragglers: Vec::new(),
            rejoins: Vec::new(),
            partitions: Vec::new(),
            dup_p: 0.0,
            reorder_p: 0.0,
            kill_after_epoch: None,
        }
    }

    /// True when the plan injects no fault of any kind. Engines use this
    /// to skip the fault paths entirely, keeping faultless runs
    /// bit-identical to a build without the fault subsystem.
    pub fn is_inert(&self) -> bool {
        self.drop_p == 0.0
            && self.flip_p == 0.0
            && self.crashes.is_empty()
            && self.stragglers.is_empty()
            && self.rejoins.is_empty()
            && self.partitions.is_empty()
            && self.dup_p == 0.0
            && self.reorder_p == 0.0
            && self.kill_after_epoch.is_none()
    }

    /// Order-independent decision hash over the given coordinates.
    fn hash(&self, tag: u64, words: [u64; 5]) -> u64 {
        let mut h = SplitMix64::new(self.seed).derive(tag);
        for w in words {
            h = SplitMix64::new(h).derive(w);
        }
        h
    }

    /// Uniform `[0, 1)` coin for the given coordinates.
    fn coin(&self, tag: u64, words: [u64; 5]) -> f64 {
        (self.hash(tag, words) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Should delivery attempt `attempt` of the `(from → to, layer)`
    /// message of phase `seq` be dropped?
    ///
    /// `seq` is the global phase sequence number (two phases — reduce and
    /// broadcast — per sync round), and `attempt` counts retransmissions,
    /// so a dropped message's resend gets an independent coin and
    /// bounded-retry recovery terminates with probability 1.
    pub fn should_drop(
        &self,
        from: usize,
        to: usize,
        layer: usize,
        seq: u64,
        attempt: u32,
    ) -> bool {
        self.drop_p > 0.0
            && self.coin(
                TAG_DROP,
                [from as u64, to as u64, layer as u64, seq, attempt as u64],
            ) < self.drop_p
    }

    /// If this delivery attempt is to be corrupted, the bit index (within
    /// `len_bytes · 8`) to flip; `None` for clean delivery.
    pub fn flip_bit(
        &self,
        from: usize,
        to: usize,
        layer: usize,
        seq: u64,
        attempt: u32,
        len_bytes: usize,
    ) -> Option<usize> {
        if self.flip_p == 0.0 || len_bytes == 0 {
            return None;
        }
        let words = [from as u64, to as u64, layer as u64, seq, attempt as u64];
        if self.coin(TAG_FLIP, words) >= self.flip_p {
            return None;
        }
        Some((self.hash(TAG_FLIP_POS, words) % (len_bytes as u64 * 8)) as usize)
    }

    /// The global round at whose start `host` crashes, if scheduled.
    pub fn crash_round(&self, host: usize) -> Option<usize> {
        self.crashes
            .iter()
            .filter(|c| c.host == host)
            .map(|c| c.round)
            .min()
    }

    /// The epoch at whose start crashed `host` rejoins, if scheduled.
    pub fn rejoin_epoch(&self, host: usize) -> Option<usize> {
        self.rejoins
            .iter()
            .filter(|r| r.host == host)
            .map(|r| r.epoch)
            .min()
    }

    /// The straggler delay (seconds) for `host` in global round `round`.
    pub fn straggler_delay(&self, host: usize, round: usize) -> Option<f64> {
        let total: f64 = self
            .stragglers
            .iter()
            .filter(|s| s.host == host && s.round == round)
            .map(|s| s.delay_secs)
            .sum();
        (total > 0.0).then_some(total)
    }

    /// True when any partition spec covers global round `round`.
    pub fn partition_active(&self, round: usize) -> bool {
        self.partitions.iter().any(|p| p.covers(round))
    }

    /// Leading delivery attempts withheld on the `from → to` channel in
    /// global round `round`: [`PARTITION_STALL_ATTEMPTS`] when a
    /// covering spec severs the pair, 0 otherwise.
    pub fn partition_block_attempts(&self, from: usize, to: usize, round: usize) -> u32 {
        if self
            .partitions
            .iter()
            .any(|p| p.covers(round) && p.severs(from, to))
        {
            PARTITION_STALL_ATTEMPTS
        } else {
            0
        }
    }

    /// Is delivery attempt `attempt` of a `from → to` frame in global
    /// round `round` withheld by an active partition?
    pub fn partition_blocked(&self, from: usize, to: usize, round: usize, attempt: u32) -> bool {
        attempt < self.partition_block_attempts(from, to, round)
    }

    /// Should this clean delivery attempt be delivered a second time?
    /// The duplicate exercises the receiver's `(sender, layer)` dedup
    /// path; resent bytes are identical, so model bits cannot change.
    pub fn should_dup(&self, from: usize, to: usize, layer: usize, seq: u64, attempt: u32) -> bool {
        self.dup_p > 0.0
            && self.coin(
                TAG_DUP,
                [from as u64, to as u64, layer as u64, seq, attempt as u64],
            ) < self.dup_p
    }

    /// Should the sender defer this frame to the end of its phase's send
    /// sequence, shuffling per-channel delivery order? Receivers fold in
    /// canonical host-id order, so reordering cannot change model bits.
    pub fn should_reorder(&self, from: usize, to: usize, layer: usize, seq: u64) -> bool {
        self.reorder_p > 0.0
            && self.coin(TAG_REORDER, [from as u64, to as u64, layer as u64, seq, 0])
                < self.reorder_p
    }

    /// Deterministic `[0, 1)` jitter for NAK-backoff schedules: a pure
    /// function of `(seed, waiter, seq, nak_round)`, so the simulator
    /// and the threaded engine draw identical backoff schedules.
    pub fn backoff_jitter(&self, waiter: usize, seq: u64, nak_round: u32) -> f64 {
        self.coin(TAG_BACKOFF, [waiter as u64, seq, nak_round as u64, 0, 0])
    }

    /// Degrade-mode plan rewrite: every partition spec whose round-range
    /// duration fits `max_stale_rounds` is converted into a synthesized
    /// crash of its [`PartitionSpec::dormant_side`] at `from_round` plus
    /// a rejoin at the first epoch boundary at or after `to_round`
    /// (`ceil(to_round / sync_rounds)`), so the dormant side heals
    /// through the existing rejoin/state-transfer machinery. Specs that
    /// outlive the bound are kept and fall back to stall blocking.
    ///
    /// Returns the rewritten plan and the converted specs (for
    /// partition-event counters). The rewrite is a pure function of the
    /// plan and the bounds, so both engines derive the same schedule.
    pub fn degrade_partitions(
        &self,
        max_stale_rounds: usize,
        sync_rounds: usize,
    ) -> (FaultPlan, Vec<PartitionSpec>) {
        let mut out = self.clone();
        out.partitions.clear();
        let mut converted = Vec::new();
        for spec in &self.partitions {
            if spec.to_round - spec.from_round > max_stale_rounds {
                out.partitions.push(spec.clone());
                continue;
            }
            let heal_epoch = spec.to_round.div_ceil(sync_rounds.max(1));
            for &host in spec.dormant_side() {
                out.crashes.push(CrashSpec {
                    host,
                    round: spec.from_round,
                });
                out.rejoins.push(RejoinSpec {
                    host,
                    epoch: heal_epoch,
                });
            }
            converted.push(spec.clone());
        }
        (out, converted)
    }

    /// Parses a compact spec string:
    ///
    /// ```text
    /// seed=42,drop=0.02,flip=0.001,crash=1@3,straggle=2@1x50ms,
    /// partition=0.1|2@2..4,dup=0.05,reorder=0.2,kill=2
    /// ```
    ///
    /// `crash`, `straggle`, `rejoin` (`rejoin=H@E`, epoch granularity)
    /// and `partition` (`partition=A|B@r..r'`, groups as `.`-separated
    /// host lists, half-open round range) entries may repeat; `straggle`
    /// delays take a `ms` or `s` suffix. An unknown directive word is a
    /// typed error ([`PlanParseError::UnknownDirective`]). An empty
    /// string is the inert plan.
    pub fn parse(spec: &str) -> Result<Self, PlanParseError> {
        let mut plan = Self::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| PlanParseError::malformed(format!("{part:?} is not key=value")))?;
            match key {
                "seed" => plan.seed = parse_num(key, value)?,
                "drop" => plan.drop_p = parse_prob(key, value)?,
                "flip" => plan.flip_p = parse_prob(key, value)?,
                "dup" => plan.dup_p = parse_prob(key, value)?,
                "reorder" => plan.reorder_p = parse_prob(key, value)?,
                "kill" => plan.kill_after_epoch = Some(parse_num(key, value)?),
                "crash" => {
                    let (host, round) = value.split_once('@').ok_or_else(|| {
                        PlanParseError::malformed(format!("crash={value:?}: want H@R"))
                    })?;
                    plan.crashes.push(CrashSpec {
                        host: parse_num("crash host", host)?,
                        round: parse_num("crash round", round)?,
                    });
                }
                "straggle" => {
                    let (host, rest) = value.split_once('@').ok_or_else(|| {
                        PlanParseError::malformed(format!("straggle={value:?}: want H@RxDELAY"))
                    })?;
                    let (round, delay) = rest.split_once('x').ok_or_else(|| {
                        PlanParseError::malformed(format!("straggle={value:?}: want H@RxDELAY"))
                    })?;
                    plan.stragglers.push(StragglerSpec {
                        host: parse_num("straggle host", host)?,
                        round: parse_num("straggle round", round)?,
                        delay_secs: parse_delay(delay)?,
                    });
                }
                "rejoin" => {
                    let (host, epoch) = value.split_once('@').ok_or_else(|| {
                        PlanParseError::malformed(format!("rejoin={value:?}: want H@E"))
                    })?;
                    plan.rejoins.push(RejoinSpec {
                        host: parse_num("rejoin host", host)?,
                        epoch: parse_num("rejoin epoch", epoch)?,
                    });
                }
                "partition" => plan.partitions.push(parse_partition(value)?),
                other => return Err(PlanParseError::UnknownDirective(other.to_owned())),
            }
        }
        Ok(plan)
    }

    /// Reads the plan from the `GW2V_FAULT_PLAN` environment variable;
    /// unset or empty means the inert plan.
    pub fn from_env() -> Result<Self, PlanParseError> {
        match std::env::var("GW2V_FAULT_PLAN") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(Self::none()),
        }
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = PlanParseError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        Self::parse(spec)
    }
}

impl fmt::Display for FaultPlan {
    /// Formats the plan back into its [`FaultPlan::parse`] spec form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = vec![format!("seed={}", self.seed)];
        if self.drop_p > 0.0 {
            parts.push(format!("drop={}", self.drop_p));
        }
        if self.flip_p > 0.0 {
            parts.push(format!("flip={}", self.flip_p));
        }
        for c in &self.crashes {
            parts.push(format!("crash={}@{}", c.host, c.round));
        }
        for s in &self.stragglers {
            parts.push(format!(
                "straggle={}@{}x{}ms",
                s.host,
                s.round,
                s.delay_secs * 1e3
            ));
        }
        for r in &self.rejoins {
            parts.push(format!("rejoin={}@{}", r.host, r.epoch));
        }
        for p in &self.partitions {
            parts.push(format!(
                "partition={}|{}@{}..{}",
                fmt_group(&p.group_a),
                fmt_group(&p.group_b),
                p.from_round,
                p.to_round
            ));
        }
        if self.dup_p > 0.0 {
            parts.push(format!("dup={}", self.dup_p));
        }
        if self.reorder_p > 0.0 {
            parts.push(format!("reorder={}", self.reorder_p));
        }
        if let Some(e) = self.kill_after_epoch {
            parts.push(format!("kill={e}"));
        }
        f.write_str(&parts.join(","))
    }
}

fn fmt_group(hosts: &[usize]) -> String {
    hosts
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(".")
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, PlanParseError> {
    value
        .parse()
        .map_err(|_| PlanParseError::malformed(format!("{key}: cannot parse {value:?}")))
}

fn parse_prob(key: &str, value: &str) -> Result<f64, PlanParseError> {
    let p: f64 = parse_num(key, value)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(PlanParseError::malformed(format!(
            "{key}={p} outside [0, 1]"
        )));
    }
    Ok(p)
}

fn parse_delay(value: &str) -> Result<f64, PlanParseError> {
    if let Some(ms) = value.strip_suffix("ms") {
        Ok(parse_num::<f64>("straggle delay", ms)? / 1e3)
    } else if let Some(s) = value.strip_suffix('s') {
        parse_num("straggle delay", s)
    } else {
        Err(PlanParseError::malformed(format!(
            "straggle delay {value:?}: want e.g. 50ms or 0.05s"
        )))
    }
}

fn parse_group(key: &str, value: &str) -> Result<Vec<usize>, PlanParseError> {
    let hosts: Vec<usize> = value
        .split('.')
        .map(|h| parse_num(key, h))
        .collect::<Result<_, _>>()?;
    if hosts.is_empty() {
        return Err(PlanParseError::malformed(format!("{key}: empty group")));
    }
    Ok(hosts)
}

/// Parses `A|B@r..r'` — `.`-separated host groups, half-open round range.
fn parse_partition(value: &str) -> Result<PartitionSpec, PlanParseError> {
    let want = || PlanParseError::malformed(format!("partition={value:?}: want A|B@r..r'"));
    let (groups, range) = value.split_once('@').ok_or_else(want)?;
    let (a, b) = groups.split_once('|').ok_or_else(want)?;
    let (from, to) = range.split_once("..").ok_or_else(want)?;
    let spec = PartitionSpec {
        group_a: parse_group("partition group", a)?,
        group_b: parse_group("partition group", b)?,
        from_round: parse_num("partition start round", from)?,
        to_round: parse_num("partition end round", to)?,
    };
    if spec.from_round >= spec.to_round {
        return Err(PlanParseError::malformed(format!(
            "partition={value:?}: empty round range"
        )));
    }
    if spec.group_a.iter().any(|h| spec.group_b.contains(h)) {
        return Err(PlanParseError::malformed(format!(
            "partition={value:?}: groups overlap"
        )));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos() -> FaultPlan {
        FaultPlan::parse(
            "seed=42,drop=0.02,flip=0.001,crash=1@3,straggle=2@1x50ms,rejoin=1@2,\
             partition=0.1|2@2..4,dup=0.05,reorder=0.2,kill=2",
        )
        .unwrap()
    }

    #[test]
    fn parse_full_spec() {
        let p = chaos();
        assert_eq!(p.seed, 42);
        assert_eq!(p.drop_p, 0.02);
        assert_eq!(p.flip_p, 0.001);
        assert_eq!(p.crashes, vec![CrashSpec { host: 1, round: 3 }]);
        assert_eq!(p.stragglers.len(), 1);
        assert_eq!(p.stragglers[0].host, 2);
        assert_eq!(p.stragglers[0].round, 1);
        assert!((p.stragglers[0].delay_secs - 0.05).abs() < 1e-12);
        assert_eq!(p.rejoins, vec![RejoinSpec { host: 1, epoch: 2 }]);
        assert_eq!(
            p.partitions,
            vec![PartitionSpec {
                group_a: vec![0, 1],
                group_b: vec![2],
                from_round: 2,
                to_round: 4,
            }]
        );
        assert_eq!(p.dup_p, 0.05);
        assert_eq!(p.reorder_p, 0.2);
        assert_eq!(p.kill_after_epoch, Some(2));
        assert!(!p.is_inert());
    }

    #[test]
    fn partition_blocking_is_round_and_group_scoped() {
        let p = chaos();
        // Cross-group channels block their leading attempts in covered
        // rounds only; same-group and out-of-range traffic is untouched.
        assert!(p.partition_blocked(0, 2, 2, 0));
        assert!(p.partition_blocked(2, 1, 3, PARTITION_STALL_ATTEMPTS - 1));
        assert!(!p.partition_blocked(0, 2, 2, PARTITION_STALL_ATTEMPTS));
        assert!(!p.partition_blocked(0, 1, 2, 0), "same group");
        assert!(!p.partition_blocked(0, 2, 1, 0), "before the split");
        assert!(!p.partition_blocked(0, 2, 4, 0), "healed");
        assert!(p.partition_active(2) && p.partition_active(3));
        assert!(!p.partition_active(4));
    }

    #[test]
    fn degrade_converts_within_staleness_bound() {
        let p = chaos();
        // Duration 2 fits the bound: minority host 2 crashes at round 2
        // and rejoins at ceil(4 / 2) = epoch 2.
        let (eff, converted) = p.degrade_partitions(8, 2);
        assert_eq!(converted.len(), 1);
        assert!(eff.partitions.is_empty());
        assert_eq!(eff.crash_round(2), Some(2));
        assert_eq!(eff.rejoin_epoch(2), Some(2));
        // Original crash/rejoin entries survive the rewrite.
        assert_eq!(eff.crash_round(1), Some(3));
        assert_eq!(eff.rejoin_epoch(1), Some(2));
        // A partition longer than the bound falls back to stall.
        let (eff, converted) = p.degrade_partitions(1, 2);
        assert!(converted.is_empty());
        assert_eq!(eff, p);
    }

    #[test]
    fn dup_and_reorder_coins_are_pure_and_track_probability() {
        let p = FaultPlan {
            dup_p: 0.1,
            reorder_p: 0.3,
            seed: 11,
            ..FaultPlan::none()
        };
        let n = 100_000u64;
        let dups = (0..n).filter(|&s| p.should_dup(0, 1, 0, s, 0)).count();
        let reorders = (0..n).filter(|&s| p.should_reorder(0, 1, 0, s)).count();
        assert!((dups as f64 / n as f64 - 0.1).abs() < 0.01, "{dups}");
        assert!(
            (reorders as f64 / n as f64 - 0.3).abs() < 0.01,
            "{reorders}"
        );
        assert_eq!(p.should_dup(0, 1, 0, 7, 1), p.should_dup(0, 1, 0, 7, 1));
        assert!(!FaultPlan::none().should_dup(0, 1, 0, 7, 0));
        assert!(!FaultPlan::none().should_reorder(0, 1, 0, 7));
    }

    #[test]
    fn backoff_jitter_is_pure_and_in_range() {
        let p = chaos();
        for nr in 0..8 {
            let j = p.backoff_jitter(1, 5, nr);
            assert!((0.0..1.0).contains(&j));
            assert_eq!(j, p.backoff_jitter(1, 5, nr));
        }
    }

    #[test]
    fn rejoin_lookup_and_inertness() {
        let p = chaos();
        assert_eq!(p.rejoin_epoch(1), Some(2));
        assert_eq!(p.rejoin_epoch(0), None);
        let only_rejoin = FaultPlan::parse("rejoin=2@1").unwrap();
        assert!(!only_rejoin.is_inert());
        // Repeats resolve to the earliest epoch.
        let multi = FaultPlan::parse("rejoin=2@4,rejoin=2@1").unwrap();
        assert_eq!(multi.rejoin_epoch(2), Some(1));
    }

    #[test]
    fn display_roundtrips() {
        let p = chaos();
        assert_eq!(FaultPlan::parse(&p.to_string()).unwrap(), p);
        let inert = FaultPlan::none();
        assert_eq!(FaultPlan::parse(&inert.to_string()).unwrap(), inert);
    }

    #[test]
    fn empty_spec_is_inert() {
        assert!(FaultPlan::parse("").unwrap().is_inert());
        assert!(FaultPlan::none().is_inert());
    }

    #[test]
    fn bad_specs_rejected() {
        for bad in [
            "nonsense",
            "drop=2.0",
            "drop=-0.1",
            "crash=1",
            "straggle=1@2",
            "straggle=1@2x50",
            "rejoin=1",
            "rejoin=x@2",
            "frobnicate=1",
            "dup=1.5",
            "reorder=-0.2",
            "partition=0|1",
            "partition=0.1@2..4",
            "partition=0|1@4..2",
            "partition=0|1@3..3",
            "partition=0.1|1.2@0..2",
            "partition=|1@0..2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unknown_directives_are_typed_errors() {
        // A typo like `dorp=` must surface as UnknownDirective, never be
        // silently ignored and inject nothing.
        for (spec, word) in [
            ("dorp=0.1", "dorp"),
            ("seed=1,partitoin=0|1@0..2", "partitoin"),
        ] {
            match FaultPlan::parse(spec) {
                Err(PlanParseError::UnknownDirective(w)) => assert_eq!(w, word),
                other => panic!("{spec:?}: expected UnknownDirective, got {other:?}"),
            }
        }
        assert!(matches!(
            FaultPlan::parse("drop=oops"),
            Err(PlanParseError::Malformed(_))
        ));
    }

    #[test]
    fn decisions_are_pure_functions() {
        let p = chaos();
        for seq in 0..64u64 {
            for attempt in 0..3 {
                assert_eq!(
                    p.should_drop(0, 1, 0, seq, attempt),
                    p.should_drop(0, 1, 0, seq, attempt)
                );
                assert_eq!(
                    p.flip_bit(0, 1, 0, seq, attempt, 100),
                    p.flip_bit(0, 1, 0, seq, attempt, 100)
                );
            }
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let p = FaultPlan {
            drop_p: 0.1,
            seed: 7,
            ..FaultPlan::none()
        };
        let n = 100_000u64;
        let hits = (0..n).filter(|&seq| p.should_drop(0, 1, 0, seq, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn attempts_get_independent_coins() {
        // A message dropped at attempt 0 must not be doomed forever:
        // across many dropped messages, attempt 1 must usually survive.
        let p = FaultPlan {
            drop_p: 0.5,
            seed: 3,
            ..FaultPlan::none()
        };
        let dropped: Vec<u64> = (0..10_000)
            .filter(|&s| p.should_drop(0, 1, 0, s, 0))
            .collect();
        assert!(!dropped.is_empty());
        let still = dropped
            .iter()
            .filter(|&&s| p.should_drop(0, 1, 0, s, 1))
            .count();
        let rate = still as f64 / dropped.len() as f64;
        assert!((rate - 0.5).abs() < 0.05, "attempt-1 drop rate {rate}");
    }

    #[test]
    fn flip_bit_in_range_and_inert_without_prob() {
        let p = FaultPlan {
            flip_p: 1.0,
            seed: 9,
            ..FaultPlan::none()
        };
        for seq in 0..100 {
            let bit = p.flip_bit(1, 0, 1, seq, 0, 16).expect("flip_p=1");
            assert!(bit < 16 * 8);
        }
        assert_eq!(FaultPlan::none().flip_bit(1, 0, 1, 0, 0, 16), None);
        assert_eq!(p.flip_bit(1, 0, 1, 0, 0, 0), None, "empty payload");
    }

    #[test]
    fn crash_and_straggle_lookup() {
        let p = chaos();
        assert_eq!(p.crash_round(1), Some(3));
        assert_eq!(p.crash_round(0), None);
        assert_eq!(p.straggler_delay(2, 1), Some(0.05));
        assert_eq!(p.straggler_delay(2, 2), None);
        assert_eq!(p.straggler_delay(1, 1), None);
    }
}
