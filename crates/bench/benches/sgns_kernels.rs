//! Microbenchmarks for the SGNS inner loop and its vector kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gw2v_core::model::Word2VecModel;
use gw2v_core::params::Hyperparams;
use gw2v_core::setup::TrainSetup;
use gw2v_core::sgns::{train_sentence, PlainStore, TrainScratch};
use gw2v_core::trainer_hogbatch::{train_sentence_hogbatch, MinibatchScratch};
use gw2v_corpus::vocab::{VocabBuilder, Vocabulary};
use gw2v_util::fvec;
use gw2v_util::rng::{Rng64, Xoshiro256};
use std::hint::black_box;

fn vocab_n(n: usize) -> Vocabulary {
    let mut b = VocabBuilder::new();
    for i in 0..n {
        for _ in 0..(n - i) {
            b.add_token(&format!("w{i:05}"));
        }
    }
    b.build(1)
}

fn bench_vector_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fvec");
    for dim in [64usize, 200] {
        let x: Vec<f32> = (0..dim).map(|i| (i as f32).sin()).collect();
        let mut y: Vec<f32> = (0..dim).map(|i| (i as f32).cos()).collect();
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |b, _| {
            b.iter(|| black_box(fvec::dot(black_box(&x), black_box(&y))));
        });
        group.bench_with_input(BenchmarkId::new("axpy", dim), &dim, |b, _| {
            b.iter(|| fvec::axpy(black_box(0.01), black_box(&x), black_box(&mut y)));
        });
    }
    group.finish();
}

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    // HogBatch's hot shapes: m = minibatch (window positives), n =
    // 1 + negative targets, k = embedding dim.
    for (m, n, k) in [(10usize, 6usize, 64usize), (10, 16, 200)] {
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32).sin()).collect();
        let b_mat: Vec<f32> = (0..n * k).map(|i| (i as f32).cos()).collect();
        let mut c_out = vec![0.0f32; m * n];
        group.throughput(Throughput::Elements((m * n * k) as u64));
        group.bench_with_input(
            BenchmarkId::new("nt", format!("{m}x{n}x{k}")),
            &k,
            |bch, _| {
                bch.iter(|| {
                    c_out.iter_mut().for_each(|v| *v = 0.0);
                    fvec::gemm_nt(m, n, k, black_box(&a), black_box(&b_mat), &mut c_out);
                    black_box(&c_out);
                });
            },
        );
        // gemm_tn's hogbatch shape: grads[mb×nt]ᵀ-style rank-k update.
        let g: Vec<f32> = (0..m * n).map(|i| (i as f32).sin()).collect();
        let x: Vec<f32> = (0..m * k).map(|i| (i as f32).cos()).collect();
        let mut delta = vec![0.0f32; n * k];
        group.bench_with_input(
            BenchmarkId::new("tn", format!("{n}x{k}x{m}")),
            &k,
            |bch, _| {
                bch.iter(|| {
                    delta.iter_mut().for_each(|v| *v = 0.0);
                    fvec::gemm_tn(n, k, m, black_box(&g), black_box(&x), &mut delta);
                    black_box(&delta);
                });
            },
        );
    }
    group.finish();
}

fn bench_train_sentence(c: &mut Criterion) {
    let vocab = vocab_n(2000);
    let mut group = c.benchmark_group("sgns");
    for (dim, negative) in [(64usize, 5usize), (200, 15)] {
        let params = Hyperparams {
            dim,
            negative,
            subsample: 0.0,
            ..Hyperparams::default()
        };
        let setup = TrainSetup::new(&vocab, &params);
        let ctx = setup.ctx(&params);
        let mut model = Word2VecModel::init(vocab.len(), dim, 1);
        let mut rng = Xoshiro256::new(9);
        let sentence: Vec<u32> = (0..50).map(|_| rng.index(vocab.len()) as u32).collect();
        let mut scratch = TrainScratch::default();
        group.throughput(Throughput::Elements(sentence.len() as u64));
        group.bench_function(
            BenchmarkId::new("train_sentence", format!("dim{dim}_neg{negative}")),
            |b| {
                b.iter(|| {
                    let mut store = PlainStore {
                        syn0: &mut model.syn0,
                        syn1neg: &mut model.syn1neg,
                    };
                    black_box(train_sentence(
                        &mut store,
                        black_box(&sentence),
                        0.025,
                        &ctx,
                        &mut rng,
                        &mut scratch,
                    ))
                });
            },
        );
        let mut mb_scratch = MinibatchScratch::new();
        let mut rng_hb = Xoshiro256::new(9);
        group.bench_function(
            BenchmarkId::new("train_sentence_hogbatch", format!("dim{dim}_neg{negative}")),
            |b| {
                b.iter(|| {
                    let mut store = PlainStore {
                        syn0: &mut model.syn0,
                        syn1neg: &mut model.syn1neg,
                    };
                    black_box(train_sentence_hogbatch(
                        &mut store,
                        black_box(&sentence),
                        0.025,
                        &ctx,
                        &mut rng_hb,
                        &mut mb_scratch,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vector_kernels,
    bench_gemm_kernels,
    bench_train_sentence
);
criterion_main!(benches);
