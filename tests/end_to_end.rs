//! Cross-crate integration tests: the full pipeline from synthetic
//! corpus generation through distributed training to analogy accuracy.

use graph_word2vec::combiner::CombinerKind;
use graph_word2vec::core::distributed::{DistConfig, DistributedTrainer};
use graph_word2vec::core::params::Hyperparams;
use graph_word2vec::core::trainer_hogwild::HogwildTrainer;
use graph_word2vec::core::trainer_seq::SequentialTrainer;
use graph_word2vec::corpus::datasets::{DatasetPreset, Scale};
use graph_word2vec::corpus::shard::Corpus;
use graph_word2vec::corpus::synth::SynthCorpus;
use graph_word2vec::corpus::tokenizer::{sentences_from_text, TokenizerConfig};
use graph_word2vec::corpus::vocab::{VocabBuilder, Vocabulary};
use graph_word2vec::eval::analogy::evaluate;
use graph_word2vec::gluon::plan::SyncPlan;

fn prepare_tiny(seed: u64) -> (SynthCorpus, Vocabulary, Corpus) {
    let preset = DatasetPreset::by_name("1-billion").expect("preset");
    let synth = preset.generate(Scale::Tiny, seed);
    let cfg = TokenizerConfig::default();
    let mut b = VocabBuilder::new();
    for s in sentences_from_text(&synth.text, cfg.clone()) {
        b.add_sentence(&s);
    }
    let vocab = b.build(1);
    let corpus = Corpus::from_text(&synth.text, &vocab, cfg);
    (synth, vocab, corpus)
}

fn fast_params(epochs: usize) -> Hyperparams {
    Hyperparams {
        dim: 32,
        window: 5,
        negative: 5,
        epochs,
        seed: 1,
        ..Hyperparams::default()
    }
}

#[test]
fn sequential_training_reaches_meaningful_accuracy() {
    let (synth, vocab, corpus) = prepare_tiny(42);
    let model = SequentialTrainer::new(fast_params(6)).train(&corpus, &vocab);
    let report = evaluate(&model, &vocab, &synth.analogies);
    // Chance on an 800-word vocabulary is ≈ 0.1%; the planted structure
    // must push total accuracy far above that within a few epochs.
    assert!(
        report.total() > 15.0,
        "total accuracy {:.1}% too low",
        report.total()
    );
    assert!(
        report.skipped() == 0,
        "tiny preset keeps all question words"
    );
}

#[test]
fn distributed_mc_tracks_sequential_accuracy() {
    // The regime where the model-combiner claim holds is *sparse rounds*:
    // each host-round must touch each row only a handful of times so
    // cross-host deltas stay near-orthogonal (see EXPERIMENTS.md). At the
    // Tiny scale that means a small host count; the Small-scale harness
    // runs reproduce the full 32-host result.
    let (synth, vocab, corpus) = prepare_tiny(42);
    let params = fast_params(6);
    let seq = SequentialTrainer::new(params.clone()).train(&corpus, &vocab);
    let seq_total = evaluate(&seq, &vocab, &synth.analogies).total();
    let dist = DistributedTrainer::new(params, DistConfig::paper_default(2)).train(&corpus, &vocab);
    let dist_total = evaluate(&dist.model, &vocab, &synth.analogies).total();
    assert!(
        dist_total > seq_total * 0.3,
        "MC distributed {dist_total:.1}% vs sequential {seq_total:.1}%"
    );
}

#[test]
fn averaging_converges_slower_than_mc() {
    let (synth, vocab, corpus) = prepare_tiny(42);
    let params = fast_params(6);
    let hosts = 2;
    let mut mc_cfg = DistConfig::paper_default(hosts);
    mc_cfg.combiner = CombinerKind::ModelCombiner;
    let mut avg_cfg = DistConfig::paper_default(hosts);
    avg_cfg.combiner = CombinerKind::Avg;
    let mc = DistributedTrainer::new(params.clone(), mc_cfg).train(&corpus, &vocab);
    let avg = DistributedTrainer::new(params, avg_cfg).train(&corpus, &vocab);
    let mc_total = evaluate(&mc.model, &vocab, &synth.analogies).total();
    let avg_total = evaluate(&avg.model, &vocab, &synth.analogies).total();
    assert!(
        mc_total > avg_total,
        "MC {mc_total:.1}% should beat AVG {avg_total:.1}% at {hosts} hosts after few epochs"
    );
}

#[test]
fn scaled_learning_rate_with_sum_diverges_or_stalls() {
    // The paper's Fig. 6 red line: averaging with a 32x learning rate
    // (equivalently, summing deltas) does not converge.
    let (synth, vocab, corpus) = prepare_tiny(42);
    let mut params = fast_params(4);
    params.alpha = 0.8;
    let mut cfg = DistConfig::paper_default(16);
    cfg.combiner = CombinerKind::Avg;
    let res = DistributedTrainer::new(params, cfg).train(&corpus, &vocab);
    let total = evaluate(&res.model, &vocab, &synth.analogies).total();
    assert!(
        total < 10.0,
        "lr=0.8 averaging should stay near zero accuracy, got {total:.1}%"
    );
}

#[test]
fn all_plans_produce_identical_models_end_to_end() {
    let (_, vocab, corpus) = prepare_tiny(7);
    let params = fast_params(2);
    let run = |plan: SyncPlan| {
        let mut cfg = DistConfig::paper_default(4);
        cfg.plan = plan;
        DistributedTrainer::new(params.clone(), cfg).train(&corpus, &vocab)
    };
    let opt = run(SyncPlan::RepModelOpt);
    let naive = run(SyncPlan::RepModelNaive);
    let pull = run(SyncPlan::PullModel);
    assert_eq!(opt.model, naive.model);
    assert_eq!(opt.model, pull.model);
    // Volume ordering: the dense plan is always the most expensive; Opt
    // and Pull trade places depending on touched-vs-accessed set sizes
    // (the paper found Pull "slightly more" on its workloads).
    assert!(opt.stats.total_bytes() < naive.stats.total_bytes());
    assert!(pull.stats.total_bytes() < naive.stats.total_bytes());
}

#[test]
fn hogwild_multithread_accuracy_comparable() {
    let (synth, vocab, corpus) = prepare_tiny(42);
    let params = fast_params(6);
    let seq = SequentialTrainer::new(params.clone()).train(&corpus, &vocab);
    let hog = HogwildTrainer::new(params, 3).train(&corpus, &vocab);
    let seq_total = evaluate(&seq, &vocab, &synth.analogies).total();
    let hog_total = evaluate(&hog, &vocab, &synth.analogies).total();
    assert!(
        hog_total > seq_total * 0.5,
        "hogwild {hog_total:.1}% vs seq {seq_total:.1}%"
    );
}

#[test]
fn sync_frequency_improves_mc_accuracy() {
    let (synth, vocab, corpus) = prepare_tiny(42);
    let params = fast_params(4);
    let hosts = 16;
    let run = |s: usize| {
        let mut cfg = DistConfig::paper_default(hosts);
        cfg.sync_rounds = s;
        let res = DistributedTrainer::new(params.clone(), cfg).train(&corpus, &vocab);
        evaluate(&res.model, &vocab, &synth.analogies).total()
    };
    let sparse = run(2);
    let frequent = run(24);
    assert!(
        frequent >= sparse * 0.8,
        "more sync must not collapse accuracy: S=2 {sparse:.1}% vs S=24 {frequent:.1}%"
    );
    // The paper's Fig. 7 trend (more sync → better accuracy) holds on
    // average; on a tiny noisy corpus we assert the weaker monotone band
    // above plus a strict check at the extremes over two seeds.
}
