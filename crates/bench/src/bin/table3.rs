//! Table 3 — "Accuracy (semantic, syntactic, and total) of Word2Vec and
//! Gensim on 1 host and GraphWord2Vec on 32 hosts."
//!
//! The paper's headline: GW2V at 32 hosts stays within ~1–2 points of
//! the shared-memory baselines at the same epoch count.

use gw2v_bench::{
    bench_params, datasets_from_env, epochs_from_env, obs_init, prepare, scale_from_env,
    write_json_run,
};
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_core::trainer_batched::BatchedTrainer;
use gw2v_core::trainer_seq::SequentialTrainer;
use gw2v_corpus::datasets::Scale;
use gw2v_eval::analogy::evaluate;
use gw2v_util::table::{Align, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    system: String,
    semantic: f64,
    syntactic: f64,
    total: f64,
}

fn main() {
    obs_init();
    let scale = scale_from_env(Scale::Small);
    let epochs = epochs_from_env(16);
    let hosts = 32;
    println!(
        "Table 3: Accuracy (%) of W2V/GEM on 1 host and GW2V on {hosts} hosts \
         (scale {scale:?}, {epochs} epochs)\n"
    );
    let mut table = Table::new(vec!["Dataset", "System", "Semantic", "Syntactic", "Total"])
        .with_aligns(&[
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    let mut rows = Vec::new();
    for preset in datasets_from_env() {
        eprintln!("[table3] preparing {} ...", preset.name);
        let d = prepare(preset, scale, 42);
        let params = bench_params(scale, epochs, 1);

        eprintln!("[table3] W2V ...");
        let w2v = SequentialTrainer::new(params.clone()).train(&d.corpus, &d.vocab);
        eprintln!("[table3] GEM ...");
        let gem = BatchedTrainer::new(params.clone()).train(&d.corpus, &d.vocab);
        eprintln!("[table3] GW2V ...");
        let gw2v = DistributedTrainer::new(params, DistConfig::paper_default(hosts))
            .train(&d.corpus, &d.vocab)
            .model;

        for (system, model) in [("W2V", &w2v), ("GEN", &gem), ("GW2V", &gw2v)] {
            let report = evaluate(model, &d.vocab, &d.synth.analogies);
            table.add_row(vec![
                preset.paper_name.to_owned(),
                system.to_owned(),
                format!("{:.2}", report.semantic()),
                format!("{:.2}", report.syntactic()),
                format!("{:.2}", report.total()),
            ]);
            rows.push(Row {
                dataset: preset.paper_name.to_owned(),
                system: system.to_owned(),
                semantic: report.semantic(),
                syntactic: report.syntactic(),
                total: report.total(),
            });
        }
    }
    print!("{table}");
    println!("\nPaper shape check: GW2V total within ~2 points of W2V/GEN per dataset.");
    write_json_run("table3", scale, 1, &rows);
}
