//! Graph-workload study (beyond the paper — ROADMAP item 5): DeepWalk
//! vs node2vec walk corpora on a planted-community SBM, trained with
//! the shared-memory HogBatch trainer and the distributed simulator,
//! scored by held-out link prediction.
//!
//! The pipeline is exactly the CLI's: SBM edge list → seeded holdout
//! split → biased walks → text corpus → trainer → link-pred AUC, so
//! the numbers in `results/graphs.json` are reproducible with
//! `gw2v corpus graph / corpus walks / train / eval linkpred` and the
//! same seeds.

use gw2v_bench::{epochs_from_env, obs_init, scale_from_env, write_json_run};
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_core::model::Word2VecModel;
use gw2v_core::params::Hyperparams;
use gw2v_core::trainer_hogbatch::HogBatchTrainer;
use gw2v_corpus::datasets::Scale;
use gw2v_corpus::graphs::{even_blocks, holdout_split, sample_negative_edges, sbm};
use gw2v_corpus::shard::Corpus;
use gw2v_corpus::tokenizer::{sentences_from_text, TokenizerConfig};
use gw2v_corpus::vocab::{VocabBuilder, Vocabulary};
use gw2v_corpus::walks::{generate_walks, WalkParams};
use gw2v_eval::linkpred::{evaluate_link_prediction, LinkScore};
use gw2v_util::table::{Align, Table};
use serde::Serialize;

#[derive(Serialize)]
struct GraphRow {
    walk_kind: String,
    trainer: String,
    auc: f64,
    mean_pos: f64,
    mean_neg: f64,
    n_pos: usize,
    n_neg: usize,
    walk_tokens: usize,
    train_secs: f64,
}

type TrainRun<'a> = Box<dyn Fn() -> Word2VecModel + 'a>;

fn train_corpus(walk_text: &str) -> (Vocabulary, Corpus) {
    let cfg = TokenizerConfig::default();
    let mut b = VocabBuilder::new();
    for s in sentences_from_text(walk_text, cfg.clone()) {
        b.add_sentence(&s);
    }
    let vocab = b.build(1);
    let corpus = Corpus::from_text(walk_text, &vocab, cfg);
    (vocab, corpus)
}

fn main() {
    obs_init();
    let scale = scale_from_env(Scale::Tiny);
    let epochs = epochs_from_env(6);
    let nodes = match scale {
        Scale::Tiny => 240,
        Scale::Small => 480,
        Scale::Medium => 960,
    };
    let blocks = 8;
    println!(
        "Graph study: SBM {nodes} nodes / {blocks} blocks (p_in 0.3, p_out 0.001), \
         holdout 0.2, {epochs} epochs\n"
    );
    let (graph, _) = sbm(&even_blocks(nodes, blocks), 0.3, 0.001, 42);
    let (train_graph, positives) = holdout_split(&graph, 0.2, 7);
    let negatives = sample_negative_edges(&graph, positives.len() * 2, 13);
    // Walk-corpus hyperparameter note: node frequencies are ~1/n, far
    // above the 1e-4 subsampling threshold, so subsample must be 0.
    let params = Hyperparams {
        dim: 32,
        window: 4,
        negative: 5,
        epochs,
        subsample: 0.0,
        seed: 3,
        ..Hyperparams::default()
    };

    let walk_kinds: [(&str, f64, f64); 2] = [("deepwalk", 1.0, 1.0), ("node2vec-q2", 1.0, 2.0)];
    let mut rows: Vec<GraphRow> = Vec::new();
    for (kind, p, q) in walk_kinds {
        let walks = generate_walks(
            &train_graph,
            &WalkParams {
                walks_per_node: 10,
                walk_length: 40,
                p,
                q,
                seed: 1,
            },
        );
        let (vocab, corpus) = train_corpus(&walks.text);
        let trainers: [(&str, TrainRun); 2] = [
            (
                "hogbatch-2t",
                Box::new(|| HogBatchTrainer::new(params.clone(), 2).train(&corpus, &vocab)),
            ),
            (
                "dist-3hosts",
                Box::new(|| {
                    DistributedTrainer::new(params.clone(), DistConfig::paper_default(3))
                        .train(&corpus, &vocab)
                        .model
                }),
            ),
        ];
        for (trainer, run) in trainers {
            eprintln!("[graphs] {kind} / {trainer} ...");
            let t0 = std::time::Instant::now();
            let model = run();
            let train_secs = t0.elapsed().as_secs_f64();
            let report =
                evaluate_link_prediction(&model, &vocab, &positives, &negatives, LinkScore::Cosine);
            rows.push(GraphRow {
                walk_kind: kind.into(),
                trainer: trainer.into(),
                auc: report.auc,
                mean_pos: report.mean_pos,
                mean_neg: report.mean_neg,
                n_pos: report.n_pos,
                n_neg: report.n_neg,
                walk_tokens: walks.n_tokens,
                train_secs,
            });
        }
    }
    let mut table = Table::new(vec![
        "walks", "trainer", "AUC", "pos mean", "neg mean", "train s",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for r in &rows {
        table.add_row(vec![
            r.walk_kind.clone(),
            r.trainer.clone(),
            format!("{:.4}", r.auc),
            format!("{:.3}", r.mean_pos),
            format!("{:.3}", r.mean_neg),
            format!("{:.1}", r.train_secs),
        ]);
    }
    println!("{}", table.render());
    write_json_run("graphs", scale, 42, &rows);
}
