//! Microbenchmarks for the graph-analytics substrate: the classic vertex
//! programs on partitioned R-MAT graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gw2v_graph::algos::{bfs_distributed, cc_distributed, pagerank_distributed, sssp_distributed};
use gw2v_graph::gen::{rmat, RMAT_GRAPH500};
use gw2v_graph::partition::partition_blocked;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let g = rmat(10, 8, 42, RMAT_GRAPH500); // 1024 nodes, 8K edges
    let mut group = c.benchmark_group("graph_algos");
    group.sample_size(20);
    for hosts in [1usize, 4, 8] {
        let parted = partition_blocked(&g, hosts);
        group.bench_function(BenchmarkId::new("sssp", hosts), |b| {
            b.iter(|| black_box(sssp_distributed(&parted, 0)));
        });
        group.bench_function(BenchmarkId::new("bfs", hosts), |b| {
            b.iter(|| black_box(bfs_distributed(&parted, 0)));
        });
        group.bench_function(BenchmarkId::new("cc", hosts), |b| {
            b.iter(|| black_box(cc_distributed(&parted)));
        });
        group.bench_function(BenchmarkId::new("pagerank_10iter", hosts), |b| {
            b.iter(|| black_box(pagerank_distributed(&parted, 10)));
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let g = rmat(12, 8, 7, RMAT_GRAPH500); // 4096 nodes, 32K edges
    let mut group = c.benchmark_group("partition");
    group.sample_size(20);
    for hosts in [4usize, 16] {
        group.bench_function(BenchmarkId::new("blocked_rmat12", hosts), |b| {
            b.iter(|| black_box(partition_blocked(&g, hosts)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_partitioning);
criterion_main!(benches);
