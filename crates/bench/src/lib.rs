//! # gw2v-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation section (see DESIGN.md §4 for the index), plus criterion
//! microbenchmarks under `benches/`.
//!
//! Every binary:
//!
//! * prints the reproduced table as aligned text,
//! * writes a machine-readable JSON record under `results/`,
//! * honours the environment knobs below so runs can be scaled to the
//!   available time budget:
//!   - `GW2V_SCALE` — `tiny | small | medium` (default varies per binary),
//!   - `GW2V_EPOCHS` — override the epoch count,
//!   - `GW2V_DATASETS` — comma-separated subset of
//!     `1-billion,news,wiki`.

#![warn(missing_docs)]

use gw2v_core::params::Hyperparams;
use gw2v_corpus::datasets::{DatasetPreset, Scale, PRESETS};
use gw2v_corpus::shard::Corpus;
use gw2v_corpus::synth::SynthCorpus;
use gw2v_corpus::tokenizer::{sentences_from_text, TokenizerConfig};
use gw2v_corpus::vocab::{VocabBuilder, Vocabulary};
use gw2v_obs::{MetricsSnapshot, Provenance};
use serde::{Serialize, Value};
use std::path::Path;

/// A generated dataset ready for training.
pub struct PreparedDataset {
    /// The preset that produced it.
    pub preset: &'static DatasetPreset,
    /// Raw generated corpus + analogy suite.
    pub synth: SynthCorpus,
    /// Vocabulary (graph nodes).
    pub vocab: Vocabulary,
    /// Encoded corpus (worklist source).
    pub corpus: Corpus,
}

/// Generates and encodes a dataset.
pub fn prepare(preset: &'static DatasetPreset, scale: Scale, seed: u64) -> PreparedDataset {
    let synth = preset.generate(scale, seed);
    let tok_cfg = TokenizerConfig::default();
    let mut builder = VocabBuilder::new();
    for sentence in sentences_from_text(&synth.text, tok_cfg.clone()) {
        builder.add_sentence(&sentence);
    }
    let vocab = builder.build(1);
    let corpus = Corpus::from_text(&synth.text, &vocab, tok_cfg);
    PreparedDataset {
        preset,
        synth,
        vocab,
        corpus,
    }
}

/// Reads `GW2V_SCALE`, defaulting to `default`.
pub fn scale_from_env(default: Scale) -> Scale {
    std::env::var("GW2V_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(default)
}

/// Reads `GW2V_EPOCHS`, defaulting to `default`.
pub fn epochs_from_env(default: usize) -> usize {
    std::env::var("GW2V_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Reads `GW2V_HOSTS` (comma-separated host counts), defaulting to
/// `default`.
pub fn hosts_from_env(default: &[usize]) -> Vec<usize> {
    match std::env::var("GW2V_HOSTS") {
        Ok(s) if !s.trim().is_empty() => {
            s.split(',').filter_map(|h| h.trim().parse().ok()).collect()
        }
        _ => default.to_vec(),
    }
}

/// Reads `GW2V_DATASETS` (comma-separated paper names), defaulting to
/// all three presets.
pub fn datasets_from_env() -> Vec<&'static DatasetPreset> {
    match std::env::var("GW2V_DATASETS") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .filter_map(|name| DatasetPreset::by_name(name.trim()))
            .collect(),
        _ => PRESETS.iter().collect(),
    }
}

/// The harness's scaled-down training parameters (documented in
/// EXPERIMENTS.md): dimensionality and negative-sample count are reduced
/// from the paper's 200/15 so the full experiment matrix completes on
/// one core; all other hyperparameters match §5.1.
pub fn bench_params(scale: Scale, epochs: usize, seed: u64) -> Hyperparams {
    let dim = match scale {
        Scale::Tiny => 32,
        Scale::Small => 64,
        Scale::Medium => 96,
    };
    Hyperparams {
        dim,
        negative: 5,
        epochs,
        seed,
        ..Hyperparams::default()
    }
}

/// Writes a JSON result record under `results/<name>.json` (creating the
/// directory if needed) and reports where it went.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => println!("\n[results written to {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Initializes observability for a benchmark binary.
///
/// The harness runs with metrics **on** by default — every result record
/// should carry its metrics block — and `GW2V_METRICS=0` (or `false`,
/// `off`, `no`) opts out. Call once at the top of `main`.
pub fn obs_init() {
    let off = std::env::var("GW2V_METRICS")
        .is_ok_and(|v| matches!(v.trim(), "0" | "false" | "off" | "no"));
    gw2v_obs::set_enabled(!off);
}

/// The uniform shape of every `results/*.json` record: the reproduced
/// table/figure data plus the run's metrics snapshot and provenance.
pub struct RunRecord<'a, T> {
    /// Where the numbers came from (git sha, SIMD backend, scale, seed).
    pub provenance: Provenance,
    /// Snapshot of every instrument the run recorded.
    pub metrics: MetricsSnapshot,
    /// The table/figure payload itself.
    pub data: &'a T,
}

// Hand-written: the vendored derive does not handle generic structs.
impl<T: Serialize> Serialize for RunRecord<'_, T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("provenance".to_owned(), self.provenance.to_value()),
            ("metrics".to_owned(), self.metrics.to_value()),
            ("data".to_owned(), self.data.to_value()),
        ])
    }
}

/// Writes `results/<name>.json` as a [`RunRecord`] wrapping `data`, then
/// flushes any buffered trace events (`GW2V_TRACE_OUT`). This is what
/// every table/figure binary calls; plain [`write_json`] remains for
/// records that are not experiment runs.
pub fn write_json_run<T: Serialize>(name: &str, scale: Scale, seed: u64, data: &T) {
    let record = RunRecord {
        provenance: gw2v_obs::provenance(&format!("{scale:?}"), seed),
        metrics: gw2v_obs::snapshot(),
        data,
    };
    write_json(name, &record);
    match gw2v_obs::flush_trace(None) {
        Ok(n) if n > 0 => {
            if let Ok(dest) = std::env::var("GW2V_TRACE_OUT") {
                println!("[{n} trace events appended to {dest}]");
            }
        }
        Ok(_) => {}
        Err(e) => eprintln!("warning: cannot write trace: {e}"),
    }
}

/// Formats a speedup as the paper does ("14x", "14.6x").
pub fn fmt_speedup(x: f64) -> String {
    if (x - x.round()).abs() < 0.05 {
        format!("{:.0}x", x.round())
    } else {
        format!("{x:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_tiny_dataset() {
        let d = prepare(&PRESETS[0], Scale::Tiny, 7);
        assert!(d.vocab.len() > 100);
        assert!(d.corpus.total_tokens() > 50_000);
        assert_eq!(d.synth.analogies.categories.len(), 14);
    }

    #[test]
    fn env_parsers_default() {
        // No env set in the test runner (we do not mutate process env in
        // tests to stay thread-safe); defaults must come through.
        assert_eq!(epochs_from_env(7), 7);
        assert_eq!(datasets_from_env().len(), 3);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(14.02), "14x");
        assert_eq!(fmt_speedup(14.6), "14.6x");
    }
}
