//! Small deterministic random number generators.
//!
//! The trainers in this workspace need RNGs with three properties that make
//! the `rand` crate's default generators a poor fit:
//!
//! 1. **Replayability** — the PullModel inspection phase (paper §4.4) must
//!    regenerate *exactly* the stream of random choices the subsequent
//!    compute round will make, so the generator must be trivially cloneable
//!    and its state cheap to snapshot.
//! 2. **Stream splitting** — each simulated host (and each Hogwild thread
//!    within a host) needs an independent stream derived from a single run
//!    seed, reproducibly.
//! 3. **Speed** — negative sampling draws one random number per sample in
//!    the SGNS inner loop.
//!
//! Three generators are provided: [`SplitMix64`] (seeding / stream
//! derivation), [`Pcg32`] (general purpose, 64-bit state), and
//! [`Xoshiro256`] (bulk generation in the training inner loop). All
//! implement the object-safe [`Rng64`] trait.

/// A minimal RNG interface: a source of uniform `u64`s plus derived helpers.
///
/// All helpers have default implementations in terms of [`Rng64::next_u64`],
/// so implementors only provide the core generator.
pub trait Rng64 {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits; 2^-53 spacing.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `bound / 2^64`, negligible for every bound used in this workspace
    /// (vocabulary sizes, window widths), so no rejection loop is needed.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below() requires a positive bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    #[inline]
    fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: the canonical seeding generator (Steele, Lea & Flood 2014).
///
/// Every call advances a 64-bit counter by a fixed odd constant and hashes
/// it, so *any* seed (including 0) produces a full-quality stream. Used to
/// expand a single run seed into per-host / per-thread seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives the `i`-th child seed from this generator's seed without
    /// advancing it: `derive(i)` is a pure function of `(seed, i)`.
    ///
    /// Hosts use `derive(host_id)`, Hogwild threads `derive(thread_id)` of
    /// the host seed, so the full tree of streams is reproducible from the
    /// run seed alone.
    #[inline]
    pub fn derive(&self, i: u64) -> u64 {
        let mut child = SplitMix64::new(
            self.state
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        child.next_u64()
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32 (O'Neill 2014): 64-bit LCG state with an output
/// permutation. Small state, excellent statistical quality, supports
/// independent streams via the increment parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    const MULT: u64 = 6_364_136_223_846_793_005;

    /// Creates a generator from a seed, using the default stream.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xDA3E_39CB_94B9_5BDB)
    }

    /// Creates a generator on a specific stream; generators with different
    /// `stream` values produce statistically independent sequences even
    /// with the same seed.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Advances the core LCG and returns the permuted 32-bit output.
    #[inline]
    pub fn next_u32_core(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(Self::MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Rng64 for Pcg32 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32_core() as u64;
        let lo = self.next_u32_core() as u64;
        (hi << 32) | lo
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u32_core()
    }
}

/// xoshiro256** (Blackman & Vigna 2018): the workhorse generator for the
/// SGNS inner loop — 256-bit state, 4 ops per output, passes BigCrush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the seed through SplitMix64 as the
    /// authors recommend (a raw all-zero state would be a fixed point).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Snapshots the full 256-bit generator state, e.g. for a training
    /// checkpoint. Restoring via [`Xoshiro256::from_state`] replays the
    /// stream from exactly this point.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`Xoshiro256::state`] snapshot.
    ///
    /// The all-zero state is the generator's fixed point and cannot have
    /// been produced by [`Xoshiro256::new`], so it is rejected.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "all-zero xoshiro256** state is degenerate");
        Self { s }
    }

    /// The equivalent of 2^128 `next_u64` calls; use to create up to 2^128
    /// non-overlapping subsequences for parallel workers.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

impl Rng64 for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut rng2 = SplitMix64::new(0);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn splitmix_zero_seed_not_degenerate() {
        let mut rng = SplitMix64::new(0);
        let vals: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert_eq!(distinct.len(), vals.len());
    }

    #[test]
    fn derive_is_pure_and_distinct() {
        let root = SplitMix64::new(42);
        assert_eq!(root.derive(3), root.derive(3));
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| root.derive(i)).collect();
        assert_eq!(seeds.len(), 1000, "child seeds must not collide");
    }

    #[test]
    fn pcg_streams_differ() {
        let mut a = Pcg32::with_stream(7, 1);
        let mut b = Pcg32::with_stream(7, 2);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn pcg_deterministic() {
        let mut a = Pcg32::new(99);
        let mut b = Pcg32::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_clone_replays_stream() {
        let mut rng = Xoshiro256::new(2024);
        for _ in 0..10 {
            rng.next_u64();
        }
        let mut snapshot = rng;
        let live: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let replay: Vec<u64> = (0..32).map(|_| snapshot.next_u64()).collect();
        assert_eq!(live, replay, "clone must replay the identical stream");
    }

    #[test]
    fn xoshiro_state_roundtrip_resumes_stream() {
        let mut rng = Xoshiro256::new(31);
        for _ in 0..5 {
            rng.next_u64();
        }
        let snap = rng.state();
        let ahead: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let mut restored = Xoshiro256::from_state(snap);
        let replay: Vec<u64> = (0..16).map(|_| restored.next_u64()).collect();
        assert_eq!(ahead, replay, "restored state must continue the stream");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn xoshiro_zero_state_rejected() {
        let _ = Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn xoshiro_jump_decorrelates() {
        let mut a = Xoshiro256::new(5);
        let mut b = a;
        b.jump();
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert!(va.iter().zip(&vb).all(|(x, y)| x != y));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Xoshiro256::new(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f32_unit_interval() {
        let mut rng = Pcg32::new(1);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Xoshiro256::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..1000 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Xoshiro256::new(11);
        let bound = 10u64;
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for &c in &counts {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bucket off by {rel:.3} relative");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved something (probability of identity ~ 1/100!).
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = Xoshiro256::new(77);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.25)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.01, "observed {p}");
    }
}
