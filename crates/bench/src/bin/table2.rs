//! Table 2 — "Execution time (sec) of Word2Vec and Gensim on 1 host and
//! GraphWord2Vec on 32 hosts, and speedup of GraphWord2Vec over
//! Word2Vec."
//!
//! W2V  → the sequential trainer (measured wall-clock).
//! GEM  → the sentence-batched trainer (measured wall-clock).
//! GW2V → the distributed engine at 32 simulated hosts, sync frequency
//!        48, RepModel-Opt + Model Combiner; its time is *virtual*:
//!        Σ_rounds (max-host measured compute + α–β-modeled network
//!        time). See EXPERIMENTS.md for why virtual time is the honest
//!        metric on a single-core reproduction box.

use gw2v_bench::{
    bench_params, datasets_from_env, epochs_from_env, fmt_speedup, obs_init, prepare,
    scale_from_env, write_json_run,
};
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_core::trainer_batched::BatchedTrainer;
use gw2v_core::trainer_seq::SequentialTrainer;
use gw2v_corpus::datasets::Scale;
use gw2v_util::stats::geomean;
use gw2v_util::table::{fmt_secs, Align, Table};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    dataset: String,
    w2v_secs: f64,
    gem_secs: f64,
    gw2v_secs: f64,
    gw2v_compute_secs: f64,
    gw2v_comm_secs: f64,
    speedup: f64,
}

fn main() {
    obs_init();
    let scale = scale_from_env(Scale::Small);
    let epochs = epochs_from_env(16);
    let hosts = 32;
    println!(
        "Table 2: Execution time, W2V/GEM on 1 host vs GW2V on {hosts} hosts \
         (scale {scale:?}, {epochs} epochs)\n"
    );
    let mut table = Table::new(vec!["Dataset", "W2V", "GEM", "GW2V", "Speedup"]).with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for preset in datasets_from_env() {
        eprintln!("[table2] preparing {} ...", preset.name);
        let d = prepare(preset, scale, 42);
        let params = bench_params(scale, epochs, 1);

        eprintln!("[table2] W2V (sequential) ...");
        let t0 = Instant::now();
        let _ = SequentialTrainer::new(params.clone()).train(&d.corpus, &d.vocab);
        let w2v = t0.elapsed().as_secs_f64();

        eprintln!("[table2] GEM (batched) ...");
        let t0 = Instant::now();
        let _ = BatchedTrainer::new(params.clone()).train(&d.corpus, &d.vocab);
        let gem = t0.elapsed().as_secs_f64();

        eprintln!("[table2] GW2V ({hosts} hosts) ...");
        let result = DistributedTrainer::new(params, DistConfig::paper_default(hosts))
            .train(&d.corpus, &d.vocab);
        let gw2v = result.virtual_time();
        let speedup = w2v / gw2v;
        speedups.push(speedup);
        table.add_row(vec![
            preset.paper_name.to_owned(),
            fmt_secs(w2v),
            fmt_secs(gem),
            fmt_secs(gw2v),
            fmt_speedup(speedup),
        ]);
        rows.push(Row {
            dataset: preset.paper_name.to_owned(),
            w2v_secs: w2v,
            gem_secs: gem,
            gw2v_secs: gw2v,
            gw2v_compute_secs: result.compute_time,
            gw2v_comm_secs: result.comm_time,
            speedup,
        });
    }
    print!("{table}");
    if let Some(g) = geomean(&speedups) {
        println!("\nGeo-mean speedup: {} (paper: 14x)", fmt_speedup(g));
    }
    write_json_run("table2", scale, 1, &rows);
}
