//! Network cost model.
//!
//! This reproduction runs all hosts on one machine, so wall-clock time
//! cannot show network behaviour. Instead, every byte that crosses the
//! simulated wire is counted exactly ([`crate::volume`]), and this model
//! converts a round's measured volume into the time the paper's fabric —
//! 56 Gb/s InfiniBand between Azure hosts (paper §5.1) — would have
//! spent:
//!
//! ```text
//! t_round = 2·latency + max_h(sent_h + recv_h) / bandwidth
//! ```
//!
//! The `2·latency` term charges one fabric round-trip per phase (reduce,
//! broadcast); the volume term charges the bottleneck host's traffic,
//! assuming a full-duplex non-blocking switch (all hosts transfer
//! concurrently, so the busiest port dominates). This is the standard
//! α-β (latency–bandwidth) model of collective-communication analysis.

use crate::liveness::Liveness;
use crate::volume::RoundVolume;
use gw2v_faults::FaultPlan;
use serde::{Deserialize, Serialize};

/// Exponent cap for [`nak_backoff_secs`]: backoff grows `2^k` per NAK
/// round up to `2^4 = 16×` the base delay, bounding worst-case silence
/// while still spreading retry load.
pub const NAK_BACKOFF_EXP_CAP: u32 = 4;

/// Deterministic exponential NAK backoff with seeded jitter.
///
/// The silence tolerated before NAK round `nak_round` fires:
/// `base · 2^min(nak_round, cap) · (1 + ½·jitter)`, where the jitter is
/// a pure `[0, 1)` hash of `(plan seed, waiter, seq, nak_round)`
/// ([`FaultPlan::backoff_jitter`]). Attempt-indexed and coordinate-
/// hashed, so the sequential simulator and the threaded cluster draw
/// identical schedules for the same plan — wall-clock never enters.
pub fn nak_backoff_secs(
    plan: &FaultPlan,
    base_secs: f64,
    waiter: usize,
    seq: u64,
    nak_round: u32,
) -> f64 {
    let mult = (1u64 << nak_round.min(NAK_BACKOFF_EXP_CAP)) as f64;
    base_secs * mult * (1.0 + 0.5 * plan.backoff_jitter(waiter, seq, nak_round))
}

/// α–β network cost model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Link bandwidth in bytes/second (per host port, full duplex).
    pub bandwidth_bytes_per_sec: f64,
    /// One-way message latency in seconds (α).
    pub latency_sec: f64,
    /// Fixed per-phase software overhead in seconds (marshalling, MPI
    /// stack); charged once per phase like latency.
    pub per_phase_overhead_sec: f64,
}

impl CostModel {
    /// The paper's fabric: 56 Gb/s InfiniBand (§5.1). Effective bandwidth
    /// is taken at ~80% of line rate (5.6 GB/s), latency at 2 µs, plus a
    /// 50 µs per-phase software overhead.
    pub fn infiniband_56g() -> Self {
        Self {
            bandwidth_bytes_per_sec: 0.8 * 56.0e9 / 8.0,
            latency_sec: 2.0e-6,
            per_phase_overhead_sec: 50.0e-6,
        }
    }

    /// A slower commodity fabric (10 GbE) for sensitivity experiments.
    pub fn ethernet_10g() -> Self {
        Self {
            bandwidth_bytes_per_sec: 0.8 * 10.0e9 / 8.0,
            latency_sec: 20.0e-6,
            per_phase_overhead_sec: 100.0e-6,
        }
    }

    /// Modeled communication time for one synchronization round.
    pub fn round_time(&self, volume: &RoundVolume) -> f64 {
        if volume.total_bytes() == 0 {
            return 0.0;
        }
        let bottleneck = volume.max_host_bytes() as f64;
        2.0 * (self.latency_sec + self.per_phase_overhead_sec)
            + bottleneck / self.bandwidth_bytes_per_sec
    }

    /// Modeled time to move `bytes` through one host port (helper for
    /// aggregate estimates).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// Virtual NAK-delay base used when replaying the threaded engine's
    /// backoff schedule, matching the threaded transport's default
    /// (`ClusterConfig::default().nak_delay` = 25 ms) so both engines
    /// draw the same schedule out of the box.
    pub const NAK_BASE_SECS: f64 = 0.025;

    /// Virtual stall charged to a round under an active stall-mode
    /// partition.
    ///
    /// Replays the threaded engine's recovery: in each of the round's
    /// two phases, every waiter with a partition-blocked inbound channel
    /// runs [`gw2v_faults::PARTITION_STALL_ATTEMPTS`] NAK rounds, each
    /// preceded by its [`nak_backoff_secs`] silence window. Waiters wait
    /// concurrently, so the phase charges the slowest waiter's total;
    /// the per-frame resend traffic itself is charged separately by the
    /// retransmission model. Returns 0 when no partition covers `round`.
    pub fn partition_stall_time(&self, plan: &FaultPlan, live: &Liveness, round: usize) -> f64 {
        if !plan.partition_active(round) {
            return 0.0;
        }
        let n_hosts = live.n_hosts();
        let mut total = 0.0;
        for phase in 0..2u64 {
            let seq = 2 * round as u64 + 1 + phase;
            let mut phase_stall = 0.0f64;
            for to in 0..n_hosts {
                if !live.is_alive(to) {
                    continue;
                }
                let blocked = (0..n_hosts)
                    .filter(|&from| from != to && live.is_alive(from))
                    .map(|from| plan.partition_block_attempts(from, to, round))
                    .max()
                    .unwrap_or(0);
                let wait: f64 = (0..blocked)
                    .map(|nr| nak_backoff_secs(plan, Self::NAK_BASE_SECS, to, seq, nr))
                    .sum();
                phase_stall = phase_stall.max(wait);
            }
            total += phase_stall;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_volume_costs_nothing() {
        let m = CostModel::infiniband_56g();
        let v = RoundVolume::new(4);
        assert_eq!(m.round_time(&v), 0.0);
    }

    #[test]
    fn volume_term_dominates_large_transfers() {
        let m = CostModel::infiniband_56g();
        let mut v = RoundVolume::new(2);
        v.record(0, 1, 5_600_000_000); // 5.6 GB at ~5.6 GB/s ≈ 1 s
        let t = m.round_time(&v);
        assert!((0.9..1.3).contains(&t), "t = {t}");
    }

    #[test]
    fn latency_floor_for_small_messages() {
        let m = CostModel::infiniband_56g();
        let mut v = RoundVolume::new(2);
        v.record(0, 1, 8);
        let t = m.round_time(&v);
        let floor = 2.0 * (m.latency_sec + m.per_phase_overhead_sec);
        assert!(t >= floor);
        assert!(t < floor * 1.01);
    }

    #[test]
    fn bottleneck_host_not_total_drives_cost() {
        let m = CostModel::infiniband_56g();
        // Balanced: 4 hosts each send 1 GB to distinct peers.
        let mut balanced = RoundVolume::new(4);
        balanced.record(0, 1, 1 << 30);
        balanced.record(1, 0, 1 << 30);
        balanced.record(2, 3, 1 << 30);
        balanced.record(3, 2, 1 << 30);
        // Skewed: one host receives everything.
        let mut skewed = RoundVolume::new(4);
        skewed.record(0, 3, 1 << 30);
        skewed.record(1, 3, 1 << 30);
        skewed.record(2, 3, 1 << 30);
        skewed.record(3, 0, 1 << 30);
        assert!(m.round_time(&skewed) > m.round_time(&balanced));
    }

    #[test]
    fn slower_fabric_costs_more() {
        let mut v = RoundVolume::new(2);
        v.record(0, 1, 100_000_000);
        assert!(
            CostModel::ethernet_10g().round_time(&v) > CostModel::infiniband_56g().round_time(&v)
        );
    }

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let plan = FaultPlan::parse("seed=5").unwrap();
        let base = 0.01;
        for nr in 0..10u32 {
            let w = nak_backoff_secs(&plan, base, 1, 3, nr);
            let mult = (1u64 << nr.min(NAK_BACKOFF_EXP_CAP)) as f64;
            // Jitter adds at most 50% on top of the exponential step.
            assert!(w >= base * mult && w < base * mult * 1.5, "round {nr}: {w}");
            assert_eq!(w, nak_backoff_secs(&plan, base, 1, 3, nr), "deterministic");
        }
    }

    #[test]
    fn partition_stall_charged_only_in_covered_rounds() {
        let plan = FaultPlan::parse("seed=5,partition=0|1@2..4").unwrap();
        let m = CostModel::infiniband_56g();
        let live = Liveness::all(2);
        assert_eq!(m.partition_stall_time(&plan, &live, 1), 0.0);
        assert_eq!(m.partition_stall_time(&plan, &live, 4), 0.0);
        let stall = m.partition_stall_time(&plan, &live, 2);
        // Two phases, each waiting out NAK rounds 0 and 1: at least
        // 2 · (1 + 2) · base even before jitter.
        assert!(stall >= 6.0 * CostModel::NAK_BASE_SECS, "stall = {stall}");
        assert_eq!(stall, m.partition_stall_time(&plan, &live, 2));
        // A dead side stalls nobody.
        let mut half = Liveness::all(2);
        half.mark_dead(1);
        assert_eq!(m.partition_stall_time(&plan, &half, 2), 0.0);
    }
}
