//! Property-based tests on the fault-plan spec grammar.
//!
//! The spec string is the plan's interchange format (`--fault-plan`,
//! `GW2V_FAULT_PLAN`, CI matrices), so `Display` and `parse` must be
//! exact inverses over the *whole* grammar — every fault family,
//! repeated entries included. Two properties pin it: format → parse
//! recovers the identical plan, and format → parse → format is
//! idempotent on the string. A third pins the typed error contract:
//! an arbitrary unknown directive word always surfaces as
//! [`PlanParseError::UnknownDirective`], never as silence.
//!
//! The vendored proptest stub composes strategies only through ranges,
//! tuples and `collection::vec`, so each generator draws plain tuples
//! and the test body assembles the spec structs.

use gw2v_faults::{CrashSpec, FaultPlan, PartitionSpec, PlanParseError, RejoinSpec, StragglerSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse(format(p))` recovers the identical plan, and the printed
    /// form is a fixed point of another format → parse cycle.
    ///
    /// Probabilities draw from `[0, 1]` with an explicit `Just(0.0)` arm
    /// so the zero-omitting `Display` path is exercised; Rust float
    /// formatting is shortest-round-trip, so any generated value
    /// re-parses exactly. Straggler delays are whole milliseconds
    /// because `Display` prints `delay_secs · 1e3` with an `ms` suffix.
    /// Partition groups are made disjoint and non-empty by construction
    /// (`group_b` starts where `group_a` ends) with `from < to`, the
    /// only shapes the parser admits.
    #[test]
    fn format_parse_format_roundtrips(
        seed in any::<u64>(),
        drop_p in prop_oneof![Just(0.0), 0.0f64..=1.0],
        flip_p in prop_oneof![Just(0.0), 0.0f64..=1.0],
        dup_p in prop_oneof![Just(0.0), 0.0f64..=1.0],
        reorder_p in prop_oneof![Just(0.0), 0.0f64..=1.0],
        kill in (any::<bool>(), 0usize..64),
        crashes in proptest::collection::vec((0usize..16, 0usize..64), 0..3),
        stragglers in proptest::collection::vec((0usize..16, 0usize..64, 1u64..500), 0..3),
        rejoins in proptest::collection::vec((0usize..16, 0usize..64), 0..3),
        partitions in proptest::collection::vec(
            (1usize..4, 1usize..4, 0usize..32, 1usize..8), 0..3),
    ) {
        let plan = FaultPlan {
            seed,
            drop_p,
            flip_p,
            dup_p,
            reorder_p,
            kill_after_epoch: if kill.0 { Some(kill.1) } else { None },
            crashes: crashes
                .iter()
                .map(|&(host, round)| CrashSpec { host, round })
                .collect(),
            stragglers: stragglers
                .iter()
                .map(|&(host, round, ms)| StragglerSpec {
                    host,
                    round,
                    delay_secs: ms as f64 / 1e3,
                })
                .collect(),
            rejoins: rejoins
                .iter()
                .map(|&(host, epoch)| RejoinSpec { host, epoch })
                .collect(),
            partitions: partitions
                .iter()
                .map(|&(na, nb, from, len)| PartitionSpec {
                    group_a: (0..na).collect(),
                    group_b: (na..na + nb).collect(),
                    from_round: from,
                    to_round: from + len,
                })
                .collect(),
        };
        let spec = plan.to_string();
        let parsed = match FaultPlan::parse(&spec) {
            Ok(p) => p,
            Err(e) => return Err(proptest::TestCaseError::Fail(
                format!("{spec:?} must re-parse: {e}"))),
        };
        prop_assert_eq!(&parsed, &plan, "parse(format(p)) == p for {}", spec);
        prop_assert_eq!(parsed.to_string(), spec, "format is a fixed point of {}", spec);
    }

    /// Any directive word outside the grammar is a typed
    /// `UnknownDirective` error carrying the word verbatim.
    #[test]
    fn unknown_directives_always_typed(letters in proptest::collection::vec(0u8..26, 1..12)) {
        const KNOWN: [&str; 10] = [
            "seed", "drop", "flip", "dup", "reorder", "kill",
            "crash", "straggle", "rejoin", "partition",
        ];
        let word: String = letters.iter().map(|&c| (b'a' + c) as char).collect();
        prop_assume!(!KNOWN.contains(&word.as_str()));
        let spec = format!("seed=1,{word}=0.5");
        match FaultPlan::parse(&spec) {
            Err(PlanParseError::UnknownDirective(w)) => prop_assert_eq!(w, word),
            other => prop_assert!(
                false, "{}: expected UnknownDirective, got {:?}", spec, other),
        }
    }
}
