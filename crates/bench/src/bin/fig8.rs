//! Figure 8 — "Strong scaling of GraphWord2Vec (synchronization
//! frequency increases roughly linearly with the number of hosts)."
//!
//! Hosts 1(1), 2(3), 4(6), 8(12), 16(24), 32(48), 64(96) × the three
//! communication variants × the three datasets; the metric is virtual
//! execution time (max-host compute + α–β network model — see
//! EXPERIMENTS.md). Expected shape: all variants scale to 32 hosts;
//! RepModel-Opt fastest, PullModel penalized by inspection overhead,
//! RepModel-Naive by redundant volume; scaling flattens by 64 hosts as
//! communication grows.

use gw2v_bench::{
    bench_params, datasets_from_env, epochs_from_env, hosts_from_env, obs_init, prepare,
    scale_from_env, write_json_run,
};
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_corpus::datasets::Scale;
use gw2v_gluon::plan::SyncPlan;
use gw2v_util::table::{fmt_secs, Align, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dataset: String,
    plan: String,
    hosts: usize,
    sync_frequency: usize,
    virtual_secs: f64,
    compute_secs: f64,
    comm_secs: f64,
    total_bytes: u64,
}

fn main() {
    obs_init();
    let scale = scale_from_env(Scale::Small);
    let epochs = epochs_from_env(1);
    let host_counts = hosts_from_env(&[1, 2, 4, 8, 16, 32, 64]);
    let plans = [
        SyncPlan::RepModelNaive,
        SyncPlan::RepModelOpt,
        SyncPlan::PullModel,
    ];
    println!(
        "Figure 8: strong scaling, time (virtual sec) vs hosts(sync freq) \
         (scale {scale:?}, {epochs} epoch(s))\n"
    );
    let mut points = Vec::new();
    for preset in datasets_from_env() {
        eprintln!("[fig8] preparing {} ...", preset.name);
        let d = prepare(preset, scale, 42);
        let params = bench_params(scale, epochs, 1);
        let mut table = Table::new(vec![
            "Hosts(S)",
            "RepModel-Naive",
            "RepModel-Opt",
            "PullModel",
        ])
        .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);
        for &hosts in &host_counts {
            let freq = DistConfig::paper_sync_rounds(hosts);
            let mut row = vec![format!("{hosts}({freq})")];
            for plan in plans {
                eprintln!(
                    "[fig8] {} {} hosts={hosts} ...",
                    preset.paper_name,
                    plan.label()
                );
                let mut config = DistConfig::paper_default(hosts);
                config.plan = plan;
                let result =
                    DistributedTrainer::new(params.clone(), config).train(&d.corpus, &d.vocab);
                row.push(fmt_secs(result.virtual_time()));
                points.push(Point {
                    dataset: preset.paper_name.to_owned(),
                    plan: plan.label().to_owned(),
                    hosts,
                    sync_frequency: freq,
                    virtual_secs: result.virtual_time(),
                    compute_secs: result.compute_time,
                    comm_secs: result.comm_time,
                    total_bytes: result.stats.total_bytes(),
                });
            }
            table.add_row(row);
        }
        println!("--- {} ---", preset.paper_name);
        print!("{table}");
        // Per-dataset speedup summary at 32 hosts for the Opt variant.
        let base = points
            .iter()
            .find(|p| p.dataset == preset.paper_name && p.hosts == 1 && p.plan == "RepModel-Opt")
            .map(|p| p.virtual_secs);
        let at32 = points
            .iter()
            .find(|p| p.dataset == preset.paper_name && p.hosts == 32 && p.plan == "RepModel-Opt")
            .map(|p| p.virtual_secs);
        if let (Some(b), Some(t)) = (base, at32) {
            println!(
                "RepModel-Opt speedup at 32 hosts: {:.1}x (paper: 10.5x)\n",
                b / t
            );
        }
    }
    write_json_run("fig8", scale, 1, &points);
}
