//! Classic vertex programs on the BSP substrate.
//!
//! These are the validation suite for the distributed runtime: each
//! algorithm is written exactly the way a D-Galois application is —
//! a local operator plus a Gluon-style `sync` with a reduction operator
//! (paper §2.4 uses SSSP as its running example) — and is tested against
//! an independent sequential implementation on random, grid and
//! power-law graphs.

pub mod bfs;
pub mod cc;
pub mod kcore;
pub mod pagerank;
pub mod sssp;
pub mod sssp_delta;

pub use bfs::{bfs_distributed, bfs_sequential};
pub use cc::{cc_distributed, cc_sequential};
pub use kcore::{kcore_distributed, kcore_sequential};
pub use pagerank::{pagerank_distributed, pagerank_sequential};
pub use sssp::{sssp_distributed, sssp_sequential};
pub use sssp_delta::sssp_data_driven;
