//! The Skip-Gram-with-Negative-Sampling training operator.
//!
//! This is the *graph operator* of GraphWord2Vec (paper §4.1): applied to
//! a chunk of the worklist (corpus positions), it generates edges on the
//! fly — positive edges between a center word and its context window,
//! negative edges to sampled words — and walks each edge with one SGD
//! step, updating the two node labels (`syn0` on the context side,
//! `syn1neg` on the center/negative side), exactly as the reference C
//! implementation does:
//!
//! ```text
//! for each surviving position i (after frequent-word subsampling):
//!   b = rng % window                      # shrink the window randomly
//!   for each context position c in the shrunk window around i:
//!     neu1e = 0
//!     for d in 0..=negative:
//!       target, label = (center, 1) if d == 0 else (sample(), 0)
//!       f = syn0[context] · syn1neg[target]
//!       g = (label − σ(f)) · α
//!       neu1e        += g · syn1neg[target]      # read before write!
//!       syn1neg[target] += g · syn0[context]
//!     syn0[context] += neu1e
//! ```
//!
//! The loop is written once, generic over [`SgnsStore`], and reused by
//! the sequential, Hogwild, batched and distributed trainers — plus the
//! no-write [`RecordingStore`] that implements the PullModel *inspection*
//! phase (paper §4.4): because every stochastic choice above comes from
//! the caller's RNG and none depends on model values, replaying the loop
//! against a recording store with a cloned RNG yields exactly the nodes
//! the real execution will access.

use crate::sigmoid::SigmoidTable;
use gw2v_corpus::subsample::SubsampleTable;
use gw2v_corpus::unigram::NegativeSampler;
use gw2v_util::bitvec::BitVec;
use gw2v_util::fvec::{self, FlatMatrix};
use gw2v_util::rng::Rng64;

/// Layer index of the embedding layer (`syn0`) in multi-layer stores.
pub const LAYER_SYN0: usize = 0;
/// Layer index of the training layer (`syn1neg`).
pub const LAYER_SYN1NEG: usize = 1;

/// Model access used by the SGNS inner loop.
///
/// Implementations decide where rows live (plain matrices, a tracked
/// distributed replica, relaxed atomics) and what "access" means (the
/// recording store only takes notes).
pub trait SgnsStore {
    /// Vector dimensionality.
    fn dim(&self) -> usize;
    /// `syn0[win] · syn1neg[wout]`.
    fn dot(&self, win: u32, wout: u32) -> f32;
    /// `buf += g · syn1neg[wout]` — must be called *before*
    /// [`SgnsStore::add_out`] for the same `wout` within a step (the C
    /// code reads the pre-update value).
    fn acc_hidden(&self, buf: &mut [f32], g: f32, wout: u32);
    /// `syn1neg[wout] += g · syn0[win]`.
    fn add_out(&mut self, wout: u32, g: f32, win: u32);
    /// `syn0[win] += buf`.
    fn add_in(&mut self, win: u32, buf: &[f32]);
    /// Fused gradient step: `buf += g · syn1neg[wout]` then
    /// `syn1neg[wout] += g · syn0[win]`, reading the pre-update `syn1neg`
    /// row exactly once.
    ///
    /// The default falls back to the [`SgnsStore::acc_hidden`] /
    /// [`SgnsStore::add_out`] pair, which is element-wise identical (the
    /// stores that only observe accesses, like [`RecordingStore`], need no
    /// override). Row-owning stores override this with
    /// [`fvec::fused_grad_step`] to halve memory traffic per negative
    /// sample.
    #[inline]
    fn fused_grad(&mut self, wout: u32, g: f32, win: u32, buf: &mut [f32]) {
        self.acc_hidden(buf, g, wout);
        self.add_out(wout, g, win);
    }
}

/// Shared, immutable per-run training context.
pub struct TrainContext<'a, S> {
    /// Maximum window radius.
    pub window: usize,
    /// Negative samples per pair.
    pub negative: usize,
    /// Sigmoid lookup table.
    pub sigmoid: &'a SigmoidTable,
    /// Negative-sample source.
    pub sampler: &'a S,
    /// Frequent-word downsampling table.
    pub subsample: &'a SubsampleTable,
}

/// Reusable per-worker scratch buffers.
#[derive(Clone, Debug, Default)]
pub struct TrainScratch {
    pub(crate) kept: Vec<u32>,
    pub(crate) neu1e: Vec<f32>,
}

/// Trains one sentence; returns the number of (positive) pairs stepped.
///
/// `sentence` is the raw encoded sentence; frequent-word subsampling is
/// applied inside (consuming `rng`), as in the C implementation.
pub fn train_sentence<M, S, R>(
    store: &mut M,
    sentence: &[u32],
    alpha: f32,
    ctx: &TrainContext<'_, S>,
    rng: &mut R,
    scratch: &mut TrainScratch,
) -> u64
where
    M: SgnsStore,
    S: NegativeSampler,
    R: Rng64,
{
    debug_assert!(ctx.window >= 1);
    scratch.kept.clear();
    scratch.kept.extend(
        sentence
            .iter()
            .copied()
            .filter(|&w| ctx.subsample.keep(w, rng)),
    );
    scratch.neu1e.resize(store.dim(), 0.0);
    let kept = &scratch.kept;
    let mut pairs = 0u64;
    for i in 0..kept.len() {
        let center = kept[i];
        // Random window shrink: effective span is window - b on each side.
        let b = rng.index(ctx.window);
        let span = 2 * ctx.window + 1 - b;
        for a in b..span {
            if a == ctx.window {
                continue;
            }
            let c = i as isize + a as isize - ctx.window as isize;
            if c < 0 || c as usize >= kept.len() {
                continue;
            }
            let context = kept[c as usize];
            let neu1e = &mut scratch.neu1e;
            neu1e.fill(0.0);
            for d in 0..=ctx.negative {
                let (target, label) = if d == 0 {
                    (center, 1.0f32)
                } else {
                    let t = ctx.sampler.sample(rng);
                    if t == center {
                        continue;
                    }
                    (t, 0.0f32)
                };
                let f = store.dot(context, target);
                let g = (label - ctx.sigmoid.value(f)) * alpha;
                store.fused_grad(target, g, context, neu1e);
            }
            store.add_in(context, neu1e);
            pairs += 1;
        }
    }
    pairs
}

/// Plain two-matrix store: the sequential baseline's model access.
pub struct PlainStore<'a> {
    /// Embedding layer.
    pub syn0: &'a mut FlatMatrix,
    /// Training layer.
    pub syn1neg: &'a mut FlatMatrix,
}

impl SgnsStore for PlainStore<'_> {
    #[inline]
    fn dim(&self) -> usize {
        self.syn0.dim()
    }

    #[inline]
    fn dot(&self, win: u32, wout: u32) -> f32 {
        fvec::dot(self.syn0.row(win as usize), self.syn1neg.row(wout as usize))
    }

    #[inline]
    fn acc_hidden(&self, buf: &mut [f32], g: f32, wout: u32) {
        fvec::axpy(g, self.syn1neg.row(wout as usize), buf);
    }

    #[inline]
    fn add_out(&mut self, wout: u32, g: f32, win: u32) {
        // Rows live in different matrices, so the borrows are disjoint;
        // copy the input row through a re-borrow to satisfy the checker
        // without unsafe: read syn0 first (it is not being mutated).
        let (syn0, syn1neg) = (&*self.syn0, &mut *self.syn1neg);
        let src = syn0.row(win as usize);
        fvec::axpy(g, src, syn1neg.row_mut(wout as usize));
    }

    #[inline]
    fn add_in(&mut self, win: u32, buf: &[f32]) {
        fvec::add_assign(self.syn0.row_mut(win as usize), buf);
    }

    #[inline]
    fn fused_grad(&mut self, wout: u32, g: f32, win: u32, buf: &mut [f32]) {
        let (syn0, syn1neg) = (&*self.syn0, &mut *self.syn1neg);
        fvec::fused_grad_step(
            g,
            syn0.row(win as usize),
            syn1neg.row_mut(wout as usize),
            buf,
        );
    }
}

/// Distributed store over a host's tracked [`gw2v_gluon::ModelReplica`]
/// (layer 0 = `syn0`, layer 1 = `syn1neg`); every write snapshots the
/// row base so the synchronization phase can ship deltas.
pub struct ReplicaStore<'a> {
    /// The host's replica.
    pub replica: &'a mut gw2v_gluon::ModelReplica,
}

impl SgnsStore for ReplicaStore<'_> {
    #[inline]
    fn dim(&self) -> usize {
        self.replica.layers[LAYER_SYN0].dim()
    }

    #[inline]
    fn dot(&self, win: u32, wout: u32) -> f32 {
        fvec::dot(
            self.replica.row(LAYER_SYN0, win),
            self.replica.row(LAYER_SYN1NEG, wout),
        )
    }

    #[inline]
    fn acc_hidden(&self, buf: &mut [f32], g: f32, wout: u32) {
        fvec::axpy(g, self.replica.row(LAYER_SYN1NEG, wout), buf);
    }

    #[inline]
    fn add_out(&mut self, wout: u32, g: f32, win: u32) {
        // Tracked write (the split borrow snapshots wout's base on first
        // touch); syn0[win] is only read.
        let (src, dst) = self
            .replica
            .row_and_row_mut(LAYER_SYN0, win, LAYER_SYN1NEG, wout);
        fvec::axpy(g, src, dst);
    }

    #[inline]
    fn add_in(&mut self, win: u32, buf: &[f32]) {
        fvec::add_assign(self.replica.row_mut(LAYER_SYN0, win), buf);
    }

    #[inline]
    fn fused_grad(&mut self, wout: u32, g: f32, win: u32, buf: &mut [f32]) {
        // Same tracked split borrow as `add_out`: wout's base is
        // snapshotted on first touch, syn0[win] is only read.
        let (src, dst) = self
            .replica
            .row_and_row_mut(LAYER_SYN0, win, LAYER_SYN1NEG, wout);
        fvec::fused_grad_step(g, src, dst, buf);
    }
}

/// Access-recording store for the PullModel inspection phase: performs no
/// arithmetic, just marks which rows the replayed round will read/write.
pub struct RecordingStore {
    dim: usize,
    /// Accessed `syn0` rows.
    pub syn0_access: BitVec,
    /// Accessed `syn1neg` rows.
    pub syn1_access: BitVec,
}

impl RecordingStore {
    /// Creates a recorder for a model of `n_words` rows.
    pub fn new(n_words: usize, dim: usize) -> Self {
        Self {
            dim,
            syn0_access: BitVec::new(n_words),
            syn1_access: BitVec::new(n_words),
        }
    }
}

impl SgnsStore for RecordingStore {
    #[inline]
    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn dot(&self, _win: u32, _wout: u32) -> f32 {
        // Constant output is safe: no stochastic choice in the training
        // loop depends on model values, so the RNG stream (and hence the
        // access pattern) is unaffected.
        0.0
    }

    #[inline]
    fn acc_hidden(&self, _buf: &mut [f32], _g: f32, _wout: u32) {}

    #[inline]
    fn add_out(&mut self, wout: u32, _g: f32, win: u32) {
        self.syn0_access.set(win as usize);
        self.syn1_access.set(wout as usize);
    }

    #[inline]
    fn add_in(&mut self, win: u32, _buf: &[f32]) {
        self.syn0_access.set(win as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Word2VecModel;
    use gw2v_corpus::unigram::AliasSampler;
    use gw2v_corpus::vocab::{VocabBuilder, Vocabulary};
    use gw2v_gluon::ModelReplica;
    use gw2v_util::rng::Xoshiro256;

    fn vocab_n(n: usize) -> Vocabulary {
        let mut b = VocabBuilder::new();
        for i in 0..n {
            // Descending counts so ids are stable: w0 most frequent.
            for _ in 0..(2 * (n - i)) {
                b.add_token(&format!("w{i:03}"));
            }
        }
        b.build(1)
    }

    fn ctx_for<'a>(
        vocab: &Vocabulary,
        sampler: &'a AliasSampler,
        sigmoid: &'a SigmoidTable,
        subsample: &'a SubsampleTable,
        window: usize,
        negative: usize,
    ) -> TrainContext<'a, AliasSampler> {
        let _ = vocab;
        TrainContext {
            window,
            negative,
            sigmoid,
            sampler,
            subsample,
        }
    }

    struct Fixture {
        vocab: Vocabulary,
        sampler: AliasSampler,
        sigmoid: SigmoidTable,
        subsample: SubsampleTable,
    }

    impl Fixture {
        fn new(n: usize) -> Self {
            let vocab = vocab_n(n);
            let sampler = AliasSampler::from_vocab(&vocab);
            let sigmoid = SigmoidTable::new();
            let subsample = SubsampleTable::new(&vocab, 0.0); // keep all
            Self {
                vocab,
                sampler,
                sigmoid,
                subsample,
            }
        }

        fn ctx(&self, window: usize, negative: usize) -> TrainContext<'_, AliasSampler> {
            ctx_for(
                &self.vocab,
                &self.sampler,
                &self.sigmoid,
                &self.subsample,
                window,
                negative,
            )
        }
    }

    #[test]
    fn positive_pair_similarity_increases() {
        let fx = Fixture::new(10);
        let mut model = Word2VecModel::init(10, 16, 3);
        let sentence = vec![1u32, 2];
        let ctx = fx.ctx(2, 3);
        let before = fvec::dot(model.syn0.row(2), model.syn1neg.row(1));
        let mut rng = Xoshiro256::new(5);
        let mut scratch = TrainScratch::default();
        for _ in 0..200 {
            let mut store = PlainStore {
                syn0: &mut model.syn0,
                syn1neg: &mut model.syn1neg,
            };
            train_sentence(&mut store, &sentence, 0.05, &ctx, &mut rng, &mut scratch);
        }
        // After repeated training on the pair (1,2), σ(syn0[2]·syn1neg[1])
        // should approach 1 (and symmetric for the other direction).
        let after = fvec::dot(model.syn0.row(2), model.syn1neg.row(1));
        assert!(after > before + 0.5, "dot went {before} -> {after}");
    }

    #[test]
    fn training_is_deterministic() {
        let fx = Fixture::new(12);
        let sentence: Vec<u32> = vec![0, 3, 5, 7, 2, 1];
        let ctx = fx.ctx(3, 5);
        let run = || {
            let mut model = Word2VecModel::init(12, 8, 11);
            let mut rng = Xoshiro256::new(42);
            let mut scratch = TrainScratch::default();
            let mut store = PlainStore {
                syn0: &mut model.syn0,
                syn1neg: &mut model.syn1neg,
            };
            let pairs = train_sentence(&mut store, &sentence, 0.025, &ctx, &mut rng, &mut scratch);
            (model, pairs)
        };
        let (m1, p1) = run();
        let (m2, p2) = run();
        assert_eq!(p1, p2);
        assert_eq!(m1, m2);
        assert!(p1 > 0);
    }

    #[test]
    fn replica_store_matches_plain_store() {
        let fx = Fixture::new(15);
        let sentence: Vec<u32> = vec![4, 9, 1, 0, 13, 2, 6];
        let ctx = fx.ctx(2, 4);
        // Plain.
        let mut model = Word2VecModel::init(15, 12, 77);
        let mut rng_a = Xoshiro256::new(9);
        let mut scratch = TrainScratch::default();
        {
            let mut store = PlainStore {
                syn0: &mut model.syn0,
                syn1neg: &mut model.syn1neg,
            };
            train_sentence(&mut store, &sentence, 0.03, &ctx, &mut rng_a, &mut scratch);
        }
        // Replica.
        let init = Word2VecModel::init(15, 12, 77);
        let mut replica = ModelReplica::new(vec![init.syn0, init.syn1neg]);
        let mut rng_b = Xoshiro256::new(9);
        {
            let mut store = ReplicaStore {
                replica: &mut replica,
            };
            train_sentence(&mut store, &sentence, 0.03, &ctx, &mut rng_b, &mut scratch);
        }
        assert_eq!(model.syn0, replica.layers[LAYER_SYN0]);
        assert_eq!(model.syn1neg, replica.layers[LAYER_SYN1NEG]);
        // And the replica tracked its touches.
        assert!(replica.tracker(LAYER_SYN0).touched_count() > 0);
        assert!(replica.tracker(LAYER_SYN1NEG).touched_count() > 0);
    }

    #[test]
    fn recording_store_predicts_exact_touch_sets() {
        let fx = Fixture::new(20);
        let sentence: Vec<u32> = vec![3, 8, 15, 1, 0, 19, 4, 4, 7];
        let ctx = fx.ctx(3, 6);
        // Inspection replay with a cloned RNG...
        let mut rng_inspect = Xoshiro256::new(123);
        let mut recorder = RecordingStore::new(20, 10);
        let mut scratch = TrainScratch::default();
        train_sentence(
            &mut recorder,
            &sentence,
            0.025,
            &ctx,
            &mut rng_inspect,
            &mut scratch,
        );
        // ...then the real execution with the same starting RNG state.
        let init = Word2VecModel::init(20, 10, 5);
        let mut replica = ModelReplica::new(vec![init.syn0, init.syn1neg]);
        let mut rng_real = Xoshiro256::new(123);
        {
            let mut store = ReplicaStore {
                replica: &mut replica,
            };
            train_sentence(
                &mut store,
                &sentence,
                0.025,
                &ctx,
                &mut rng_real,
                &mut scratch,
            );
        }
        assert_eq!(
            &recorder.syn0_access,
            replica.tracker(LAYER_SYN0).touched_bits(),
            "inspection must predict syn0 touches exactly"
        );
        assert_eq!(
            &recorder.syn1_access,
            replica.tracker(LAYER_SYN1NEG).touched_bits(),
            "inspection must predict syn1neg touches exactly"
        );
        // And the RNGs advanced identically.
        assert_eq!(rng_inspect.next_u64(), rng_real.next_u64());
    }

    #[test]
    fn empty_and_single_word_sentences_train_nothing() {
        let fx = Fixture::new(5);
        let ctx = fx.ctx(2, 2);
        let mut model = Word2VecModel::init(5, 4, 1);
        let before = model.clone();
        let mut rng = Xoshiro256::new(1);
        let mut scratch = TrainScratch::default();
        for sentence in [vec![], vec![3u32]] {
            let mut store = PlainStore {
                syn0: &mut model.syn0,
                syn1neg: &mut model.syn1neg,
            };
            let pairs = train_sentence(&mut store, &sentence, 0.025, &ctx, &mut rng, &mut scratch);
            assert_eq!(pairs, 0);
        }
        assert_eq!(model, before);
    }

    #[test]
    fn zero_alpha_changes_nothing_but_consumes_rng() {
        let fx = Fixture::new(8);
        let ctx = fx.ctx(2, 3);
        let sentence = vec![0u32, 1, 2, 3];
        let mut model = Word2VecModel::init(8, 6, 2);
        let before = model.clone();
        let mut rng = Xoshiro256::new(7);
        let mut scratch = TrainScratch::default();
        let mut store = PlainStore {
            syn0: &mut model.syn0,
            syn1neg: &mut model.syn1neg,
        };
        let pairs = train_sentence(&mut store, &sentence, 0.0, &ctx, &mut rng, &mut scratch);
        assert!(pairs > 0);
        assert_eq!(model, before);
    }

    #[test]
    fn subsampling_reduces_trained_pairs() {
        // With an aggressive threshold the most frequent words are mostly
        // dropped, so fewer pairs get trained.
        let vocab = vocab_n(6);
        let sampler = AliasSampler::from_vocab(&vocab);
        let sigmoid = SigmoidTable::new();
        let keep_all = SubsampleTable::new(&vocab, 0.0);
        let aggressive = SubsampleTable::new(&vocab, 1e-6);
        let sentence: Vec<u32> = (0..6u32).cycle().take(60).collect();
        let count_pairs = |sub: &SubsampleTable| -> u64 {
            let ctx = TrainContext {
                window: 2,
                negative: 2,
                sigmoid: &sigmoid,
                sampler: &sampler,
                subsample: sub,
            };
            let mut model = Word2VecModel::init(6, 4, 3);
            let mut rng = Xoshiro256::new(55);
            let mut scratch = TrainScratch::default();
            let mut store = PlainStore {
                syn0: &mut model.syn0,
                syn1neg: &mut model.syn1neg,
            };
            train_sentence(&mut store, &sentence, 0.025, &ctx, &mut rng, &mut scratch)
        };
        let full = count_pairs(&keep_all);
        let sub = count_pairs(&aggressive);
        assert!(sub < full / 2, "subsampled {sub} vs full {full}");
    }
}
