//! Property-based tests on the walk-corpus subsystem.
//!
//! The walk generator's contract is behavioural, not structural, so it
//! is pinned over randomly drawn graphs and parameters:
//!
//! * shape — every corpus has exactly `walks_per_node · n` walks, and
//!   every walk has `walk_length` tokens (less only when it starts on
//!   an isolated node, which stops at one token);
//! * validity — every consecutive token pair in every walk is a real
//!   edge of the graph;
//! * degeneracy — `p = q = 1` routed through the *second-order*
//!   edge-table code path is byte-identical to the first-order uniform
//!   walk (uniform alias tables are pass-throughs over the same RNG
//!   stream);
//! * determinism — same `(seed, graph, params)` → identical corpus;
//!   a different seed changes it (on any graph with a real choice);
//! * distribution — alias-sampled transition frequencies match the
//!   node2vec weights: uniform first hops on a star's centre, and the
//!   closed-form return probability `(1/p) / (1/p + (d−1)/q)` when
//!   stepping back from the centre of a star (leaves are mutually
//!   non-adjacent, so every non-return neighbour carries weight `1/q`).
//!
//! Plus the edge-list robustness satellite: a graph built from an
//! arbitrary valid edge set survives write → load byte-exactly.

use gw2v_corpus::graphs::{parse_edge_list, parse_node_word, write_edge_list, WalkGraph};
use gw2v_corpus::walks::{generate_walks, generate_walks_second_order, WalkParams};
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a simple graph from an arbitrary pair list: ids are reduced
/// mod `n`, self-loops and duplicates dropped.
fn graph_from_raw(n: usize, raw: &[(u32, u32)]) -> WalkGraph {
    let mut seen = HashSet::new();
    let mut edges = Vec::new();
    for &(a, b) in raw {
        let (u, v) = (a % n as u32, b % n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    WalkGraph::from_edges(n, &edges).expect("deduped simple edges")
}

fn tokens_of(line: &str) -> Vec<u32> {
    line.split_whitespace()
        .map(|w| parse_node_word(w).expect("walk tokens are node words"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Walk count is exact; token counts are bounded by `walk_length`,
    /// reaching it everywhere except isolated starts (exactly 1 token).
    #[test]
    fn corpus_shape_bounds(
        n in 2usize..24,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..60),
        walks_per_node in 1usize..4,
        walk_length in 1usize..12,
        seed in any::<u64>(),
    ) {
        let g = graph_from_raw(n, &raw);
        let params = WalkParams { walks_per_node, walk_length, p: 1.0, q: 1.0, seed };
        let c = generate_walks(&g, &params);
        prop_assert_eq!(c.n_walks, walks_per_node * n);
        prop_assert_eq!(c.text.lines().count(), c.n_walks);
        let mut counted = 0usize;
        for line in c.text.lines() {
            let toks = tokens_of(line);
            counted += toks.len();
            let start = toks[0];
            if g.degree(start) == 0 {
                prop_assert_eq!(toks.len(), 1, "isolated start stops at one token");
            } else {
                prop_assert_eq!(toks.len(), walk_length);
            }
        }
        prop_assert_eq!(counted, c.n_tokens);
    }

    /// Every consecutive token pair in every walk is an edge, for both
    /// uniform and biased parameters.
    #[test]
    fn transitions_are_real_edges(
        n in 2usize..24,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..60),
        p in prop_oneof![Just(1.0f64), 0.25f64..4.0],
        q in prop_oneof![Just(1.0f64), 0.25f64..4.0],
        seed in any::<u64>(),
    ) {
        let g = graph_from_raw(n, &raw);
        let params = WalkParams { walks_per_node: 2, walk_length: 8, p, q, seed };
        for line in generate_walks(&g, &params).text.lines() {
            for pair in tokens_of(line).windows(2) {
                prop_assert!(g.has_edge(pair[0], pair[1]),
                    "{} -> {} is not an edge", pair[0], pair[1]);
            }
        }
    }

    /// `p = q = 1` through the forced second-order path is byte-equal
    /// to the first-order uniform walk.
    #[test]
    fn pq_one_degenerates_to_uniform(
        n in 2usize..20,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..50),
        seed in any::<u64>(),
    ) {
        let g = graph_from_raw(n, &raw);
        let params = WalkParams { walks_per_node: 2, walk_length: 10, p: 1.0, q: 1.0, seed };
        prop_assert_eq!(
            generate_walks(&g, &params),
            generate_walks_second_order(&g, &params)
        );
    }

    /// Same seed → identical corpus; a different seed changes it
    /// whenever the graph offers any choice to a walker.
    #[test]
    fn seeded_determinism(
        n in 3usize..20,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 10..60),
        seed in any::<u64>(),
    ) {
        let g = graph_from_raw(n, &raw);
        let params = WalkParams { walks_per_node: 2, walk_length: 12, p: 1.0, q: 1.0, seed };
        let a = generate_walks(&g, &params);
        prop_assert_eq!(&a, &generate_walks(&g, &params));
        // Only branch-free graphs (all degrees <= 1 once entered) can
        // yield seed-independent walks; skip those.
        prop_assume!((0..n as u32).any(|u| g.degree(u) >= 2));
        let other = WalkParams { seed: seed.wrapping_add(1), ..params };
        prop_assert_ne!(&a, &generate_walks(&g, &other));
    }

    /// Alias-sampled transitions match their specified distribution on
    /// a star graph: uniform first hops from the centre, and the
    /// closed-form node2vec return probability on the second hop of
    /// leaf-started walks.
    #[test]
    fn alias_sampling_matches_frequencies(
        d in 3usize..8,
        p in prop_oneof![Just(1.0f64), 0.25f64..4.0],
        q in prop_oneof![Just(1.0f64), 0.25f64..4.0],
        seed in any::<u64>(),
    ) {
        // Node 0 is the centre; 1..=d are leaves.
        let edges: Vec<(u32, u32)> = (1..=d as u32).map(|leaf| (0, leaf)).collect();
        let g = WalkGraph::from_edges(d + 1, &edges).expect("star");
        let params = WalkParams { walks_per_node: 1500, walk_length: 3, p, q, seed };
        let c = generate_walks(&g, &params);
        let mut first_hop = vec![0usize; d + 1];
        let (mut returns, mut leaf_starts) = (0usize, 0usize);
        for line in c.text.lines() {
            let toks = tokens_of(line);
            if toks[0] == 0 {
                first_hop[toks[1] as usize] += 1;
            } else {
                // leaf -> centre (forced) -> toks[2], conditioned on the
                // previous node being the start leaf.
                leaf_starts += 1;
                if toks[2] == toks[0] {
                    returns += 1;
                }
            }
        }
        // Uniform first hop from the centre: each leaf ~ 1/d.
        let centre_walks: usize = first_hop.iter().sum();
        for (leaf, &hits) in first_hop.iter().enumerate().skip(1) {
            let freq = hits as f64 / centre_walks as f64;
            prop_assert!((freq - 1.0 / d as f64).abs() < 0.05,
                "leaf {leaf}: {freq} vs uniform {}", 1.0 / d as f64);
        }
        // Biased second hop: P(return) = (1/p) / (1/p + (d-1)/q).
        let expect = (1.0 / p) / (1.0 / p + (d - 1) as f64 / q);
        let freq = returns as f64 / leaf_starts as f64;
        prop_assert!((freq - expect).abs() < 0.05,
            "return freq {freq} vs node2vec weight {expect} (p={p}, q={q}, d={d})");
    }

    /// Edge-list write → load is the identity on graphs.
    #[test]
    fn edge_list_roundtrip(
        n in 1usize..32,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..80),
    ) {
        let g = graph_from_raw(n, &raw);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let reloaded = parse_edge_list(std::io::Cursor::new(buf)).expect("reload");
        prop_assert_eq!(g, reloaded);
    }
}
