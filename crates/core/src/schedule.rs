//! Learning-rate schedule.
//!
//! The C implementation decays the learning rate linearly with global
//! progress: `α = α₀ · max(min_frac, 1 − processed/(epochs·total + 1))`,
//! re-evaluated periodically as training advances. In the distributed
//! setting each host observes only its own progress; since shards are
//! token-balanced, `own_processed · n_hosts` estimates global progress
//! (this is also how the multi-threaded C code's shared `word_count_actual`
//! behaves). The paper's Algorithm 1 decays once per epoch; evaluating
//! the same linear formula continuously is the C-compatible refinement
//! and makes the 1-host distributed run match the sequential baseline
//! exactly.

use serde::{Deserialize, Serialize};

/// Linear decay schedule.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LrSchedule {
    /// Starting learning rate α₀.
    pub alpha0: f32,
    /// Floor as a fraction of α₀.
    pub min_frac: f32,
    /// Total tokens per epoch across all hosts.
    pub total_tokens: u64,
    /// Number of epochs.
    pub epochs: usize,
}

impl LrSchedule {
    /// Creates a schedule.
    pub fn new(alpha0: f32, min_frac: f32, total_tokens: u64, epochs: usize) -> Self {
        Self {
            alpha0,
            min_frac,
            total_tokens,
            epochs,
        }
    }

    /// Learning rate after `processed_global` tokens of global progress.
    #[inline]
    pub fn alpha_at(&self, processed_global: u64) -> f32 {
        let denom = self.epochs as f64 * self.total_tokens as f64 + 1.0;
        let frac = 1.0 - processed_global as f64 / denom;
        (self.alpha0 as f64 * frac.max(self.min_frac as f64)) as f32
    }

    /// Learning rate for a host that has processed `own` tokens out of a
    /// cluster of `n_hosts` (global progress estimated as `own·n_hosts`).
    #[inline]
    pub fn alpha_for_host(&self, own_processed: u64, n_hosts: usize) -> f32 {
        self.alpha_at(own_processed * n_hosts as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_alpha0() {
        let s = LrSchedule::new(0.025, 1e-4, 1000, 4);
        assert_eq!(s.alpha_at(0), 0.025);
    }

    #[test]
    fn decays_linearly() {
        let s = LrSchedule::new(0.1, 1e-4, 1000, 1);
        let half = s.alpha_at(500);
        assert!((half - 0.05).abs() < 1e-3, "{half}");
    }

    #[test]
    fn never_below_floor() {
        let s = LrSchedule::new(0.025, 1e-4, 100, 1);
        let end = s.alpha_at(10_000);
        assert!((end - 0.025 * 1e-4).abs() < 1e-9);
    }

    #[test]
    fn host_estimate_scales() {
        let s = LrSchedule::new(0.02, 1e-4, 3200, 2);
        // 4 hosts, each processed 800 of 3200/epoch → global 3200 of 6400.
        let a = s.alpha_for_host(800, 4);
        assert!((a - 0.01).abs() < 1e-4, "{a}");
        // Equivalent to a single host having processed 3200.
        assert_eq!(a, s.alpha_at(3200));
    }

    #[test]
    fn monotone_nonincreasing() {
        let s = LrSchedule::new(0.05, 1e-4, 500, 3);
        let mut prev = f32::INFINITY;
        for p in (0..3000).step_by(100) {
            let a = s.alpha_at(p);
            assert!(a <= prev);
            prev = a;
        }
    }
}
