//! Nearest-neighbour queries over normalized embeddings.

use gw2v_core::model::Word2VecModel;
use gw2v_util::fvec::{self, FlatMatrix};
use rayon::prelude::*;

/// A query index: every embedding row normalized to unit length, so
/// cosine similarity is a plain dot product.
pub struct EmbeddingIndex {
    normed: FlatMatrix,
}

impl EmbeddingIndex {
    /// Builds the index from a model's embedding layer.
    pub fn new(model: &Word2VecModel) -> Self {
        let mut normed = model.syn0.clone();
        for r in 0..normed.rows() {
            fvec::normalize(normed.row_mut(r));
        }
        Self { normed }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.normed.rows()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.normed.rows() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.normed.dim()
    }

    /// The unit-normalized vector of word `w`.
    pub fn vector(&self, w: u32) -> &[f32] {
        self.normed.row(w as usize)
    }

    /// The `k` most-cosine-similar words to `query` (which need not be
    /// normalized), excluding ids in `exclude`. Returns `(id, cosine)`
    /// pairs, most similar first.
    pub fn nearest(&self, query: &[f32], k: usize, exclude: &[u32]) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim());
        let mut q = query.to_vec();
        fvec::normalize(&mut q);
        // Score all rows in parallel, then select top-k. A diverged
        // model (e.g. summed gradients at a 32x learning rate, paper
        // Fig. 6's red line) legitimately contains NaN/inf rows; such
        // rows rank last rather than poisoning the sort.
        let scores: Vec<f32> = (0..self.len())
            .into_par_iter()
            .map(|r| {
                let s = fvec::dot(&q, self.normed.row(r));
                if s.is_nan() {
                    f32::NEG_INFINITY
                } else {
                    s
                }
            })
            .collect();
        let mut candidates: Vec<(u32, f32)> = scores
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s))
            .filter(|(i, _)| !exclude.contains(i))
            .collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN mapped to -inf above"));
        candidates.truncate(k);
        candidates
    }

    /// The single best match (convenience for analogy evaluation).
    pub fn best(&self, query: &[f32], exclude: &[u32]) -> Option<(u32, f32)> {
        self.nearest(query, 1, exclude).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with_rows(rows: &[&[f32]]) -> Word2VecModel {
        let dim = rows[0].len();
        let mut syn0 = FlatMatrix::zeros(rows.len(), dim);
        for (i, r) in rows.iter().enumerate() {
            syn0.row_mut(i).copy_from_slice(r);
        }
        Word2VecModel::from_layers(syn0, FlatMatrix::zeros(rows.len(), dim))
    }

    #[test]
    fn finds_identical_direction() {
        let m = model_with_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.7, 0.7], &[-1.0, 0.0]]);
        let idx = EmbeddingIndex::new(&m);
        let hits = idx.nearest(&[2.0, 0.0], 2, &[]);
        assert_eq!(hits[0].0, 0);
        assert!((hits[0].1 - 1.0).abs() < 1e-5);
        assert_eq!(hits[1].0, 2, "45° vector is second closest");
    }

    #[test]
    fn exclusion_respected() {
        let m = model_with_rows(&[&[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0]]);
        let idx = EmbeddingIndex::new(&m);
        let best = idx.best(&[1.0, 0.0], &[0]).unwrap();
        assert_eq!(best.0, 1);
    }

    #[test]
    fn k_larger_than_vocab() {
        let m = model_with_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let idx = EmbeddingIndex::new(&m);
        let hits = idx.nearest(&[1.0, 1.0], 10, &[]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn zero_rows_rank_last() {
        let m = model_with_rows(&[&[0.0, 0.0], &[1.0, 0.0]]);
        let idx = EmbeddingIndex::new(&m);
        let hits = idx.nearest(&[1.0, 0.0], 2, &[]);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].1, 0.0, "zero vector scores 0");
    }

    #[test]
    fn nan_rows_rank_last_without_panicking() {
        // A diverged model layer: one row is all-NaN.
        let mut m = model_with_rows(&[&[1.0, 0.0], &[0.5, 0.5], &[0.0, 1.0]]);
        m.syn0.row_mut(1).fill(f32::NAN);
        let idx = EmbeddingIndex::new(&m);
        let hits = idx.nearest(&[1.0, 0.0], 3, &[]);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[2].0, 1, "NaN row ranks last");
        assert_eq!(hits[2].1, f32::NEG_INFINITY);
    }

    #[test]
    fn ties_break_by_ascending_id() {
        // Rows 0, 1 and 3 are the same direction: identical cosine.
        // The stable sort must keep them in ascending-id order, so the
        // result is deterministic and backend-independent.
        let m = model_with_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[0.0, 1.0], &[3.0, 0.0]]);
        let idx = EmbeddingIndex::new(&m);
        let hits = idx.nearest(&[1.0, 0.0], 4, &[]);
        let ids: Vec<u32> = hits.iter().map(|h| h.0).collect();
        assert_eq!(ids, vec![0, 1, 3, 2]);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let m = Word2VecModel::from_layers(FlatMatrix::zeros(0, 3), FlatMatrix::zeros(0, 3));
        let idx = EmbeddingIndex::new(&m);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.nearest(&[1.0, 0.0, 0.0], 5, &[]).is_empty());
        assert!(idx.best(&[1.0, 0.0, 0.0], &[]).is_none());
    }

    #[test]
    fn k_zero_returns_nothing() {
        let m = model_with_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let idx = EmbeddingIndex::new(&m);
        assert!(idx.nearest(&[1.0, 0.0], 0, &[]).is_empty());
    }

    #[test]
    fn excluding_everything_returns_nothing() {
        let m = model_with_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let idx = EmbeddingIndex::new(&m);
        assert!(idx.nearest(&[1.0, 0.0], 2, &[0, 1]).is_empty());
        assert!(idx.best(&[1.0, 0.0], &[0, 1]).is_none());
    }

    #[test]
    fn zero_query_scores_everything_zero() {
        let m = model_with_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let idx = EmbeddingIndex::new(&m);
        let hits = idx.nearest(&[0.0, 0.0], 2, &[]);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.1 == 0.0));
        assert_eq!(hits[0].0, 0, "all-tied scores keep ascending-id order");
    }

    #[test]
    fn ordering_is_descending() {
        let m = model_with_rows(&[&[1.0, 0.0], &[0.8, 0.6], &[0.0, 1.0], &[-0.5, -0.5]]);
        let idx = EmbeddingIndex::new(&m);
        let hits = idx.nearest(&[1.0, 0.2], 4, &[]);
        for pair in hits.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
