//! # gw2v-combiner
//!
//! Reduction operators for reconciling concurrently-computed model deltas
//! — the paper's Section 3 contribution.
//!
//! When `H` hosts train replicas of the same model between two
//! synchronization points, each produces a *delta* `dᵢ` (its local model
//! minus the shared base). The synchronization substrate must reduce
//! `{d₁ … d_H}` to one delta. The options implemented here:
//!
//! * [`Sum`](CombinerKind::Sum) — `Σ dᵢ`. For near-parallel deltas this
//!   effectively multiplies the learning rate by `H` and diverges
//!   (paper Fig. 2a / Fig. 6's `AVG lr=0.8` line is equivalent).
//! * [`Avg`](CombinerKind::Avg) — `Σ dᵢ / H`. Safe but approaches batch
//!   gradient descent as `H` grows: convergence per epoch degrades
//!   (Fig. 6's `AVG` lines).
//! * [`ModelCombiner`](CombinerKind::ModelCombiner) — the paper's
//!   contribution: deltas are combined *as if applied sequentially* by
//!   projecting each incoming delta onto the orthogonal complement of the
//!   accumulated combination (`d′ = d − (g·d/‖g‖²)·g`, then `g += d′`).
//!   Parallel components (which would double-count) are dropped,
//!   orthogonal components (independent progress) are kept whole.
//! * [`ModelCombinerPairwise`](CombinerKind::ModelCombinerPairwise) — the
//!   same projection applied in a balanced binary tree, the order an
//!   MPI-style reduction tree would produce; included for the ablation
//!   bench.
//!
//! Two invariants from the paper are upheld and property-tested:
//! Eq. (4): `‖d′‖ ≤ ‖d‖`, and (consequently)
//! `‖combine(d₁…d_n)‖² ≤ Σ‖dᵢ‖²`, which is what prevents divergence.

#![deny(missing_docs)]

use gw2v_util::fvec;
use serde::{Deserialize, Serialize};

/// Which reduction to use when reconciling host deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombinerKind {
    /// Add all deltas (the divergent baseline).
    Sum,
    /// Average all deltas (the slow-convergence baseline, "AVG").
    Avg,
    /// Orthogonal-projection model combiner, incremental induction ("MC").
    ModelCombiner,
    /// Model combiner applied as a balanced reduction tree.
    ModelCombinerPairwise,
}

impl CombinerKind {
    /// Parses `"sum" | "avg" | "mc" | "mc-pairwise"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "sum" => Some(Self::Sum),
            "avg" => Some(Self::Avg),
            "mc" | "modelcombiner" => Some(Self::ModelCombiner),
            "mc-pairwise" => Some(Self::ModelCombinerPairwise),
            _ => None,
        }
    }

    /// Short display name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Sum => "SUM",
            Self::Avg => "AVG",
            Self::ModelCombiner => "MC",
            Self::ModelCombinerPairwise => "MC-PW",
        }
    }

    /// Combines `deltas` (all the same length) into `out`.
    ///
    /// `out` is overwritten; its length must match. With zero deltas `out`
    /// is left as all zeros.
    pub fn combine_into(&self, deltas: &[&[f32]], out: &mut [f32]) {
        out.fill(0.0);
        match self {
            Self::Sum => {
                for d in deltas {
                    fvec::add_assign(out, d);
                }
            }
            Self::Avg => {
                for d in deltas {
                    fvec::add_assign(out, d);
                }
                if !deltas.is_empty() {
                    fvec::scale(1.0 / deltas.len() as f32, out);
                }
            }
            Self::ModelCombiner => {
                let mut scratch = vec![0.0f32; out.len()];
                for d in deltas {
                    mc_push(out, d, &mut scratch);
                }
            }
            Self::ModelCombinerPairwise => {
                if let Some(result) = pairwise_tree(deltas, out.len()) {
                    out.copy_from_slice(&result);
                }
            }
        }
    }

    /// Allocating convenience wrapper around [`CombinerKind::combine_into`].
    pub fn combine(&self, deltas: &[&[f32]], dim: usize) -> Vec<f32> {
        let mut out = vec![0.0; dim];
        self.combine_into(deltas, &mut out);
        out
    }
}

/// Numerical floor below which an accumulated vector is treated as zero
/// (projecting onto a ~zero vector is meaningless and numerically unstable).
const NORM_FLOOR: f32 = 1e-12;

/// Projects `d` onto the orthogonal complement of `g` and adds the result
/// to `g` in place: `g += d − (g·d/‖g‖²)·g`. This is one induction step of
/// the paper's model combiner. `scratch` must have the same length.
#[inline]
pub fn mc_push(g: &mut [f32], d: &[f32], scratch: &mut [f32]) {
    let g_norm_sq = fvec::norm_sq(g);
    if g_norm_sq <= NORM_FLOOR {
        fvec::add_assign(g, d);
        return;
    }
    let coeff = fvec::dot(g, d) / g_norm_sq;
    // scratch = d - coeff * g  (the projected component d′)
    scratch.copy_from_slice(d);
    fvec::axpy(-coeff, g, scratch);
    fvec::add_assign(g, scratch);
}

/// Projects `d` onto the orthogonal complement of `g`, writing `d′` into
/// `out` (does not modify `g`); returns `‖d′‖²`.
pub fn project_orthogonal(d: &[f32], g: &[f32], out: &mut [f32]) -> f32 {
    let g_norm_sq = fvec::norm_sq(g);
    out.copy_from_slice(d);
    if g_norm_sq > NORM_FLOOR {
        let coeff = fvec::dot(g, d) / g_norm_sq;
        fvec::axpy(-coeff, g, out);
    }
    fvec::norm_sq(out)
}

/// Balanced binary reduction tree over the deltas; each merge is
/// `combine(a, b) = a + b′` with `b′ ⊥ a`.
fn pairwise_tree(deltas: &[&[f32]], dim: usize) -> Option<Vec<f32>> {
    match deltas.len() {
        0 => None,
        1 => Some(deltas[0].to_vec()),
        n => {
            let mid = n / 2;
            let left = pairwise_tree(&deltas[..mid], dim);
            let right = pairwise_tree(&deltas[mid..], dim);
            match (left, right) {
                (Some(mut l), Some(r)) => {
                    let mut scratch = vec![0.0f32; dim];
                    mc_push(&mut l, &r, &mut scratch);
                    Some(l)
                }
                (l, r) => l.or(r),
            }
        }
    }
}

/// Streaming accumulator for one node's reduction at its master proxy:
/// deltas arrive one host at a time (own delta first, then each incoming
/// message) and the combined delta is read out at the end of the phase.
#[derive(Clone, Debug)]
pub struct CombineAccumulator {
    kind: CombinerKind,
    acc: Vec<f32>,
    count: usize,
    buffered: Vec<Vec<f32>>,
    scratch: Vec<f32>,
}

impl CombineAccumulator {
    /// Creates an accumulator for vectors of length `dim`.
    pub fn new(kind: CombinerKind, dim: usize) -> Self {
        Self {
            kind,
            acc: vec![0.0; dim],
            count: 0,
            buffered: Vec::new(),
            scratch: vec![0.0; dim],
        }
    }

    /// Re-arms a used accumulator for a new reduction, reusing its
    /// allocations. After `reset` the accumulator is indistinguishable
    /// from `CombineAccumulator::new(kind, dim)`, so pools of
    /// accumulators (one per concurrently-reduced node) can be recycled
    /// across synchronization rounds without touching the heap. (The
    /// `ModelCombinerPairwise` kind still buffers each pushed delta —
    /// it is the ablation-only tree variant and keeps its allocations.)
    pub fn reset(&mut self, kind: CombinerKind, dim: usize) {
        self.kind = kind;
        self.count = 0;
        self.buffered.clear();
        self.acc.clear();
        self.acc.resize(dim, 0.0);
        self.scratch.clear();
        self.scratch.resize(dim, 0.0);
    }

    /// Adds one host's delta.
    pub fn push(&mut self, delta: &[f32]) {
        assert_eq!(delta.len(), self.acc.len(), "delta dimension mismatch");
        self.count += 1;
        match self.kind {
            CombinerKind::Sum | CombinerKind::Avg => fvec::add_assign(&mut self.acc, delta),
            CombinerKind::ModelCombiner => mc_push(&mut self.acc, delta, &mut self.scratch),
            CombinerKind::ModelCombinerPairwise => self.buffered.push(delta.to_vec()),
        }
    }

    /// Number of deltas pushed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Finishes the reduction, returning the combined delta.
    pub fn finish(mut self) -> Vec<f32> {
        let mut out = vec![0.0; self.acc.len()];
        self.finish_into(&mut out);
        out
    }

    /// Finishes the reduction into a caller-provided buffer, leaving the
    /// accumulator reusable via [`CombineAccumulator::reset`]. Writes the
    /// same values [`CombineAccumulator::finish`] would return (`finish`
    /// is a thin allocating wrapper around this). `out.len()` must match
    /// the accumulator's dimension.
    pub fn finish_into(&mut self, out: &mut [f32]) {
        assert_eq!(out.len(), self.acc.len(), "output dimension mismatch");
        match self.kind {
            CombinerKind::Avg => {
                out.copy_from_slice(&self.acc);
                if self.count > 0 {
                    fvec::scale(1.0 / self.count as f32, out);
                }
            }
            CombinerKind::ModelCombinerPairwise => {
                let refs: Vec<&[f32]> = self.buffered.iter().map(|v| v.as_slice()).collect();
                match pairwise_tree(&refs, self.acc.len()) {
                    Some(combined) => out.copy_from_slice(&combined),
                    None => out.copy_from_slice(&self.acc),
                }
            }
            _ => out.copy_from_slice(&self.acc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw2v_util::fvec::{dot, norm, norm_sq};
    use proptest::prelude::*;

    fn v(x: &[f32]) -> Vec<f32> {
        x.to_vec()
    }

    #[test]
    fn parse_and_label() {
        assert_eq!(CombinerKind::parse("mc"), Some(CombinerKind::ModelCombiner));
        assert_eq!(CombinerKind::parse("AVG"), Some(CombinerKind::Avg));
        assert_eq!(CombinerKind::parse("sum").unwrap().label(), "SUM");
        assert_eq!(CombinerKind::parse("mc-pairwise").unwrap().label(), "MC-PW");
        assert_eq!(CombinerKind::parse("bogus"), None);
    }

    #[test]
    fn sum_and_avg_basics() {
        let d1 = v(&[1.0, 2.0]);
        let d2 = v(&[3.0, -2.0]);
        let deltas = [d1.as_slice(), d2.as_slice()];
        assert_eq!(CombinerKind::Sum.combine(&deltas, 2), vec![4.0, 0.0]);
        assert_eq!(CombinerKind::Avg.combine(&deltas, 2), vec![2.0, 0.0]);
    }

    #[test]
    fn empty_deltas_yield_zero() {
        for kind in [
            CombinerKind::Sum,
            CombinerKind::Avg,
            CombinerKind::ModelCombiner,
            CombinerKind::ModelCombinerPairwise,
        ] {
            assert_eq!(kind.combine(&[], 3), vec![0.0; 3], "{kind:?}");
        }
    }

    #[test]
    fn single_delta_passes_through() {
        let d = v(&[1.0, -2.0, 3.0]);
        for kind in [
            CombinerKind::Sum,
            CombinerKind::Avg,
            CombinerKind::ModelCombiner,
            CombinerKind::ModelCombinerPairwise,
        ] {
            assert_eq!(kind.combine(&[d.as_slice()], 3), d, "{kind:?}");
        }
    }

    #[test]
    fn mc_orthogonal_inputs_equal_sum() {
        // Fig. 2(b): orthogonal gradients should be added whole.
        let d1 = v(&[1.0, 0.0, 0.0]);
        let d2 = v(&[0.0, 2.0, 0.0]);
        let d3 = v(&[0.0, 0.0, -3.0]);
        let got = CombinerKind::ModelCombiner.combine(&[&d1, &d2, &d3], 3);
        assert_eq!(got, vec![1.0, 2.0, -3.0]);
    }

    #[test]
    fn mc_parallel_inputs_collapse_to_first() {
        // Fig. 2(a): a second gradient parallel to the first contributes
        // nothing new — MC keeps the step at 1x, not 2x.
        let d1 = v(&[1.0, 1.0]);
        let d2 = v(&[2.0, 2.0]);
        let got = CombinerKind::ModelCombiner.combine(&[&d1, &d2], 2);
        assert!(
            (got[0] - 1.0).abs() < 1e-6 && (got[1] - 1.0).abs() < 1e-6,
            "{got:?}"
        );
    }

    #[test]
    fn mc_intermediate_case_matches_formula() {
        // Fig. 2(c): g = g1 + (g2 − (g1·g2/‖g1‖²) g1).
        let g1 = v(&[2.0, 0.0]);
        let g2 = v(&[1.0, 1.0]);
        let got = CombinerKind::ModelCombiner.combine(&[&g1, &g2], 2);
        // proj coeff = (2*1)/4 = 0.5; g2' = (1,1) − 0.5·(2,0) = (0,1).
        assert!((got[0] - 2.0).abs() < 1e-6);
        assert!((got[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mc_zero_first_delta_does_not_nan() {
        let z = v(&[0.0, 0.0]);
        let d = v(&[1.0, 2.0]);
        let got = CombinerKind::ModelCombiner.combine(&[&z, &d], 2);
        assert_eq!(got, vec![1.0, 2.0]);
    }

    #[test]
    fn projection_orthogonality_and_eq4_contraction() {
        let g = v(&[3.0, 1.0, -2.0]);
        let d = v(&[1.0, 4.0, 0.5]);
        let mut out = vec![0.0; 3];
        let n2 = project_orthogonal(&d, &g, &mut out);
        assert!(dot(&out, &g).abs() < 1e-4, "d' ⊥ g");
        assert!(n2 <= norm_sq(&d) + 1e-6, "Eq. (4): ‖d'‖ ≤ ‖d‖");
        // ‖d'‖² = ‖d‖²(1 − cos²θ)
        let cos = dot(&g, &d) / (norm(&g) * norm(&d));
        let expect = norm_sq(&d) * (1.0 - cos * cos);
        assert!((n2 - expect).abs() < 1e-4);
    }

    #[test]
    fn accumulator_matches_batch_combine() {
        let deltas = [
            v(&[1.0, 2.0, 3.0]),
            v(&[-1.0, 0.5, 2.0]),
            v(&[0.0, 1.0, -1.0]),
            v(&[2.0, 2.0, 2.0]),
        ];
        let refs: Vec<&[f32]> = deltas.iter().map(|d| d.as_slice()).collect();
        for kind in [
            CombinerKind::Sum,
            CombinerKind::Avg,
            CombinerKind::ModelCombiner,
            CombinerKind::ModelCombinerPairwise,
        ] {
            let batch = kind.combine(&refs, 3);
            let mut acc = CombineAccumulator::new(kind, 3);
            for d in &deltas {
                acc.push(d);
            }
            assert_eq!(acc.count(), 4);
            let streamed = acc.finish();
            for (a, b) in batch.iter().zip(&streamed) {
                assert!((a - b).abs() < 1e-5, "{kind:?}: {batch:?} vs {streamed:?}");
            }
        }
    }

    #[test]
    fn reset_accumulator_matches_fresh_bitwise() {
        // A pooled accumulator, reset between reductions (possibly with a
        // different kind and dimension), must be bit-identical to a fresh
        // one — this is what lets sync rounds recycle accumulator pools.
        let rounds: [(CombinerKind, usize, &[&[f32]]); 4] = [
            (
                CombinerKind::ModelCombiner,
                3,
                &[&[1.0, 2.0, 3.0], &[0.5, -1.0, 2.0]],
            ),
            (
                CombinerKind::Avg,
                2,
                &[&[4.0, 2.0], &[2.0, 0.0], &[0.0, 1.0]],
            ),
            (CombinerKind::Sum, 4, &[&[1.0, 1.0, 1.0, 1.0]]),
            (
                CombinerKind::ModelCombinerPairwise,
                2,
                &[&[1.0, 0.0], &[1.0, 1.0]],
            ),
        ];
        let mut pooled = CombineAccumulator::new(CombinerKind::Sum, 1);
        for (kind, dim, deltas) in rounds {
            pooled.reset(kind, dim);
            let mut fresh = CombineAccumulator::new(kind, dim);
            for d in deltas {
                pooled.push(d);
                fresh.push(d);
            }
            let mut out = vec![0.0; dim];
            pooled.finish_into(&mut out);
            assert_eq!(out, fresh.finish(), "{kind:?}");
        }
    }

    #[test]
    fn quadratic_losses_decrease_under_mc() {
        // Two quadratic losses L_i(w) = ½‖w − cᵢ‖² with gradients w − cᵢ.
        // The paper proves (Eq. 3) that the *projected* component g2′ is a
        // valid descent direction for L2; it does not claim the full
        // combined step decreases each individual loss (that is the
        // acknowledged "algorithmic overhead"). We check exactly the
        // proven statements: (a) a step along g2′ decreases L2, (b) the
        // combined step decreases L1 (whose gradient is kept whole) and
        // (c) the total loss.
        let w = v(&[1.0, 1.0, 1.0]);
        let c1 = v(&[0.0, 2.0, 1.0]);
        let c2 = v(&[2.0, 0.0, 0.0]);
        let loss = |w: &[f32], c: &[f32]| -> f32 {
            0.5 * w.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
        };
        let g1: Vec<f32> = w.iter().zip(&c1).map(|(a, b)| a - b).collect();
        let g2: Vec<f32> = w.iter().zip(&c2).map(|(a, b)| a - b).collect();
        let alpha = 0.1;
        // (a) step along the projected component alone decreases L2.
        let mut g2p = vec![0.0; 3];
        project_orthogonal(&g2, &g1, &mut g2p);
        let w_proj: Vec<f32> = w.iter().zip(&g2p).map(|(a, b)| a - alpha * b).collect();
        assert!(
            loss(&w_proj, &c2) < loss(&w, &c2),
            "Eq. 3: L2 decreases along g2'"
        );
        // (b)+(c) the combined step decreases L1 and the total loss.
        let g = CombinerKind::ModelCombiner.combine(&[&g1, &g2], 3);
        let w_new: Vec<f32> = w.iter().zip(&g).map(|(a, b)| a - alpha * b).collect();
        assert!(loss(&w_new, &c1) < loss(&w, &c1), "L1 decreased");
        assert!(
            loss(&w_new, &c1) + loss(&w_new, &c2) < loss(&w, &c1) + loss(&w, &c2),
            "total loss decreased"
        );
    }

    #[test]
    fn sum_diverges_where_mc_does_not() {
        // Replicated quadratic loss L(w) = ½‖w‖², H identical gradients g = w.
        // Gradient descent with α = 0.75: SUM over 2 hosts steps by 1.5‖w‖
        // each time (factor |1 − 2α| = 0.5... choose α where SUM overshoots):
        // with α = 0.75, SUM multiplies w by (1 − 1.5) = −0.5 (oscillates),
        // with 3 hosts by (1 − 2.25) = −1.25 (diverges). MC keeps the factor
        // at (1 − 0.75) = 0.25 regardless of host count.
        let alpha = 0.75f32;
        let hosts = 3;
        let mut w_sum = vec![1.0f32, 1.0];
        let mut w_mc = vec![1.0f32, 1.0];
        for _ in 0..20 {
            let grads_sum: Vec<Vec<f32>> = (0..hosts).map(|_| w_sum.clone()).collect();
            let refs: Vec<&[f32]> = grads_sum.iter().map(|g| g.as_slice()).collect();
            let g = CombinerKind::Sum.combine(&refs, 2);
            for i in 0..2 {
                w_sum[i] -= alpha * g[i];
            }
            let grads_mc: Vec<Vec<f32>> = (0..hosts).map(|_| w_mc.clone()).collect();
            let refs: Vec<&[f32]> = grads_mc.iter().map(|g| g.as_slice()).collect();
            let g = CombinerKind::ModelCombiner.combine(&refs, 2);
            for i in 0..2 {
                w_mc[i] -= alpha * g[i];
            }
        }
        assert!(norm(&w_sum) > 100.0, "SUM diverges: {w_sum:?}");
        assert!(norm(&w_mc) < 1e-3, "MC converges: {w_mc:?}");
    }

    proptest! {
        #[test]
        fn prop_mc_norm_bounded_by_root_sum_sq(
            deltas in proptest::collection::vec(
                proptest::collection::vec(-5.0f32..5.0, 8), 1..8)
        ) {
            let refs: Vec<&[f32]> = deltas.iter().map(|d| d.as_slice()).collect();
            for kind in [CombinerKind::ModelCombiner, CombinerKind::ModelCombinerPairwise] {
                let combined = kind.combine(&refs, 8);
                let bound: f32 = deltas.iter().map(|d| norm_sq(d)).sum();
                prop_assert!(
                    norm_sq(&combined) <= bound * (1.0 + 1e-3) + 1e-5,
                    "{:?}: ‖g‖²={} > Σ‖dᵢ‖²={}", kind, norm_sq(&combined), bound
                );
            }
        }

        #[test]
        fn prop_mc_never_nan(
            deltas in proptest::collection::vec(
                proptest::collection::vec(-100.0f32..100.0, 4), 0..6)
        ) {
            let refs: Vec<&[f32]> = deltas.iter().map(|d| d.as_slice()).collect();
            let combined = CombinerKind::ModelCombiner.combine(&refs, 4);
            prop_assert!(combined.iter().all(|x| x.is_finite()));
        }

        #[test]
        fn prop_projection_contracts(
            d in proptest::collection::vec(-10.0f32..10.0, 6),
            g in proptest::collection::vec(-10.0f32..10.0, 6),
        ) {
            let mut out = vec![0.0; 6];
            let n2 = project_orthogonal(&d, &g, &mut out);
            prop_assert!(n2 <= norm_sq(&d) * (1.0 + 1e-3) + 1e-6);
            if norm_sq(&g) > 1e-6 {
                // Approximate orthogonality, scaled by magnitudes.
                prop_assert!(dot(&out, &g).abs() <= 1e-2 * (1.0 + norm(&out) * norm(&g)));
            }
        }

        #[test]
        fn prop_sum_avg_linear(
            deltas in proptest::collection::vec(
                proptest::collection::vec(-10.0f32..10.0, 5), 1..6)
        ) {
            let refs: Vec<&[f32]> = deltas.iter().map(|d| d.as_slice()).collect();
            let sum = CombinerKind::Sum.combine(&refs, 5);
            let avg = CombinerKind::Avg.combine(&refs, 5);
            for i in 0..5 {
                prop_assert!((sum[i] / deltas.len() as f32 - avg[i]).abs() < 1e-4);
            }
        }
    }
}
