//! PageRank (push-style, fixed iteration count).
//!
//! PageRank stresses the substrate differently from the min-reduce
//! algorithms: the reduction is a *sum* of partial accumulators, and each
//! iteration needs two synchronizations — one to gather contribution sums
//! at masters, one to publish the recomputed ranks — mirroring how
//! multi-phase operators are written in D-Galois.

use crate::bsp::{BspRuntime, SyncStats};
use crate::csr::Csr;
use crate::partition::Partitioned;

/// Damping factor (the standard 0.85).
pub const DAMPING: f32 = 0.85;

/// Node label: current rank plus the incoming-contribution accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrLabel {
    /// Current PageRank value.
    pub rank: f32,
    /// Sum of contributions received this iteration.
    pub acc: f32,
}

/// Sequential reference PageRank, `iters` power iterations.
pub fn pagerank_sequential<W: Copy>(g: &Csr<W>, iters: usize) -> Vec<f32> {
    let n = g.n_nodes();
    let base = (1.0 - DAMPING) / n as f32;
    let mut rank = vec![1.0 / n as f32; n];
    let mut next = vec![0.0f32; n];
    for _ in 0..iters {
        next.fill(0.0);
        for u in 0..n as u32 {
            let deg = g.degree(u);
            if deg == 0 {
                continue; // dangling mass dropped, same as distributed
            }
            let share = rank[u as usize] / deg as f32;
            for &v in g.neighbors(u) {
                next[v as usize] += share;
            }
        }
        for i in 0..n {
            rank[i] = base + DAMPING * next[i];
        }
    }
    rank
}

/// Distributed push-style PageRank over a partitioned graph.
pub fn pagerank_distributed<W: Copy>(
    parted: &Partitioned<W>,
    iters: usize,
) -> (Vec<f32>, SyncStats) {
    let n = parted.n_nodes;
    let base = (1.0 - DAMPING) / n as f32;
    let init_rank = 1.0 / n as f32;
    let mut rt: BspRuntime<PrLabel, W> = BspRuntime::new(parted, |_| PrLabel {
        rank: init_rank,
        acc: 0.0,
    });
    for _ in 0..iters {
        // Phase A: every host pushes contributions of its *master* nodes
        // along local out-edges into proxy accumulators.
        for host in 0..parted.parts.len() {
            let part = &parted.parts[host];
            let (labels, touched) = rt.host_mut(host);
            for u in 0..part.local_graph.n_nodes() as u32 {
                // Only masters push: each global edge lives on exactly one
                // host (its source's owner under the blocked edge-cut), so
                // contributions are counted once.
                if !part.is_master(u) {
                    continue;
                }
                let deg = part.local_graph.degree(u);
                if deg == 0 {
                    continue;
                }
                let share = labels[u as usize].rank / deg as f32;
                for &v in part.local_graph.neighbors(u) {
                    labels[v as usize].acc += share;
                    touched.set(v as usize);
                }
            }
        }
        // Sum-reduce the accumulators at masters.
        rt.sync(|canonical, incoming| {
            canonical.acc += incoming.acc;
            incoming.acc != 0.0
        });
        // Phase B: masters recompute rank from the gathered sum and clear
        // the accumulator; broadcast publishes the new canonical label
        // (which also zeroes the mirrors' accumulators).
        for host in 0..parted.parts.len() {
            let part = &parted.parts[host];
            let (labels, touched) = rt.host_mut(host);
            for l in part.masters() {
                let lab = &mut labels[l as usize];
                lab.rank = base + DAMPING * lab.acc;
                lab.acc = 0.0;
                touched.set(l as usize);
            }
        }
        rt.sync(|_, _| false);
    }
    let ranks = (0..n as u32).map(|g| rt.read_canonical(g).rank).collect();
    (ranks, *rt.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::partition_blocked;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "rank[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn uniform_cycle_has_uniform_rank() {
        // A directed 4-cycle: perfectly symmetric, rank = 1/4 everywhere.
        let g: Csr = Csr::from_edges(4, &[(0, 1, ()), (1, 2, ()), (2, 3, ()), (3, 0, ())]);
        let p = partition_blocked(&g, 2);
        let (ranks, _) = pagerank_distributed(&p, 30);
        for r in &ranks {
            assert!((r - 0.25).abs() < 1e-4, "{ranks:?}");
        }
    }

    #[test]
    fn hub_accumulates_rank() {
        // Star pointing at node 0: node 0 must outrank the leaves.
        let g: Csr = Csr::from_edges(5, &[(1, 0, ()), (2, 0, ()), (3, 0, ()), (4, 0, ())]);
        let p = partition_blocked(&g, 3);
        let (ranks, _) = pagerank_distributed(&p, 20);
        for leaf in 1..5 {
            assert!(ranks[0] > ranks[leaf] * 2.0, "{ranks:?}");
        }
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in [3u64, 14, 15] {
            let g = gen::uniform_random(40, 240, 1, seed);
            let want = pagerank_sequential(&g, 15);
            for hosts in [1, 2, 5] {
                let p = partition_blocked(&g, hosts);
                let (got, _) = pagerank_distributed(&p, 15);
                assert_close(&got, &want, 1e-5);
            }
        }
    }

    #[test]
    fn matches_sequential_on_rmat() {
        let g = gen::rmat(6, 6, 99, gen::RMAT_GRAPH500);
        let want = pagerank_sequential(&g, 10);
        let p = partition_blocked(&g, 4);
        let (got, _) = pagerank_distributed(&p, 10);
        assert_close(&got, &want, 1e-5);
    }

    #[test]
    fn ranks_sum_below_one_with_dangling_mass() {
        let g = gen::uniform_random(30, 60, 1, 5);
        let p = partition_blocked(&g, 3);
        let (ranks, _) = pagerank_distributed(&p, 10);
        let sum: f32 = ranks.iter().sum();
        assert!(sum > 0.1 && sum <= 1.0 + 1e-4, "sum = {sum}");
    }

    #[test]
    fn two_syncs_per_iteration() {
        let g = gen::uniform_random(20, 60, 1, 6);
        let p = partition_blocked(&g, 2);
        let iters = 7;
        let (_, stats) = pagerank_distributed(&p, iters);
        assert_eq!(stats.rounds, 2 * iters);
    }
}
