//! Serving-side microbenchmarks: single and batched top-k queries
//! against stores of increasing size, plus the store build itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gw2v_core::model::Word2VecModel;
use gw2v_corpus::vocab::Vocabulary;
use gw2v_serve::{Query, QueryEngine, ShardedStore};
use std::hint::black_box;

fn fixture(n_words: usize, dim: usize, n_shards: usize) -> (ShardedStore, Vocabulary) {
    // Seeded random init gives realistic dense rows without training.
    let model = Word2VecModel::init(n_words, dim, 7);
    let store = ShardedStore::from_matrix(&model.syn0, n_shards);
    let n = n_words as u64;
    let vocab = Vocabulary::from_counts(
        (0..n_words).map(|i| (format!("w{i}"), n - i as u64)),
        1,
    );
    (store, vocab)
}

fn bench_serve(c: &mut Criterion) {
    let dim = 128;
    let mut group = c.benchmark_group("serve");
    group.sample_size(20);
    for n_words in [1_000usize, 10_000] {
        let (store, vocab) = fixture(n_words, dim, 8);
        let engine = QueryEngine::new(&store, &vocab);
        let sim = Query::Similar { word: "w17".into() };
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("sim_top10", n_words), |b| {
            b.iter(|| black_box(engine.answer(&sim, 10)));
        });
        let analogy = Query::Analogy {
            a: "w1".into(),
            b: "w2".into(),
            c: "w3".into(),
        };
        group.bench_function(BenchmarkId::new("analogy_top10", n_words), |b| {
            b.iter(|| black_box(engine.answer(&analogy, 10)));
        });
        let batch: Vec<Query> = (0..32)
            .map(|i| Query::Similar {
                word: format!("w{i}"),
            })
            .collect();
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_function(BenchmarkId::new("sim_top10_batch32", n_words), |b| {
            b.iter(|| black_box(engine.answer_batch(&batch, 10)));
        });
    }
    // Store construction (shard + norm precomputation) from a table.
    let model = Word2VecModel::init(10_000, dim, 7);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("store_build_10k", |b| {
        b.iter(|| black_box(ShardedStore::from_matrix(&model.syn0, 8)));
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
