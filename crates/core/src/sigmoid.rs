//! Precomputed sigmoid table.
//!
//! The SGNS inner loop evaluates `σ(x)` once per (pair, sample); the C
//! implementation replaces the `exp` call with a 1000-entry table over
//! `[-6, 6]` and saturates the gradient outside that range. We keep the
//! same scheme (and the same constants) so gradients match the reference
//! implementation's quantization behaviour.

/// Table resolution (the C code's `EXP_TABLE_SIZE`).
pub const EXP_TABLE_SIZE: usize = 1000;
/// Saturation range (the C code's `MAX_EXP`).
pub const MAX_EXP: f32 = 6.0;

/// A precomputed sigmoid lookup table.
#[derive(Clone, Debug)]
pub struct SigmoidTable {
    table: Vec<f32>,
}

impl SigmoidTable {
    /// Builds the table: entry `i` holds `σ(((i/1000)·2 − 1)·6)`.
    pub fn new() -> Self {
        let table = (0..EXP_TABLE_SIZE)
            .map(|i| {
                let x = (i as f32 / EXP_TABLE_SIZE as f32 * 2.0 - 1.0) * MAX_EXP;
                let e = x.exp();
                e / (e + 1.0)
            })
            .collect();
        Self { table }
    }

    /// `σ(x)` via table lookup; saturates to 0/1 outside `[-6, 6]`
    /// exactly as the C implementation's branch does.
    #[inline]
    pub fn value(&self, x: f32) -> f32 {
        if x >= MAX_EXP {
            1.0
        } else if x <= -MAX_EXP {
            0.0
        } else {
            let idx = ((x + MAX_EXP) * (EXP_TABLE_SIZE as f32 / MAX_EXP / 2.0)) as usize;
            self.table[idx.min(EXP_TABLE_SIZE - 1)]
        }
    }
}

impl Default for SigmoidTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_sigmoid_within_table_resolution() {
        let t = SigmoidTable::new();
        for i in -60..=60 {
            let x = i as f32 / 10.0;
            let exact = 1.0 / (1.0 + (-x).exp());
            let got = t.value(x);
            assert!((got - exact).abs() < 0.01, "x={x}: {got} vs {exact}");
        }
    }

    #[test]
    fn saturates_outside_range() {
        let t = SigmoidTable::new();
        assert_eq!(t.value(6.0), 1.0);
        assert_eq!(t.value(100.0), 1.0);
        assert_eq!(t.value(-6.0), 0.0);
        assert_eq!(t.value(-100.0), 0.0);
    }

    #[test]
    fn midpoint_is_half() {
        let t = SigmoidTable::new();
        assert!((t.value(0.0) - 0.5).abs() < 0.01);
    }

    #[test]
    fn monotone() {
        let t = SigmoidTable::new();
        let mut prev = -1.0f32;
        for i in -100..=100 {
            let v = t.value(i as f32 * 0.06);
            assert!(v >= prev - 1e-6);
            prev = v;
        }
    }
}
