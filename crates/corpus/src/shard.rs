//! Encoded corpora, host partitioning and round chunking.
//!
//! Paper §4.1–§4.2: the training corpus is (logically) split into roughly
//! equal *contiguous* chunks, one per host; each host's chunk is its
//! worklist. Within an epoch, the worklist is further split into `S`
//! contiguous chunks, one per synchronization round.
//!
//! Splits here always respect sentence boundaries and balance *token*
//! counts (not sentence counts), since per-token work is what must be
//! balanced across hosts.

use crate::tokenizer::{sentences_from_text, TokenizerConfig};
use crate::vocab::Vocabulary;

/// An encoded in-memory corpus: sentences of word ids.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    sentences: Vec<Vec<u32>>,
    total_tokens: usize,
}

impl Corpus {
    /// Encodes raw text through a vocabulary. Out-of-vocabulary words are
    /// dropped; sentences that become empty are discarded.
    pub fn from_text(text: &str, vocab: &Vocabulary, config: TokenizerConfig) -> Self {
        let sentences: Vec<Vec<u32>> = sentences_from_text(text, config)
            .iter()
            .map(|s| vocab.encode_sentence(s))
            .filter(|s| !s.is_empty())
            .collect();
        Self::from_sentences(sentences)
    }

    /// Wraps pre-encoded sentences.
    pub fn from_sentences(sentences: Vec<Vec<u32>>) -> Self {
        let total_tokens = sentences.iter().map(Vec::len).sum();
        Self {
            sentences,
            total_tokens,
        }
    }

    /// All sentences.
    pub fn sentences(&self) -> &[Vec<u32>] {
        &self.sentences
    }

    /// Total encoded tokens.
    pub fn total_tokens(&self) -> usize {
        self.total_tokens
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// True if the corpus has no sentences.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// Contiguous, token-balanced partition for host `host` of `n_hosts`
    /// (paper §4.2: "The training corpus file is partitioned (logically)
    /// into roughly equal contiguous chunks among hosts").
    pub fn partition(&self, host: usize, n_hosts: usize) -> CorpusShard<'_> {
        assert!(n_hosts > 0 && host < n_hosts, "host {host} of {n_hosts}");
        let (start, end) = balanced_range(&self.sentences, host, n_hosts);
        CorpusShard::new(&self.sentences[start..end])
    }
}

/// One host's contiguous slice of the corpus.
#[derive(Clone, Copy, Debug)]
pub struct CorpusShard<'a> {
    sentences: &'a [Vec<u32>],
    total_tokens: usize,
}

impl<'a> CorpusShard<'a> {
    /// Wraps a sentence slice.
    pub fn new(sentences: &'a [Vec<u32>]) -> Self {
        let total_tokens = sentences.iter().map(Vec::len).sum();
        Self {
            sentences,
            total_tokens,
        }
    }

    /// Sentences in this shard.
    pub fn sentences(&self) -> &'a [Vec<u32>] {
        self.sentences
    }

    /// Tokens in this shard.
    pub fn total_tokens(&self) -> usize {
        self.total_tokens
    }

    /// The `round`-th of `n_rounds` contiguous, token-balanced chunks of
    /// this shard (paper §4.1: "the worklist on each host is partitioned
    /// into roughly equal contiguous chunks", one per sync round).
    pub fn round_chunk(&self, round: usize, n_rounds: usize) -> CorpusShard<'a> {
        assert!(n_rounds > 0 && round < n_rounds);
        let (start, end) = balanced_range(self.sentences, round, n_rounds);
        CorpusShard::new(&self.sentences[start..end])
    }
}

/// Computes the sentence range `[start, end)` of chunk `k` of `n` such
/// that cumulative token counts split as evenly as sentence boundaries
/// allow: chunk `k` covers sentences whose cumulative-token midpoint falls
/// in `[k·T/n, (k+1)·T/n)`.
fn balanced_range(sentences: &[Vec<u32>], k: usize, n: usize) -> (usize, usize) {
    let total: usize = sentences.iter().map(Vec::len).sum();
    if total == 0 {
        // Degenerate: spread empty slices.
        return (0, 0);
    }
    let lo = (k * total) / n;
    let hi = ((k + 1) * total) / n;
    let mut start = None;
    let mut end = sentences.len();
    let mut cum = 0usize;
    for (i, s) in sentences.iter().enumerate() {
        let mid = cum + s.len() / 2;
        if start.is_none() && mid >= lo {
            start = Some(i);
        }
        if mid >= hi {
            end = i;
            break;
        }
        cum += s.len();
    }
    let start = start.unwrap_or(sentences.len());
    (start, end.max(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::VocabBuilder;
    use proptest::prelude::*;

    fn corpus_of_lens(lens: &[usize]) -> Corpus {
        let sentences: Vec<Vec<u32>> = lens.iter().map(|&l| vec![0u32; l]).collect();
        Corpus::from_sentences(sentences)
    }

    #[test]
    fn from_text_encodes_and_drops_oov() {
        let mut b = VocabBuilder::new();
        for t in "a b c".split_whitespace() {
            b.add_token(t);
        }
        let vocab = b.build(1);
        let corpus = Corpus::from_text("a x b\nc y", &vocab, TokenizerConfig::default());
        assert_eq!(corpus.total_tokens(), 3);
        assert_eq!(corpus.len(), 1, "single sentence (10K max length)");
    }

    #[test]
    fn empty_sentences_discarded() {
        let mut b = VocabBuilder::new();
        b.add_token("known");
        let vocab = b.build(1);
        let cfg = TokenizerConfig {
            lowercase: false,
            max_sentence_len: 2,
        };
        let corpus = Corpus::from_text("x y known z w q", &vocab, cfg);
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.total_tokens(), 1);
    }

    #[test]
    fn partitions_cover_exactly() {
        let corpus = corpus_of_lens(&[5, 3, 8, 2, 7, 4, 6, 1]);
        for n_hosts in 1..=8 {
            let mut tokens = 0;
            let mut count = 0;
            for h in 0..n_hosts {
                let shard = corpus.partition(h, n_hosts);
                tokens += shard.total_tokens();
                count += shard.sentences().len();
            }
            assert_eq!(tokens, corpus.total_tokens(), "n_hosts={n_hosts}");
            assert_eq!(count, corpus.len(), "n_hosts={n_hosts}");
        }
    }

    #[test]
    fn partitions_are_contiguous_in_order() {
        let corpus = corpus_of_lens(&[4; 20]);
        let mut next_expected = corpus.sentences().as_ptr();
        for h in 0..5 {
            let shard = corpus.partition(h, 5);
            if !shard.sentences().is_empty() {
                assert_eq!(shard.sentences().as_ptr(), next_expected);
                next_expected = unsafe { next_expected.add(shard.sentences().len()) };
            }
        }
    }

    #[test]
    fn balance_is_reasonable() {
        // 100 sentences of 10 tokens, 4 hosts: perfect split is 250 each.
        let corpus = corpus_of_lens(&[10; 100]);
        for h in 0..4 {
            let shard = corpus.partition(h, 4);
            assert_eq!(shard.total_tokens(), 250);
        }
    }

    #[test]
    fn more_hosts_than_sentences() {
        let corpus = corpus_of_lens(&[5, 5]);
        let mut total = 0;
        for h in 0..8 {
            total += corpus.partition(h, 8).total_tokens();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn round_chunks_cover_shard() {
        let corpus = corpus_of_lens(&[3, 9, 2, 8, 5, 5, 7, 1, 6]);
        let shard = corpus.partition(0, 1);
        for s in 1..=6 {
            let mut tokens = 0;
            for r in 0..s {
                tokens += shard.round_chunk(r, s).total_tokens();
            }
            assert_eq!(tokens, shard.total_tokens(), "rounds={s}");
        }
    }

    #[test]
    fn empty_corpus_partitions() {
        let corpus = corpus_of_lens(&[]);
        for h in 0..3 {
            assert_eq!(corpus.partition(h, 3).total_tokens(), 0);
        }
    }

    proptest! {
        #[test]
        fn prop_partition_exact_cover(
            lens in proptest::collection::vec(1usize..40, 0..60),
            n_hosts in 1usize..10,
        ) {
            let corpus = corpus_of_lens(&lens);
            let mut tokens = 0;
            let mut sentences = 0;
            for h in 0..n_hosts {
                let s = corpus.partition(h, n_hosts);
                tokens += s.total_tokens();
                sentences += s.sentences().len();
            }
            prop_assert_eq!(tokens, corpus.total_tokens());
            prop_assert_eq!(sentences, corpus.len());
        }

        #[test]
        fn prop_partition_balanced(
            sent_len in 1usize..20,
            n_sent in 50usize..200,
            n_hosts in 1usize..8,
        ) {
            // Uniform sentences: every shard within one sentence of ideal.
            let corpus = corpus_of_lens(&vec![sent_len; n_sent]);
            let ideal = corpus.total_tokens() as f64 / n_hosts as f64;
            for h in 0..n_hosts {
                let t = corpus.partition(h, n_hosts).total_tokens() as f64;
                prop_assert!((t - ideal).abs() <= sent_len as f64 + 1.0,
                    "host {} got {} vs ideal {}", h, t, ideal);
            }
        }
    }
}
