//! Property-based tests on the synchronization engine: invariants that
//! must hold for arbitrary touch patterns across hosts.

use gw2v_combiner::CombinerKind;
use gw2v_gluon::plan::{AccessSets, SyncConfig, SyncPlan};
use gw2v_gluon::sync::{assemble_canonical, sync_round};
use gw2v_gluon::volume::CommStats;
use gw2v_gluon::ModelReplica;
use gw2v_util::fvec::FlatMatrix;
use proptest::prelude::*;

/// Arbitrary touch pattern: (host, layer, node, slot, bump).
type Touch = (usize, usize, usize, usize, f32);

const N_NODES: usize = 10;
const DIM: usize = 4;

fn make_replicas(n_hosts: usize) -> Vec<ModelReplica> {
    (0..n_hosts)
        .map(|_| {
            let mut m0 = FlatMatrix::zeros(N_NODES, DIM);
            let m1 = FlatMatrix::zeros(N_NODES, DIM);
            for r in 0..N_NODES {
                for d in 0..DIM {
                    m0.row_mut(r)[d] = (r * DIM + d) as f32 * 0.1;
                }
            }
            ModelReplica::new(vec![m0, m1])
        })
        .collect()
}

fn apply_touches(replicas: &mut [ModelReplica], touches: &[Touch]) {
    let n_hosts = replicas.len();
    for &(h, layer, node, slot, bump) in touches {
        let h = h % n_hosts;
        replicas[h].row_mut(layer % 2, (node % N_NODES) as u32)[slot % DIM] += bump;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three plans produce the same canonical model for the same
    /// touch pattern — plans change bytes, never semantics.
    #[test]
    fn plans_agree_for_any_touch_pattern(
        n_hosts in 1usize..5,
        touches in proptest::collection::vec(
            (0usize..8, 0usize..2, 0usize..N_NODES, 0usize..DIM, -1.0f32..1.0), 0..40),
        combiner in prop_oneof![
            Just(CombinerKind::Sum),
            Just(CombinerKind::Avg),
            Just(CombinerKind::ModelCombiner),
        ],
    ) {
        let mut canonicals = Vec::new();
        for plan in [SyncPlan::RepModelOpt, SyncPlan::RepModelNaive, SyncPlan::PullModel] {
            let mut replicas = make_replicas(n_hosts);
            apply_touches(&mut replicas, &touches);
            let mut access = AccessSets::new(n_hosts, 2, N_NODES);
            for h in 0..n_hosts {
                for l in 0..2 {
                    access.get_mut(h, l).set_all();
                }
            }
            let mut stats = CommStats::default();
            sync_round(
                &mut replicas,
                &SyncConfig { plan, combiner },
                Some(&access),
                &mut stats,
            );
            canonicals.push(assemble_canonical(&replicas));
        }
        prop_assert_eq!(&canonicals[0], &canonicals[1], "Opt vs Naive");
        prop_assert_eq!(&canonicals[0], &canonicals[2], "Opt vs Pull");
    }

    /// After an Opt sync, every replica holds the canonical model
    /// (full agreement), and a second sync with no touches moves nothing.
    #[test]
    fn opt_sync_reaches_agreement_and_quiesces(
        n_hosts in 1usize..5,
        touches in proptest::collection::vec(
            (0usize..8, 0usize..2, 0usize..N_NODES, 0usize..DIM, -1.0f32..1.0), 0..40),
    ) {
        let mut replicas = make_replicas(n_hosts);
        apply_touches(&mut replicas, &touches);
        let cfg = SyncConfig { plan: SyncPlan::RepModelOpt, combiner: CombinerKind::ModelCombiner };
        let mut stats = CommStats::default();
        sync_round(&mut replicas, &cfg, None, &mut stats);
        for h in 1..n_hosts {
            prop_assert_eq!(&replicas[0].layers, &replicas[h].layers, "host {} disagrees", h);
        }
        let v = sync_round(&mut replicas, &cfg, None, &mut stats);
        prop_assert_eq!(v.total_bytes(), 0);
    }

    /// Volume ordering invariant: Opt never ships more bytes than Naive,
    /// and with a single host nothing ever crosses the wire.
    #[test]
    fn volume_orderings(
        n_hosts in 1usize..5,
        touches in proptest::collection::vec(
            (0usize..8, 0usize..2, 0usize..N_NODES, 0usize..DIM, -1.0f32..1.0), 0..40),
    ) {
        let run = |plan: SyncPlan| {
            let mut replicas = make_replicas(n_hosts);
            apply_touches(&mut replicas, &touches);
            let mut access = AccessSets::new(n_hosts, 2, N_NODES);
            for h in 0..n_hosts {
                for l in 0..2 {
                    access.get_mut(h, l).set_all();
                }
            }
            let mut stats = CommStats::default();
            sync_round(
                &mut replicas,
                &SyncConfig { plan, combiner: CombinerKind::Sum },
                Some(&access),
                &mut stats,
            );
            stats
        };
        let opt = run(SyncPlan::RepModelOpt);
        let naive = run(SyncPlan::RepModelNaive);
        prop_assert!(opt.total_bytes() <= naive.total_bytes());
        if n_hosts == 1 {
            prop_assert_eq!(opt.total_bytes(), 0);
            prop_assert_eq!(naive.total_bytes(), 0);
        }
    }

    /// Sum-combiner semantics: the canonical value accumulates *all*
    /// hosts' bumps exactly (float-associativity aside, with one bump per
    /// host-node-slot the sums are exact).
    #[test]
    fn sum_accumulates_every_host(
        n_hosts in 2usize..5,
        node in 0usize..N_NODES,
        bumps in proptest::collection::vec(-8i32..8, 2..5),
    ) {
        let mut replicas = make_replicas(n_hosts);
        let mut expected = replicas[0].row(0, node as u32)[0];
        for (h, &b) in bumps.iter().enumerate() {
            let h = h % n_hosts;
            replicas[h].row_mut(0, node as u32)[0] += b as f32;
        }
        // Each host touched the slot at most... hosts may repeat when
        // bumps.len() > n_hosts; accumulate per host then sum.
        let mut per_host = vec![0f32; n_hosts];
        for (h, &b) in bumps.iter().enumerate() {
            per_host[h % n_hosts] += b as f32;
        }
        expected += per_host.iter().sum::<f32>();
        let mut stats = CommStats::default();
        sync_round(
            &mut replicas,
            &SyncConfig { plan: SyncPlan::RepModelOpt, combiner: CombinerKind::Sum },
            None,
            &mut stats,
        );
        let canon = assemble_canonical(&replicas);
        prop_assert!((canon[0].row(node)[0] - expected).abs() < 1e-4,
            "{} vs {}", canon[0].row(node)[0], expected);
    }
}
