//! k-core decomposition.
//!
//! The k-core of a graph is the maximal subgraph in which every node has
//! degree ≥ k; a node's *core number* is the largest k for which it
//! belongs to the k-core. This exercises a different BSP pattern than
//! the min/sum algorithms: iterative *peeling*, where each round removes
//! nodes that fall below the threshold and the reduction propagates
//! removal flags. Inputs are treated as undirected (callers symmetrize).

use crate::bsp::{BspRuntime, SyncStats};
use crate::csr::Csr;
use crate::partition::Partitioned;

/// Sequential reference: the standard peeling algorithm (O(E) with
/// bucket queues; this simple version is O(V·E) worst case but exact).
pub fn kcore_sequential<W: Copy>(g: &Csr<W>, k: usize) -> Vec<bool> {
    let n = g.n_nodes();
    let mut degree: Vec<usize> = (0..n as u32).map(|u| g.degree(u)).collect();
    let mut alive = vec![true; n];
    loop {
        let mut changed = false;
        for u in 0..n {
            if alive[u] && degree[u] < k {
                alive[u] = false;
                changed = true;
                for &v in g.neighbors(u as u32) {
                    if alive[v as usize] {
                        degree[v as usize] = degree[v as usize].saturating_sub(1);
                    }
                }
            }
        }
        if !changed {
            return alive;
        }
    }
}

/// Node label for the distributed peeling: remaining degree and
/// aliveness. The reduction *sums* degree decrements gathered from
/// remote edge endpoints.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KcoreLabel {
    /// Remaining degree (counting only alive neighbours).
    pub degree: i64,
    /// Decrements accumulated this round.
    pub pending_dec: i64,
    /// Whether the node is still in the subgraph.
    pub alive: bool,
}

/// Distributed k-core membership over a partitioned (symmetrized)
/// graph. Returns the aliveness vector and sync statistics.
pub fn kcore_distributed<W: Copy>(parted: &Partitioned<W>, k: usize) -> (Vec<bool>, SyncStats) {
    // Initialize degrees from the *global* degree: each host knows the
    // out-degree of its owned (master) nodes because the blocked
    // edge-cut places all their out-edges locally.
    let mut rt: BspRuntime<KcoreLabel, W> = BspRuntime::new(parted, |_| KcoreLabel {
        degree: 0,
        pending_dec: 0,
        alive: true,
    });
    // Round 0: masters set their own degree, broadcast to mirrors.
    for host in 0..parted.parts.len() {
        let part = &parted.parts[host];
        let degrees: Vec<(u32, usize)> = part
            .masters()
            .map(|l| (l, part.local_graph.degree(l)))
            .collect();
        let (labels, touched) = rt.host_mut(host);
        for (l, d) in degrees {
            labels[l as usize].degree = d as i64;
            touched.set(l as usize);
        }
    }
    rt.sync(|_, _| false);

    loop {
        // Peel: a host decides removal for its *masters* (it has their
        // canonical degree), then pushes decrements along its local
        // out-edges into proxy accumulators.
        let mut any_removed = false;
        for host in 0..parted.parts.len() {
            let part = &parted.parts[host];
            let removals: Vec<u32> = {
                let (labels, _) = rt.host_mut(host);
                part.masters()
                    .filter(|&l| {
                        let lab = labels[l as usize];
                        lab.alive && lab.degree < k as i64
                    })
                    .collect()
            };
            if removals.is_empty() {
                continue;
            }
            any_removed = true;
            let (labels, touched) = rt.host_mut(host);
            for l in removals {
                labels[l as usize].alive = false;
                touched.set(l as usize);
                // Decrement every neighbour (via its local proxy).
                let neighbors: Vec<u32> = part.local_graph.neighbors(l).to_vec();
                for v in neighbors {
                    labels[v as usize].pending_dec += 1;
                    touched.set(v as usize);
                }
            }
        }
        // Reduce: masters gather decrements (sum) and removal flags (or).
        rt.sync(|canonical, incoming| {
            let mut changed = false;
            if incoming.pending_dec != 0 {
                canonical.pending_dec += incoming.pending_dec;
                changed = true;
            }
            if !incoming.alive && canonical.alive {
                canonical.alive = false;
                changed = true;
            }
            changed
        });
        // Apply decrements at masters and rebroadcast settled labels.
        for host in 0..parted.parts.len() {
            let part = &parted.parts[host];
            let (labels, touched) = rt.host_mut(host);
            for l in part.masters() {
                let lab = &mut labels[l as usize];
                if lab.pending_dec != 0 {
                    lab.degree -= lab.pending_dec;
                    lab.pending_dec = 0;
                    touched.set(l as usize);
                }
            }
        }
        rt.sync(|_, _| false);
        if !any_removed {
            break;
        }
    }
    let alive = (0..parted.n_nodes as u32)
        .map(|g| rt.read_canonical(g).alive)
        .collect();
    (alive, *rt.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::partition_blocked;

    fn symmetrize(g: &Csr<u32>) -> Csr<u32> {
        let mut edges: Vec<(u32, u32, u32)> = g.all_edges().collect();
        edges.extend(g.all_edges().map(|(s, d, w)| (d, s, w)));
        edges.sort_unstable();
        edges.dedup();
        Csr::from_edges(g.n_nodes(), &edges)
    }

    /// Triangle + pendant: nodes 0-1-2 form a triangle, 3 hangs off 0.
    fn triangle_pendant() -> Csr<u32> {
        symmetrize(&Csr::from_edges(
            4,
            &[(0, 1, 1u32), (1, 2, 1), (2, 0, 1), (0, 3, 1)],
        ))
    }

    #[test]
    fn sequential_peeling() {
        let g = triangle_pendant();
        // 2-core: the triangle survives, the pendant does not.
        assert_eq!(kcore_sequential(&g, 2), vec![true, true, true, false]);
        // 3-core: nothing survives.
        assert_eq!(kcore_sequential(&g, 3), vec![false; 4]);
        // 1-core: everything (all degrees ≥ 1).
        assert_eq!(kcore_sequential(&g, 1), vec![true; 4]);
    }

    #[test]
    fn cascading_removal() {
        // A path 0-1-2-3: 2-core is empty, but removal cascades (ends
        // first, then the middle).
        let g = symmetrize(&Csr::from_edges(4, &[(0, 1, 1u32), (1, 2, 1), (2, 3, 1)]));
        assert_eq!(kcore_sequential(&g, 2), vec![false; 4]);
        let p = partition_blocked(&g, 2);
        let (alive, _) = kcore_distributed(&p, 2);
        assert_eq!(alive, vec![false; 4]);
    }

    #[test]
    fn distributed_matches_sequential() {
        for seed in [1u64, 2] {
            let g = symmetrize(&gen::uniform_random(40, 120, 1, seed));
            for k in [1usize, 2, 3, 4] {
                let want = kcore_sequential(&g, k);
                for hosts in [1, 3, 5] {
                    let p = partition_blocked(&g, hosts);
                    let (got, _) = kcore_distributed(&p, k);
                    assert_eq!(got, want, "seed={seed} k={k} hosts={hosts}");
                }
            }
        }
    }

    #[test]
    fn rmat_kcore_shrinks_with_k() {
        let g = symmetrize(&gen::rmat(7, 6, 3, gen::RMAT_GRAPH500));
        let p = partition_blocked(&g, 4);
        let sizes: Vec<usize> = [1usize, 2, 4, 8]
            .iter()
            .map(|&k| kcore_distributed(&p, k).0.iter().filter(|&&a| a).count())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "{sizes:?}");
        }
        assert!(sizes[0] > 0);
    }
}
