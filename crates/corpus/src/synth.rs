//! Synthetic corpus generation with planted analogy relations.
//!
//! The paper trains on the 1-billion, news and wiki corpora and evaluates
//! with the `question-words.txt` analogical-reasoning suite (14 categories,
//! 5 semantic + 9 syntactic). Neither the corpora nor the question file is
//! available here, so this module generates both *jointly* from a
//! generative model whose geometry is exactly what the analogy task
//! measures:
//!
//! * **Background text** is drawn from a Zipf–Mandelbrot distribution —
//!   the long-tailed frequency profile subsampling and negative sampling
//!   are designed around.
//! * **Relation categories** plant word pairs `(aᵢ, bᵢ)`. Every pair `i`
//!   owns a set of *topic words* `Tᵢ` shared between its two sides, and
//!   the category owns two disjoint *marker sets* `Mᴬ`, `Mᴮ`. Sentences
//!   mentioning `aᵢ` mix `Tᵢ` with `Mᴬ`; sentences mentioning `bᵢ` mix
//!   `Tᵢ` with `Mᴮ`. Under SGNS this drives `v(aᵢ) ≈ f(Tᵢ) + g(Mᴬ)` and
//!   `v(bᵢ) ≈ f(Tᵢ) + g(Mᴮ)`, so `v(bᵢ) − v(aᵢ)` converges to a common
//!   per-category offset — precisely the linear structure 3CosAdd
//!   analogy evaluation (`a : b :: c : ?`) exploits.
//! * **Semantic vs. syntactic.** Semantic categories get low in-sentence
//!   noise, syntactic categories high noise and fewer topic words, which
//!   reproduces the paper's persistent semantic > syntactic accuracy gap
//!   (Table 3).
//!
//! Generation is fully deterministic given [`SynthSpec::seed`].

use crate::zipf::ZipfSampler;
use gw2v_util::rng::{Rng64, SplitMix64, Xoshiro256};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Whether a relation category models a semantic or a syntactic analogy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CategoryKind {
    /// Semantic relations (capital-country, family, currency, ...).
    Semantic,
    /// Syntactic relations (comparative, plural, verb forms, ...).
    Syntactic,
}

/// Parameters of one planted relation category.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CategorySpec {
    /// Category name, e.g. `"capital-common"` — used in accuracy reports.
    pub name: String,
    /// Semantic or syntactic.
    pub kind: CategoryKind,
    /// Number of planted `(a, b)` pairs.
    pub n_pairs: usize,
    /// Marker words per side (shared across the category's pairs).
    pub n_markers: usize,
    /// Topic words per pair (shared between the pair's two sides).
    pub n_topics: usize,
    /// Fraction of background-noise tokens in this category's sentences.
    pub noise: f64,
}

impl CategorySpec {
    /// Unique words this category contributes to the vocabulary.
    pub fn vocab_words(&self) -> usize {
        2 * self.n_pairs + 2 * self.n_markers + self.n_pairs * self.n_topics
    }
}

/// Full corpus-generator specification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Number of distinct background (Zipfian) words.
    pub background_vocab: usize,
    /// Zipf exponent for background words (≈1.07 for English).
    pub zipf_exponent: f64,
    /// Zipf–Mandelbrot shift.
    pub zipf_shift: f64,
    /// Relation categories to plant.
    pub categories: Vec<CategorySpec>,
    /// Probability that a sentence is a relation sentence.
    pub p_relation: f64,
    /// Inclusive sentence-length range in tokens.
    pub sentence_len: (usize, usize),
    /// Master seed; everything derives from it.
    pub seed: u64,
}

impl SynthSpec {
    /// The default 14 categories: 5 semantic + 9 syntactic, mirroring the
    /// structure of `question-words.txt`.
    pub fn default_categories(n_pairs: usize) -> Vec<CategorySpec> {
        let semantic = [
            "capital-common",
            "capital-world",
            "currency",
            "city-in-state",
            "family",
        ];
        let syntactic = [
            "gram1-adjective-adverb",
            "gram2-opposite",
            "gram3-comparative",
            "gram4-superlative",
            "gram5-present-participle",
            "gram6-nationality-adjective",
            "gram7-past-tense",
            "gram8-plural",
            "gram9-plural-verbs",
        ];
        let mut cats = Vec::new();
        for name in semantic {
            cats.push(CategorySpec {
                name: name.to_owned(),
                kind: CategoryKind::Semantic,
                n_pairs,
                n_markers: 6,
                n_topics: 3,
                noise: 0.25,
            });
        }
        for name in syntactic {
            cats.push(CategorySpec {
                name: name.to_owned(),
                kind: CategoryKind::Syntactic,
                n_pairs,
                n_markers: 4,
                n_topics: 2,
                noise: 0.45,
            });
        }
        cats
    }

    /// A small default spec suitable for tests and the quickstart example.
    pub fn small(seed: u64) -> Self {
        Self {
            background_vocab: 800,
            zipf_exponent: 1.07,
            zipf_shift: 2.7,
            categories: Self::default_categories(8),
            p_relation: 0.5,
            sentence_len: (10, 20),
            seed,
        }
    }

    /// Total unique words the generator can emit (before `min_count`
    /// filtering, which may drop rare background ranks).
    pub fn vocab_upper_bound(&self) -> usize {
        self.background_vocab
            + self
                .categories
                .iter()
                .map(|c| c.vocab_words())
                .sum::<usize>()
    }
}

/// One analogy question `a : b :: c : expected`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalogyQuestion {
    /// First word of the exemplar pair.
    pub a: String,
    /// Second word of the exemplar pair.
    pub b: String,
    /// First word of the query pair.
    pub c: String,
    /// The expected completion.
    pub expected: String,
}

/// Questions of one category.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnalogyCategory {
    /// Category name (matches the generating [`CategorySpec`]).
    pub name: String,
    /// Semantic or syntactic.
    pub kind: CategoryKind,
    /// The questions.
    pub questions: Vec<AnalogyQuestion>,
}

/// The full question suite co-generated with a corpus.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AnalogySet {
    /// All categories.
    pub categories: Vec<AnalogyCategory>,
}

impl AnalogySet {
    /// Total questions over all categories.
    pub fn total_questions(&self) -> usize {
        self.categories.iter().map(|c| c.questions.len()).sum()
    }
}

/// A generated corpus: plain text plus its analogy suite.
#[derive(Clone, Debug)]
pub struct SynthCorpus {
    /// Whitespace-separated text, one generated sentence per line.
    pub text: String,
    /// The co-generated analogy questions.
    pub analogies: AnalogySet,
    /// Number of tokens in `text`.
    pub n_tokens: usize,
    /// The spec the corpus was generated from.
    pub spec: SynthSpec,
}

/// Internal: materialized word lists for one category.
struct CategoryWords {
    a_words: Vec<String>,
    b_words: Vec<String>,
    a_markers: Vec<String>,
    b_markers: Vec<String>,
    /// `topics[pair][j]`
    topics: Vec<Vec<String>>,
}

fn build_category_words(idx: usize, spec: &CategorySpec) -> CategoryWords {
    let name = &spec.name;
    let a_words = (0..spec.n_pairs).map(|i| format!("{name}_a{i}")).collect();
    let b_words = (0..spec.n_pairs).map(|i| format!("{name}_b{i}")).collect();
    let a_markers = (0..spec.n_markers)
        .map(|j| format!("mk{idx}_a{j}"))
        .collect();
    let b_markers = (0..spec.n_markers)
        .map(|j| format!("mk{idx}_b{j}"))
        .collect();
    let topics = (0..spec.n_pairs)
        .map(|i| {
            (0..spec.n_topics)
                .map(|j| format!("tp{idx}_{i}_{j}"))
                .collect()
        })
        .collect();
    CategoryWords {
        a_words,
        b_words,
        a_markers,
        b_markers,
        topics,
    }
}

impl SynthCorpus {
    /// Generates a corpus of at least `target_tokens` tokens (generation
    /// stops at the first sentence boundary at or past the target) plus
    /// `questions_per_category` analogy questions per category.
    pub fn generate(spec: &SynthSpec, target_tokens: usize, questions_per_category: usize) -> Self {
        assert!(
            spec.sentence_len.0 >= 4,
            "sentences must fit a pair word plus context"
        );
        assert!(spec.sentence_len.0 <= spec.sentence_len.1);
        assert!((0.0..=1.0).contains(&spec.p_relation));

        let root = SplitMix64::new(spec.seed);
        let mut rng = Xoshiro256::new(root.derive(0));
        let zipf = ZipfSampler::new(spec.background_vocab, spec.zipf_exponent, spec.zipf_shift);
        let cat_words: Vec<CategoryWords> = spec
            .categories
            .iter()
            .enumerate()
            .map(|(i, c)| build_category_words(i, c))
            .collect();

        // Rough pre-allocation: ~8 bytes per token.
        let mut text = String::with_capacity(target_tokens * 8);
        let mut n_tokens = 0usize;
        let mut bg_word_buf = String::new();

        while n_tokens < target_tokens {
            let len =
                spec.sentence_len.0 + rng.index(spec.sentence_len.1 - spec.sentence_len.0 + 1);
            let is_relation = !spec.categories.is_empty() && rng.chance(spec.p_relation);
            if is_relation {
                let ci = rng.index(spec.categories.len());
                let cat = &spec.categories[ci];
                let words = &cat_words[ci];
                let pair = rng.index(cat.n_pairs);
                let side_a = rng.chance(0.5);
                let pair_pos = rng.index(len);
                for pos in 0..len {
                    if pos > 0 {
                        text.push(' ');
                    }
                    if pos == pair_pos {
                        let w = if side_a {
                            &words.a_words[pair]
                        } else {
                            &words.b_words[pair]
                        };
                        text.push_str(w);
                    } else if rng.chance(cat.noise) {
                        push_bg_word(&mut text, &mut bg_word_buf, zipf.sample(&mut rng));
                    } else if rng.chance(0.5) && cat.n_topics > 0 {
                        let t = &words.topics[pair][rng.index(cat.n_topics)];
                        text.push_str(t);
                    } else {
                        let markers = if side_a {
                            &words.a_markers
                        } else {
                            &words.b_markers
                        };
                        text.push_str(&markers[rng.index(markers.len())]);
                    }
                }
            } else {
                for pos in 0..len {
                    if pos > 0 {
                        text.push(' ');
                    }
                    push_bg_word(&mut text, &mut bg_word_buf, zipf.sample(&mut rng));
                }
            }
            text.push('\n');
            n_tokens += len;
        }

        // Questions: distinct ordered pairs (i, j), i != j, per category.
        let mut qrng = Xoshiro256::new(root.derive(1));
        let mut categories = Vec::with_capacity(spec.categories.len());
        for (ci, cat) in spec.categories.iter().enumerate() {
            let words = &cat_words[ci];
            let mut questions = Vec::with_capacity(questions_per_category);
            let max_distinct = cat.n_pairs * (cat.n_pairs.saturating_sub(1));
            let want = questions_per_category.min(max_distinct);
            let mut seen = std::collections::HashSet::new();
            while questions.len() < want {
                let i = qrng.index(cat.n_pairs);
                let j = qrng.index(cat.n_pairs);
                if i == j || !seen.insert((i, j)) {
                    continue;
                }
                questions.push(AnalogyQuestion {
                    a: words.a_words[i].clone(),
                    b: words.b_words[i].clone(),
                    c: words.a_words[j].clone(),
                    expected: words.b_words[j].clone(),
                });
            }
            categories.push(AnalogyCategory {
                name: cat.name.clone(),
                kind: cat.kind,
                questions,
            });
        }

        Self {
            text,
            analogies: AnalogySet { categories },
            n_tokens,
            spec: spec.clone(),
        }
    }

    /// Corpus size in bytes (what Table 1 reports as "Size").
    pub fn size_bytes(&self) -> usize {
        self.text.len()
    }
}

fn push_bg_word(text: &mut String, buf: &mut String, rank: usize) {
    buf.clear();
    let _ = write!(buf, "bg{rank}");
    text.push_str(buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::{sentences_from_text, TokenizerConfig};
    use crate::vocab::VocabBuilder;

    fn tiny_spec(seed: u64) -> SynthSpec {
        SynthSpec {
            background_vocab: 50,
            zipf_exponent: 1.0,
            zipf_shift: 0.0,
            categories: SynthSpec::default_categories(4),
            p_relation: 0.5,
            sentence_len: (8, 12),
            seed,
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let spec = tiny_spec(42);
        let a = SynthCorpus::generate(&spec, 5_000, 10);
        let b = SynthCorpus::generate(&spec, 5_000, 10);
        assert_eq!(a.text, b.text);
        assert_eq!(a.analogies.total_questions(), b.analogies.total_questions());
        for (ca, cb) in a.analogies.categories.iter().zip(&b.analogies.categories) {
            assert_eq!(ca.questions, cb.questions);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthCorpus::generate(&tiny_spec(1), 2_000, 5);
        let b = SynthCorpus::generate(&tiny_spec(2), 2_000, 5);
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn token_count_reaches_target() {
        let c = SynthCorpus::generate(&tiny_spec(3), 10_000, 5);
        assert!(c.n_tokens >= 10_000);
        assert!(
            c.n_tokens < 10_000 + 13,
            "overshoot bounded by one sentence"
        );
        let counted = c.text.split_whitespace().count();
        assert_eq!(counted, c.n_tokens);
    }

    #[test]
    fn fourteen_categories_by_default() {
        let cats = SynthSpec::default_categories(8);
        assert_eq!(cats.len(), 14);
        let sem = cats
            .iter()
            .filter(|c| c.kind == CategoryKind::Semantic)
            .count();
        let syn = cats
            .iter()
            .filter(|c| c.kind == CategoryKind::Syntactic)
            .count();
        assert_eq!(sem, 5);
        assert_eq!(syn, 9);
    }

    #[test]
    fn questions_are_well_formed() {
        let c = SynthCorpus::generate(&tiny_spec(9), 2_000, 6);
        assert_eq!(c.analogies.categories.len(), 14);
        for cat in &c.analogies.categories {
            assert_eq!(cat.questions.len(), 6);
            for q in &cat.questions {
                assert_ne!(q.a, q.c, "exemplar and query pairs must differ");
                // a/b and c/expected share the pair index inside the name.
                assert_eq!(q.a.replace("_a", "_b"), q.b);
                assert_eq!(q.c.replace("_a", "_b"), q.expected);
            }
        }
    }

    #[test]
    fn question_count_capped_by_distinct_pairs() {
        let mut spec = tiny_spec(5);
        for cat in &mut spec.categories {
            cat.n_pairs = 3; // only 3*2 = 6 ordered pairs
        }
        let c = SynthCorpus::generate(&spec, 1_000, 100);
        for cat in &c.analogies.categories {
            assert_eq!(cat.questions.len(), 6);
        }
    }

    #[test]
    fn pair_words_occur_in_corpus() {
        let spec = tiny_spec(7);
        let c = SynthCorpus::generate(&spec, 60_000, 5);
        let sents = sentences_from_text(&c.text, TokenizerConfig::default());
        let mut b = VocabBuilder::new();
        for s in &sents {
            b.add_sentence(s);
        }
        let vocab = b.build(1);
        // Every planted pair word should appear at least a few times in a
        // 60 K-token corpus with p_relation = 0.5 and 4 pairs per category.
        let mut missing = 0;
        for cat in &c.analogies.categories {
            for q in &cat.questions {
                for w in [&q.a, &q.b, &q.c, &q.expected] {
                    if vocab.id_of(w).is_none() {
                        missing += 1;
                    }
                }
            }
        }
        assert_eq!(missing, 0, "all question words present in vocabulary");
    }

    #[test]
    fn vocab_upper_bound_holds() {
        let spec = tiny_spec(8);
        let c = SynthCorpus::generate(&spec, 40_000, 5);
        let sents = sentences_from_text(&c.text, TokenizerConfig::default());
        let mut b = VocabBuilder::new();
        for s in &sents {
            b.add_sentence(s);
        }
        assert!(b.distinct() <= spec.vocab_upper_bound());
    }

    #[test]
    fn background_follows_zipf_shape() {
        let mut spec = tiny_spec(11);
        spec.p_relation = 0.0; // background only
        let c = SynthCorpus::generate(&spec, 100_000, 0);
        let sents = sentences_from_text(&c.text, TokenizerConfig::default());
        let mut b = VocabBuilder::new();
        for s in &sents {
            b.add_sentence(s);
        }
        let vocab = b.build(1);
        // Most frequent background word is rank 0.
        assert_eq!(vocab.word_of(0), "bg0");
        // Frequency should drop by roughly 2x from rank 0 to rank 1 (s=1, q=0).
        let c0 = vocab.count_of(0) as f64;
        let c1 = vocab.count_of(vocab.id_of("bg1").unwrap()) as f64;
        let ratio = c0 / c1;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }
}
