//! Hogwild shared-memory trainer (paper §2.3).
//!
//! "In Hogwild! multiple threads compute gradients for different training
//! examples and they update the model parameters in a race fashion.
//! Surprisingly, this approach works well on a shared-memory system
//! specially when the gradients are sparse. We incorporated this method
//! for parallelizing within a node."
//!
//! Model cells are `AtomicU32`s holding `f32` bits, read and written with
//! `Relaxed` ordering: individual loads/stores are atomic (no torn
//! values, which would be UB with plain `f32` under racing threads) but
//! read-modify-write sequences deliberately race — the Hogwild recipe.
//! On x86 a relaxed atomic load/store compiles to a plain move, so the
//! single-thread path pays nothing.

use crate::model::Word2VecModel;
use crate::params::Hyperparams;
use crate::schedule::LrSchedule;
use crate::setup::{TrainSetup, HOST_RNG_BASE};
use crate::sgns::{train_sentence, SgnsStore};
use crate::trainer_hogbatch::MinibatchScratch;
use gw2v_corpus::shard::Corpus;
use gw2v_corpus::vocab::Vocabulary;
use gw2v_util::fvec;
use gw2v_util::rng::{SplitMix64, Xoshiro256};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// Model storage shared across racing threads.
pub struct AtomicModel {
    syn0: Vec<AtomicU32>,
    syn1neg: Vec<AtomicU32>,
    rows: usize,
    dim: usize,
}

impl AtomicModel {
    /// Converts a model into atomic storage.
    pub fn from_model(m: &Word2VecModel) -> Self {
        let conv = |s: &[f32]| s.iter().map(|v| AtomicU32::new(v.to_bits())).collect();
        Self {
            syn0: conv(m.syn0.as_slice()),
            syn1neg: conv(m.syn1neg.as_slice()),
            rows: m.n_words(),
            dim: m.dim(),
        }
    }

    /// Copies the current (settled) state into a plain model without
    /// consuming the atomic storage.
    pub fn snapshot(&self) -> Word2VecModel {
        let conv = |v: &[AtomicU32]| -> Vec<f32> {
            v.iter().map(|a| f32::from_bits(a.load(Relaxed))).collect()
        };
        Word2VecModel::from_layers(
            gw2v_util::fvec::FlatMatrix::from_vec(conv(&self.syn0), self.rows, self.dim),
            gw2v_util::fvec::FlatMatrix::from_vec(conv(&self.syn1neg), self.rows, self.dim),
        )
    }

    /// Converts back into a plain model.
    pub fn into_model(self) -> Word2VecModel {
        let conv = |v: Vec<AtomicU32>| -> Vec<f32> {
            v.into_iter()
                .map(|a| f32::from_bits(a.into_inner()))
                .collect()
        };
        let dim = self.dim;
        let rows = self.rows;
        Word2VecModel::from_layers(
            gw2v_util::fvec::FlatMatrix::from_vec(conv(self.syn0), rows, dim),
            gw2v_util::fvec::FlatMatrix::from_vec(conv(self.syn1neg), rows, dim),
        )
    }

    /// Embedding dimensionality.
    #[inline]
    pub(crate) fn dim(&self) -> usize {
        self.dim
    }

    /// Copies `syn0[row]` into `out` (one relaxed load per cell).
    #[inline]
    pub(crate) fn read_row0(&self, row: usize, out: &mut [f32]) {
        let base = row * self.dim;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f32::from_bits(self.syn0[base + i].load(Relaxed));
        }
    }

    /// Copies `syn1neg[row]` into `out`.
    #[inline]
    pub(crate) fn read_row1(&self, row: usize, out: &mut [f32]) {
        let base = row * self.dim;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f32::from_bits(self.syn1neg[base + i].load(Relaxed));
        }
    }

    /// Writes `vals` into `syn0[row]` (one relaxed store per cell).
    #[inline]
    pub(crate) fn write_row0(&self, row: usize, vals: &[f32]) {
        let base = row * self.dim;
        for (i, &v) in vals.iter().enumerate() {
            self.syn0[base + i].store(v.to_bits(), Relaxed);
        }
    }

    /// Writes `vals` into `syn1neg[row]`.
    #[inline]
    pub(crate) fn write_row1(&self, row: usize, vals: &[f32]) {
        let base = row * self.dim;
        for (i, &v) in vals.iter().enumerate() {
            self.syn1neg[base + i].store(v.to_bits(), Relaxed);
        }
    }
}

/// Per-thread view of the shared atomic model.
///
/// Rows are staged through per-store scratch buffers so the arithmetic
/// runs the same dispatched [`fvec`] kernels as every other trainer: a
/// 1-thread Hogwild run stays bit-identical to the sequential trainer on
/// whichever SIMD backend is active (pinned by a test below). The
/// read-copy / compute / write-back sequence keeps the Hogwild recipe's
/// racy read-modify-write semantics — each cell is still one relaxed load
/// and one relaxed store per update, deliberately unsynchronized across
/// threads. Create one store per worker (outside the sentence loop) so
/// the scratch is allocated once.
pub struct HogwildStore<'a> {
    model: &'a AtomicModel,
    // RefCell because `dot`/`acc_hidden` take `&self` in the trait; each
    // store is thread-local, so borrows never contend.
    win_buf: std::cell::RefCell<Vec<f32>>,
    wout_buf: std::cell::RefCell<Vec<f32>>,
}

impl<'a> HogwildStore<'a> {
    /// Creates a worker view with dimension-sized scratch.
    pub fn new(model: &'a AtomicModel) -> Self {
        Self {
            model,
            win_buf: std::cell::RefCell::new(vec![0.0; model.dim]),
            wout_buf: std::cell::RefCell::new(vec![0.0; model.dim]),
        }
    }
}

impl SgnsStore for HogwildStore<'_> {
    #[inline]
    fn dim(&self) -> usize {
        self.model.dim
    }

    #[inline]
    fn dot(&self, win: u32, wout: u32) -> f32 {
        let mut a = self.win_buf.borrow_mut();
        let mut b = self.wout_buf.borrow_mut();
        self.model.read_row0(win as usize, &mut a);
        self.model.read_row1(wout as usize, &mut b);
        fvec::dot(&a, &b)
    }

    #[inline]
    fn acc_hidden(&self, buf: &mut [f32], g: f32, wout: u32) {
        let mut b = self.wout_buf.borrow_mut();
        self.model.read_row1(wout as usize, &mut b);
        fvec::axpy(g, &b, buf);
    }

    #[inline]
    fn add_out(&mut self, wout: u32, g: f32, win: u32) {
        let mut a = self.win_buf.borrow_mut();
        let mut b = self.wout_buf.borrow_mut();
        self.model.read_row0(win as usize, &mut a);
        self.model.read_row1(wout as usize, &mut b);
        fvec::axpy(g, &a, &mut b);
        self.model.write_row1(wout as usize, &b);
    }

    #[inline]
    fn add_in(&mut self, win: u32, buf: &[f32]) {
        let mut a = self.win_buf.borrow_mut();
        self.model.read_row0(win as usize, &mut a);
        fvec::add_assign(&mut a, buf);
        self.model.write_row0(win as usize, &a);
    }

    #[inline]
    fn fused_grad(&mut self, wout: u32, g: f32, win: u32, buf: &mut [f32]) {
        let mut a = self.win_buf.borrow_mut();
        let mut b = self.wout_buf.borrow_mut();
        self.model.read_row0(win as usize, &mut a);
        self.model.read_row1(wout as usize, &mut b);
        fvec::fused_grad_step(g, &a, &mut b, buf);
        self.model.write_row1(wout as usize, &b);
    }
}

/// Multi-threaded Hogwild trainer.
pub struct HogwildTrainer {
    /// Hyperparameters.
    pub params: Hyperparams,
    /// Number of racing worker threads.
    pub n_threads: usize,
}

impl HogwildTrainer {
    /// Creates a trainer with `n_threads` workers.
    pub fn new(params: Hyperparams, n_threads: usize) -> Self {
        assert!(n_threads > 0);
        Self { params, n_threads }
    }

    /// Trains and returns the model. Threads split the corpus into
    /// contiguous token-balanced shards (like the C implementation) and
    /// share a global progress counter for the learning-rate schedule.
    pub fn train(&self, corpus: &Corpus, vocab: &Vocabulary) -> Word2VecModel {
        self.train_with_callback(corpus, vocab, |_, _| {})
    }

    /// Trains with a per-epoch callback: each epoch spawns a fresh thread
    /// scope (threads race within an epoch; epoch boundaries are exact),
    /// so the callback observes a settled model. Per-thread RNGs, stores
    /// and scratches persist across epochs, so steady-state epochs
    /// allocate nothing.
    pub fn train_with_callback(
        &self,
        corpus: &Corpus,
        vocab: &Vocabulary,
        mut on_epoch: impl FnMut(usize, &Word2VecModel),
    ) -> Word2VecModel {
        let p = &self.params;
        let setup = TrainSetup::new(vocab, p);
        let init = Word2VecModel::init(vocab.len(), p.dim, p.seed);
        let atomic = AtomicModel::from_model(&init);
        let schedule = LrSchedule::new(
            p.alpha,
            p.min_alpha_frac,
            corpus.total_tokens() as u64,
            p.epochs,
        );
        let progress = AtomicU64::new(0);
        let root = SplitMix64::new(p.seed);
        // Per-thread state hoisted outside the epoch loop: the RNG (so
        // streams continue across epochs), the store (its row staging
        // buffers) and the pooled scratch are each allocated once per
        // run, never per epoch or per sentence.
        let mut workers: Vec<(Xoshiro256, HogwildStore<'_>, MinibatchScratch)> = (0..self
            .n_threads)
            .map(|t| {
                (
                    Xoshiro256::new(root.derive(HOST_RNG_BASE + t as u64)),
                    HogwildStore::new(&atomic),
                    MinibatchScratch::new(),
                )
            })
            .collect();

        for epoch in 0..p.epochs {
            let mut epoch_span = gw2v_obs::span("core.hogwild.epoch").epoch(epoch);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (t, (rng, store, scratch)) in workers.iter_mut().enumerate() {
                    let shard = corpus.partition(t, self.n_threads);
                    let setup = &setup;
                    let progress = &progress;
                    let schedule = &schedule;
                    handles.push(scope.spawn(move || {
                        let ctx = setup.ctx(p);
                        let mut pairs: u64 = 0;
                        for sentence in shard.sentences() {
                            let done = progress.load(Relaxed);
                            let alpha = schedule.alpha_at(done);
                            pairs += train_sentence(
                                store,
                                sentence,
                                alpha,
                                &ctx,
                                rng,
                                &mut scratch.pair,
                            );
                            progress.fetch_add(sentence.len() as u64, Relaxed);
                        }
                        // One registry touch per thread per epoch.
                        gw2v_obs::add("core.hogwild.pairs", pairs);
                    }));
                }
                for h in handles {
                    h.join().expect("hogwild worker panicked");
                }
            });
            if gw2v_obs::enabled() {
                epoch_span.field("threads", self.n_threads as f64);
            }
            drop(epoch_span);
            // Settled between epochs: snapshot for the callback.
            let snapshot = atomic.snapshot();
            on_epoch(epoch, &snapshot);
        }
        drop(workers);
        atomic.into_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw2v_corpus::tokenizer::TokenizerConfig;
    use gw2v_corpus::vocab::VocabBuilder;
    use gw2v_util::fvec;

    fn corpus() -> (Corpus, Vocabulary) {
        let mut text = String::new();
        for i in 0..300 {
            if i % 2 == 0 {
                text.push_str("x0 x1 x2 x1 x0\n");
            } else {
                text.push_str("y0 y1 y2 y1 y0\n");
            }
        }
        let mut b = VocabBuilder::new();
        for tok in text.split_whitespace() {
            b.add_token(tok);
        }
        let vocab = b.build(1);
        let cfg = TokenizerConfig {
            lowercase: false,
            max_sentence_len: 5,
        };
        (Corpus::from_text(&text, &vocab, cfg), vocab)
    }

    #[test]
    fn single_thread_matches_sequential_bitwise() {
        let (corpus, vocab) = corpus();
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let seq = crate::trainer_seq::SequentialTrainer::new(params.clone()).train(&corpus, &vocab);
        let hog = HogwildTrainer::new(params, 1).train(&corpus, &vocab);
        assert_eq!(seq, hog, "1-thread Hogwild must equal sequential");
    }

    #[test]
    fn multi_thread_still_learns() {
        let (corpus, vocab) = corpus();
        let params = Hyperparams {
            dim: 24,
            epochs: 6,
            negative: 5,
            subsample: 0.0,
            ..Hyperparams::test_scale()
        };
        let model = HogwildTrainer::new(params, 4).train(&corpus, &vocab);
        let emb = |w: &str| model.embedding(vocab.id_of(w).unwrap());
        let same = fvec::cosine(emb("x0"), emb("x1"));
        let cross = fvec::cosine(emb("x0"), emb("y1"));
        assert!(same > cross, "same {same} vs cross {cross}");
        assert!(model.syn0.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn atomic_model_roundtrip() {
        let m = Word2VecModel::init(5, 8, 3);
        let back = AtomicModel::from_model(&m).into_model();
        assert_eq!(m, back);
    }
}
