//! # gw2v-faults
//!
//! Deterministic fault injection for the distributed engines.
//!
//! The paper's D-Galois deployment ran on 32 real Azure hosts, where
//! stragglers, dropped packets and host failures are facts of life. This
//! crate provides the *injection* half of the reproduction's
//! fault-tolerance story: a seeded [`FaultPlan`] describing which faults
//! strike where, evaluated as a **pure function of coordinates** — never
//! of wall-clock time, thread scheduling or query order — so a chaos run
//! is exactly as reproducible as a faultless one.
//!
//! Faults modeled:
//!
//! * **Message drops** — a per-message Bernoulli coin ([`FaultPlan::should_drop`]);
//!   the threaded cluster really withholds the message, the BSP simulator
//!   charges the virtual retransmission latency.
//! * **Payload bit-flips** — [`FaultPlan::flip_bit`] picks a deterministic
//!   bit of the framed payload; the CRC-32 wire frame (gw2v-gluon) is
//!   guaranteed to detect it.
//! * **Host crashes** — [`FaultPlan::crash_round`] kills a host at the
//!   start of a chosen global sync round; a surviving host adopts its
//!   corpus shard and master block.
//! * **Straggler delays** — [`FaultPlan::straggler_delay`] slows one
//!   host's compute phase in chosen rounds (a real `sleep` on the
//!   threaded engine, virtual seconds on the simulator).
//! * **Process kills** — [`FaultPlan::kill_after_epoch`] stops the whole
//!   training run after an epoch boundary, standing in for SIGKILL in
//!   checkpoint/resume tests.
//! * **Network partitions** — [`FaultPlan::partition_blocked`] withholds
//!   cross-group data frames for a round range; the trainer's
//!   [`OnPartition`] policy decides between stalling on the NAK loop and
//!   degrading to dormant-unreachable peers with deterministic healing.
//! * **Duplicate deliveries** — [`FaultPlan::should_dup`] delivers a
//!   clean frame twice, exercising the receiver's attempt-dedup path.
//! * **Send reordering** — [`FaultPlan::should_reorder`] defers a frame
//!   to the end of its phase's send sequence, shuffling per-channel
//!   delivery order (model bits are fold-order-canonical, so unchanged).
//!
//! Plans parse from a compact spec string (`GW2V_FAULT_PLAN` /
//! `--fault-plan`), e.g.:
//!
//! ```text
//! seed=42,drop=0.02,flip=0.001,crash=1@3,straggle=2@1x50ms,kill=2
//! ```
//!
//! Every injected, detected and recovered fault event is counted through
//! [`gw2v_obs`] under the [`counters`] names, so chaos runs are auditable
//! from the metrics snapshot alone.

#![deny(missing_docs)]

pub mod counters;
mod plan;

pub use plan::{
    CrashSpec, FaultPlan, OnPartition, PartitionSpec, PlanParseError, RejoinSpec, StragglerSpec,
    PARTITION_STALL_ATTEMPTS,
};
