//! Threaded cluster engine: one OS thread per host.
//!
//! This is the engine a real multi-core/multi-host deployment would use:
//! hosts run concurrently, exchange serialized [`crate::wire`] buffers
//! over crossbeam channels, and separate protocol phases with a barrier.
//! It implements the same reduce/broadcast semantics as the sequential
//! engine ([`crate::sync::sync_round`]) and produces **bit-identical
//! models**: incoming deltas are folded in source-host-id order, so the
//! (order-sensitive) model combiner sees the same sequence either way.
//! The equivalence is pinned by tests here and in `tests/`.
//!
//! Supported plans: `RepModelNaive` and `RepModelOpt`. `PullModel`'s
//! inspection handshake is only implemented in the sequential engine,
//! which is what all experiments use (see DESIGN.md §3).

use crate::plan::{SyncConfig, SyncPlan};
use crate::replica::ModelReplica;
use crate::sync::NodeAccSlab;
use crate::volume::CommStats;
use crate::wire::{entry_bytes, RowDecoder, RowEncoder};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use gw2v_graph::partition::{master_block, master_host};
use gw2v_util::bitvec::BitVec;
use std::collections::HashMap;
use std::sync::{Arc, Barrier};

/// A message between host threads: one layer's payload for one phase.
#[derive(Debug)]
pub struct Message {
    /// Sending host.
    pub from: usize,
    /// Model layer the payload belongs to.
    pub layer: usize,
    /// Serialized `(node, row)` entries.
    pub payload: Bytes,
}

/// A host thread's handle to the cluster fabric.
pub struct HostCtx {
    /// This host's id.
    pub host: usize,
    /// Total hosts.
    pub n_hosts: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    barrier: Arc<Barrier>,
}

impl HostCtx {
    fn send(&self, to: usize, msg: Message) {
        self.senders[to].send(msg).expect("peer hung up");
    }

    fn recv_batch(&self, expected: usize) -> Vec<Message> {
        (0..expected)
            .map(|_| self.receiver.recv().expect("peer hung up"))
            .collect()
    }

    /// Blocks until all hosts reach the same point.
    pub fn barrier_wait(&self) {
        self.barrier.wait();
    }

    /// [`HostCtx::barrier_wait`], recording the wait in the
    /// `gluon.barrier_wait_ns` histogram when metrics are enabled. The
    /// wait time is the straggler signal: a host that arrives early
    /// waits for the slowest one, so the histogram's spread measures
    /// per-round load imbalance across hosts.
    pub fn barrier_wait_timed(&self) {
        if gw2v_obs::enabled() {
            let start = std::time::Instant::now();
            self.barrier.wait();
            gw2v_obs::observe("gluon.barrier_wait_ns", start.elapsed().as_nanos() as u64);
        } else {
            self.barrier.wait();
        }
    }
}

/// Spawns `n_hosts` threads, each running `f` with its [`HostCtx`], and
/// collects their results in host order.
pub fn run_cluster<T, F>(n_hosts: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(HostCtx) -> T + Sync,
{
    assert!(n_hosts > 0);
    let mut senders = Vec::with_capacity(n_hosts);
    let mut receivers = Vec::with_capacity(n_hosts);
    for _ in 0..n_hosts {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = Arc::new(Barrier::new(n_hosts));
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_hosts);
        for (host, receiver) in receivers.into_iter().enumerate() {
            let ctx = HostCtx {
                host,
                n_hosts,
                senders: senders.clone(),
                receiver,
                barrier: Arc::clone(&barrier),
            };
            handles.push(scope.spawn(move || f(ctx)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("host thread panicked"))
            .collect()
    })
}

/// Reusable per-host working memory for [`sync_round_threaded_with_scratch`].
///
/// Mirrors the sequential engine's [`crate::sync::SyncScratch`]: the
/// accumulator slab, per-layer updated bit vectors, and the row buffers
/// are recycled across rounds, so the fold/apply path stops allocating
/// once warm. What still allocates per round is inherent to the wire:
/// `RowEncoder` payloads are frozen into shared [`Bytes`] handed to peer
/// threads, and received messages own their buffers.
#[derive(Debug, Default)]
pub struct ThreadedSyncScratch {
    slab: NodeAccSlab,
    updated_per_layer: Vec<BitVec>,
    delta: Vec<f32>,
    combined: Vec<f32>,
}

impl ThreadedSyncScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One synchronization round from a single host's perspective, with
/// per-round working memory allocated afresh.
///
/// Thin wrapper around [`sync_round_threaded_with_scratch`]; hosts that
/// synchronize repeatedly should hold a [`ThreadedSyncScratch`] instead.
pub fn sync_round_threaded(
    ctx: &HostCtx,
    replica: &mut ModelReplica,
    cfg: &SyncConfig,
    stats: &mut CommStats,
) {
    let mut scratch = ThreadedSyncScratch::new();
    sync_round_threaded_with_scratch(ctx, replica, cfg, stats, &mut scratch)
}

/// One synchronization round from a single host's perspective, reusing
/// `scratch`; every host must call this the same number of times with
/// the same `cfg`.
///
/// `stats` accumulates the bytes *this host sends* (summing over hosts
/// gives cluster totals).
pub fn sync_round_threaded_with_scratch(
    ctx: &HostCtx,
    replica: &mut ModelReplica,
    cfg: &SyncConfig,
    stats: &mut CommStats,
    scratch: &mut ThreadedSyncScratch,
) {
    assert!(
        cfg.plan != SyncPlan::PullModel,
        "PullModel is sequential-engine only"
    );
    // Inert when metrics are disabled; otherwise times this host's whole
    // round and records its send-side byte deltas below.
    let mut obs_span = gw2v_obs::span("gluon.threaded.sync").host(ctx.host);
    let stats_before = gw2v_obs::enabled().then_some(*stats);
    let n_hosts = ctx.n_hosts;
    let n_nodes = replica.n_nodes();
    let n_layers = replica.n_layers();

    let ThreadedSyncScratch {
        slab,
        updated_per_layer,
        delta,
        combined,
    } = scratch;
    slab.ensure_nodes(n_nodes);
    if updated_per_layer.len() != n_layers
        || updated_per_layer
            .first()
            .is_some_and(|b| b.len() != n_nodes)
    {
        *updated_per_layer = (0..n_layers).map(|_| BitVec::new(n_nodes)).collect();
    } else {
        for bv in updated_per_layer.iter_mut() {
            bv.clear_all();
        }
    }

    // ---- Phase 1: ship touched-mirror deltas to masters. ----
    for layer in 0..n_layers {
        let dim = replica.layers[layer].dim();
        let mut encoders: HashMap<usize, RowEncoder> = HashMap::new();
        delta.clear();
        delta.resize(dim, 0.0);
        let tracker = replica.tracker(layer);
        for &node in tracker.touched_nodes() {
            let owner = master_host(n_nodes, n_hosts, node);
            if owner == ctx.host {
                continue;
            }
            tracker.delta_into(node, replica.row(layer, node), delta);
            encoders
                .entry(owner)
                .or_insert_with(|| RowEncoder::new(dim))
                .push(node, delta);
        }
        if cfg.plan == SyncPlan::RepModelNaive {
            // Dense plan also ships a zero delta for every untouched
            // mirror row (redundant traffic, counted but semantically
            // inert — the master skips zero-contribution entries is NOT
            // the semantics here; instead we simply account the bytes, as
            // the sequential engine does analytically).
            for m in 0..n_hosts {
                if m == ctx.host {
                    continue;
                }
                let all_rows = master_block(n_nodes, n_hosts, m).len() as u64;
                let sent_rows = encoders.get(&m).map_or(0, |e| e.count() as u64);
                let pad_rows = all_rows - sent_rows;
                stats.reduce_bytes += pad_rows * entry_bytes(dim) as u64;
                stats.reduce_msgs += pad_rows;
            }
        }
        for peer in 0..n_hosts {
            if peer == ctx.host {
                continue;
            }
            let enc = encoders
                .remove(&peer)
                .unwrap_or_else(|| RowEncoder::new(dim));
            stats.reduce_bytes += enc.byte_len() as u64;
            stats.reduce_msgs += enc.count() as u64;
            ctx.send(
                peer,
                Message {
                    from: ctx.host,
                    layer,
                    payload: enc.finish(),
                },
            );
        }
    }

    // ---- Receive deltas, fold at this host's masters. ----
    let incoming = ctx.recv_batch((n_hosts - 1) * n_layers);
    // Group by layer, order by source host so the fold order matches the
    // sequential engine (hosts 0..H, self included at its position).
    // (These routing vectors borrow the received messages, so they cannot
    // outlive the round; the heavy per-node state lives in `scratch`.)
    let mut by_layer: Vec<Vec<&Message>> = vec![Vec::new(); n_layers];
    for m in &incoming {
        by_layer[m.layer].push(m);
    }
    for layer in 0..n_layers {
        let dim = replica.layers[layer].dim();
        by_layer[layer].sort_by_key(|m| m.from);
        let mut host_cursor = 0usize;
        delta.clear();
        delta.resize(dim, 0.0);
        combined.clear();
        combined.resize(dim, 0.0);
        for h in 0..n_hosts {
            if h == ctx.host {
                let tracker = replica.tracker(layer);
                for &node in tracker.touched_nodes() {
                    if master_host(n_nodes, n_hosts, node) != ctx.host {
                        continue;
                    }
                    tracker.delta_into(node, replica.row(layer, node), delta);
                    slab.acc_mut(node, cfg.combiner, dim).push(delta);
                    updated_per_layer[layer].set(node as usize);
                }
            } else {
                let msg = by_layer[layer][host_cursor];
                debug_assert_eq!(msg.from, h);
                host_cursor += 1;
                let mut dec = RowDecoder::new(msg.payload.clone(), dim);
                while let Some((node, row)) = dec.next_entry() {
                    slab.acc_mut(node, cfg.combiner, dim).push(row);
                    updated_per_layer[layer].set(node as usize);
                }
            }
        }
        // Apply in node-id order (matches the sequential engine, which
        // walks the updated bit vector in index order).
        for node in updated_per_layer[layer].iter_ones() {
            let node_u = node as u32;
            slab.finish_into(node_u, combined);
            let (matrix, tracker) = replica.layer_and_tracker_mut(layer);
            let row = matrix.row_mut(node);
            if tracker.is_touched(node_u) {
                row.copy_from_slice(tracker.base_of(node_u));
            }
            for (r, c) in row.iter_mut().zip(combined.iter()) {
                *r += c;
            }
        }
        slab.release_all();
    }
    ctx.barrier_wait_timed();

    // ---- Phase 2: broadcast canonical values of updated owned rows. ----
    for layer in 0..n_layers {
        let dim = replica.layers[layer].dim();
        let mut enc = RowEncoder::new(dim);
        match cfg.plan {
            SyncPlan::RepModelOpt => {
                for node in updated_per_layer[layer].iter_ones() {
                    enc.push(node as u32, replica.row(layer, node as u32));
                }
            }
            SyncPlan::RepModelNaive => {
                for node in master_block(n_nodes, n_hosts, ctx.host) {
                    enc.push(node, replica.row(layer, node));
                }
            }
            SyncPlan::PullModel => unreachable!("rejected above"),
        }
        let payload = enc.finish();
        for peer in 0..n_hosts {
            if peer == ctx.host {
                continue;
            }
            stats.broadcast_bytes += payload.len() as u64;
            stats.broadcast_msgs += (payload.len() / entry_bytes(dim)) as u64;
            ctx.send(
                peer,
                Message {
                    from: ctx.host,
                    layer,
                    payload: payload.clone(),
                },
            );
        }
    }
    let incoming = ctx.recv_batch((n_hosts - 1) * n_layers);
    for msg in incoming {
        let dim = replica.layers[msg.layer].dim();
        let mut dec = RowDecoder::new(msg.payload, dim);
        while let Some((node, row)) = dec.next_entry() {
            replica
                .row_mut_untracked(msg.layer, node)
                .copy_from_slice(row);
        }
    }
    replica.clear_tracking();
    stats.rounds += 1;
    ctx.barrier_wait_timed();

    if let Some(before) = stats_before {
        let reduce_b = stats.reduce_bytes - before.reduce_bytes;
        let bcast_b = stats.broadcast_bytes - before.broadcast_bytes;
        gw2v_obs::add("gluon.threaded.reduce_bytes", reduce_b);
        gw2v_obs::add("gluon.threaded.broadcast_bytes", bcast_b);
        gw2v_obs::add(
            "gluon.threaded.msgs",
            (stats.reduce_msgs - before.reduce_msgs)
                + (stats.broadcast_msgs - before.broadcast_msgs),
        );
        obs_span.field("reduce_bytes", reduce_b as f64);
        obs_span.field("broadcast_bytes", bcast_b as f64);
    }
    drop(obs_span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{assemble_canonical, sync_round};
    use gw2v_combiner::CombinerKind;
    use gw2v_util::fvec::FlatMatrix;
    use gw2v_util::rng::{Rng64, SplitMix64, Xoshiro256};

    fn fresh_replica(n_nodes: usize, dim: usize, seed: u64) -> ModelReplica {
        let mut rng = Xoshiro256::new(seed);
        let mut m0 = FlatMatrix::zeros(n_nodes, dim);
        let mut m1 = FlatMatrix::zeros(n_nodes, dim);
        for r in 0..n_nodes {
            for d in 0..dim {
                m0.row_mut(r)[d] = rng.next_f32() - 0.5;
                m1.row_mut(r)[d] = rng.next_f32() - 0.5;
            }
        }
        ModelReplica::new(vec![m0, m1])
    }

    /// Deterministic per-host workload: same touches whichever engine runs it.
    fn apply_workload(replica: &mut ModelReplica, host: usize, round: usize, n_nodes: usize) {
        let seed = SplitMix64::new(42).derive((host * 1000 + round) as u64);
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..8 {
            let layer = rng.index(2);
            let node = rng.index(n_nodes) as u32;
            let slot = rng.index(replica.layers[layer].dim());
            let bump = rng.next_f32() - 0.5;
            replica.row_mut(layer, node)[slot] += bump;
        }
    }

    fn run_threaded(
        n_hosts: usize,
        n_nodes: usize,
        dim: usize,
        rounds: usize,
        plan: SyncPlan,
        combiner: CombinerKind,
    ) -> (Vec<FlatMatrix>, CommStats) {
        let cfg = SyncConfig { plan, combiner };
        let results = run_cluster(n_hosts, |ctx| {
            // All replicas start identical (same init seed). Each host
            // carries one scratch across rounds, so these equivalence
            // tests also referee the recycled-scratch path bitwise.
            let mut replica = fresh_replica(n_nodes, dim, 7);
            let mut stats = CommStats::default();
            let mut scratch = ThreadedSyncScratch::new();
            for round in 0..rounds {
                apply_workload(&mut replica, ctx.host, round, n_nodes);
                sync_round_threaded_with_scratch(
                    &ctx,
                    &mut replica,
                    &cfg,
                    &mut stats,
                    &mut scratch,
                );
            }
            (replica, stats)
        });
        let (replicas, host_stats): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        let mut total = CommStats::default();
        for s in &host_stats {
            total.merge(s);
        }
        total.rounds = host_stats[0].rounds;
        (assemble_canonical(&replicas), total)
    }

    fn run_sequential(
        n_hosts: usize,
        n_nodes: usize,
        dim: usize,
        rounds: usize,
        plan: SyncPlan,
        combiner: CombinerKind,
    ) -> (Vec<FlatMatrix>, CommStats) {
        let cfg = SyncConfig { plan, combiner };
        let mut replicas: Vec<ModelReplica> = (0..n_hosts)
            .map(|_| fresh_replica(n_nodes, dim, 7))
            .collect();
        let mut stats = CommStats::default();
        for round in 0..rounds {
            for (host, replica) in replicas.iter_mut().enumerate() {
                apply_workload(replica, host, round, n_nodes);
            }
            sync_round(&mut replicas, &cfg, None, &mut stats);
        }
        (assemble_canonical(&replicas), stats)
    }

    #[test]
    fn threaded_matches_sequential_bitwise() {
        for combiner in [
            CombinerKind::Sum,
            CombinerKind::Avg,
            CombinerKind::ModelCombiner,
        ] {
            let (seq_model, seq_stats) =
                run_sequential(4, 20, 5, 4, SyncPlan::RepModelOpt, combiner);
            let (thr_model, thr_stats) = run_threaded(4, 20, 5, 4, SyncPlan::RepModelOpt, combiner);
            assert_eq!(
                seq_model, thr_model,
                "{combiner:?} models must be identical"
            );
            assert_eq!(
                seq_stats.reduce_bytes, thr_stats.reduce_bytes,
                "{combiner:?}"
            );
            assert_eq!(
                seq_stats.broadcast_bytes, thr_stats.broadcast_bytes,
                "{combiner:?}"
            );
        }
    }

    #[test]
    fn threaded_naive_matches_sequential() {
        let (seq_model, seq_stats) = run_sequential(
            3,
            12,
            4,
            3,
            SyncPlan::RepModelNaive,
            CombinerKind::ModelCombiner,
        );
        let (thr_model, thr_stats) = run_threaded(
            3,
            12,
            4,
            3,
            SyncPlan::RepModelNaive,
            CombinerKind::ModelCombiner,
        );
        assert_eq!(seq_model, thr_model);
        assert_eq!(seq_stats.reduce_bytes, thr_stats.reduce_bytes);
        assert_eq!(seq_stats.broadcast_bytes, thr_stats.broadcast_bytes);
    }

    #[test]
    fn replicas_agree_after_each_round() {
        let cfg = SyncConfig {
            plan: SyncPlan::RepModelOpt,
            combiner: CombinerKind::ModelCombiner,
        };
        let models = run_cluster(3, |ctx| {
            let mut replica = fresh_replica(10, 3, 1);
            let mut stats = CommStats::default();
            for round in 0..3 {
                apply_workload(&mut replica, ctx.host, round, 10);
                sync_round_threaded(&ctx, &mut replica, &cfg, &mut stats);
            }
            replica
        });
        // After the final sync every host's full replica is canonical.
        for h in 1..3 {
            assert_eq!(models[0].layers, models[h].layers);
        }
    }

    #[test]
    fn two_hosts_no_touches_is_quiet() {
        let cfg = SyncConfig::default();
        let stats = run_cluster(2, |ctx| {
            let mut replica = fresh_replica(6, 2, 3);
            let mut stats = CommStats::default();
            sync_round_threaded(&ctx, &mut replica, &cfg, &mut stats);
            stats
        });
        for s in stats {
            assert_eq!(s.total_bytes(), 0);
        }
    }

    #[test]
    fn run_cluster_collects_in_host_order() {
        let ids = run_cluster(5, |ctx| ctx.host * 10);
        assert_eq!(ids, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "host thread panicked")]
    fn pull_rejected_on_threaded() {
        let cfg = SyncConfig {
            plan: SyncPlan::PullModel,
            combiner: CombinerKind::ModelCombiner,
        };
        run_cluster(2, |ctx| {
            let mut replica = fresh_replica(4, 2, 1);
            let mut stats = CommStats::default();
            sync_round_threaded(&ctx, &mut replica, &cfg, &mut stats);
        });
    }
}
