//! HogBatch shared-negative minibatch trainer (Ji et al.,
//! arXiv:1604.04661 / arXiv:1611.06172).
//!
//! Per-pair SGNS ([`crate::sgns::train_sentence`]) walks one
//! (context, target) edge at a time with level-1 `dot`/`axpy` kernels:
//! every step re-reads both model rows, so the arithmetic intensity is
//! too low for threads (or SIMD) to win anything — the shared rows
//! bounce between per-pair atomic copies. HogBatch restructures the
//! window update so each sentence window becomes a *minibatch*:
//!
//! ```text
//! for each surviving center i:
//!   inputs  = the context words of i's (shrunk) window   # mb rows
//!   targets = [center] + negative samples (one shared set) # nt rows
//!   X = syn0[inputs]    (gathered once)                   # mb×d
//!   O = syn1neg[targets](gathered once)                   # nt×d
//!   S = X·Oᵀ                                              # one GEMM
//!   G[r,j] = (label_j − σ(S[r,j]))·α                      # elementwise
//!   syn1neg[targets] += Gᵀ·X                              # rank-mb update
//!   syn0[inputs]     += G·O                               # rank-nt update
//! ```
//!
//! All three matrix products run through the dispatched
//! [`fvec::gemm_nt`]/[`fvec::gemm_tn`] microkernels, so each gathered
//! row is touched by register-blocked FMA code instead of `mb·nt`
//! scalar-ish dot/axpy passes. The price is *staleness*: every product
//! in a window sees the rows as gathered at the start of the window
//! (plus one shared negative set per window instead of one per pair).
//! Ji et al. show — and `tests/hogbatch_parity.rs` pins — that accuracy
//! is statistically indistinguishable from the sequential trainer.
//!
//! The RNG discipline matters for the distributed engines: frequent-word
//! subsampling and window shrinking make the same *kinds* of draws as
//! the per-pair loop (the streams diverge after the first window, since
//! one shared set consumes fewer draws than per-pair negatives), and the
//! shared negative set is drawn *only when the window has at least one
//! context* (the per-pair loop draws nothing for empty windows either).
//! No stochastic choice depends on
//! model values, so replaying a sentence against a recording
//! [`BatchRows`] store with a cloned RNG predicts the touch set of the
//! real execution exactly — the same property the PullModel inspection
//! phase relies on for per-pair training.

use crate::model::Word2VecModel;
use crate::params::Hyperparams;
use crate::schedule::LrSchedule;
use crate::setup::{TrainSetup, HOST_RNG_BASE};
use crate::sgns::{
    train_sentence, PlainStore, RecordingStore, ReplicaStore, SgnsStore, TrainContext,
    TrainScratch, LAYER_SYN0, LAYER_SYN1NEG,
};
use crate::trainer_hogwild::AtomicModel;
use gw2v_corpus::shard::Corpus;
use gw2v_corpus::unigram::NegativeSampler;
use gw2v_corpus::vocab::Vocabulary;
use gw2v_util::fvec;
use gw2v_util::rng::{Rng64, SplitMix64, Xoshiro256};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Which SGNS inner loop a trainer runs.
///
/// Part of [`crate::distributed::DistConfig`], so it feeds the
/// checkpoint fingerprint: resuming a run under a different mode is
/// rejected (the RNG streams differ, so the trajectories diverge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SgnsMode {
    /// Classic per-pair loop ([`train_sentence`]): one dot/axpy step per
    /// (context, target) edge, fresh negatives per pair. Bit-compatible
    /// with the reference C implementation.
    PerPair,
    /// Shared-negative minibatch loop ([`train_sentence_hogbatch`]): one
    /// negative set per window, GEMM-shaped updates.
    HogBatch,
}

/// Bulk row access for the minibatch gather/scatter phases.
///
/// The GEMM path never does arithmetic *through* the store — it gathers
/// rows into dense scratch, computes there, and scatters additive deltas
/// back. Stores only decide where rows live (plain matrices, a tracked
/// replica, relaxed atomics) and what a delta write means (the recording
/// store only takes notes). Method names deliberately avoid the
/// [`SgnsStore`] names so one type can implement both traits without
/// call-site ambiguity.
pub trait BatchRows {
    /// `false` for inspection-only stores: [`train_sentence_hogbatch`]
    /// then skips the gather/GEMM/scatter arithmetic entirely and calls
    /// [`BatchRows::add_in_delta`]/[`BatchRows::add_out_delta`] with
    /// empty deltas, purely to mark the touch set. The RNG draws are
    /// identical either way.
    const COMPUTE: bool = true;
    /// Vector dimensionality.
    fn batch_dim(&self) -> usize;
    /// Copies `syn0[row]` into `out`.
    fn load_in(&self, row: u32, out: &mut [f32]);
    /// Copies `syn1neg[row]` into `out`.
    fn load_out(&self, row: u32, out: &mut [f32]);
    /// `syn0[row] += delta`.
    fn add_in_delta(&mut self, row: u32, delta: &[f32]);
    /// `syn1neg[row] += delta`.
    fn add_out_delta(&mut self, row: u32, delta: &[f32]);
}

impl BatchRows for PlainStore<'_> {
    #[inline]
    fn batch_dim(&self) -> usize {
        self.syn0.dim()
    }

    #[inline]
    fn load_in(&self, row: u32, out: &mut [f32]) {
        out.copy_from_slice(self.syn0.row(row as usize));
    }

    #[inline]
    fn load_out(&self, row: u32, out: &mut [f32]) {
        out.copy_from_slice(self.syn1neg.row(row as usize));
    }

    #[inline]
    fn add_in_delta(&mut self, row: u32, delta: &[f32]) {
        fvec::add_assign(self.syn0.row_mut(row as usize), delta);
    }

    #[inline]
    fn add_out_delta(&mut self, row: u32, delta: &[f32]) {
        fvec::add_assign(self.syn1neg.row_mut(row as usize), delta);
    }
}

impl BatchRows for ReplicaStore<'_> {
    #[inline]
    fn batch_dim(&self) -> usize {
        self.replica.layers[LAYER_SYN0].dim()
    }

    #[inline]
    fn load_in(&self, row: u32, out: &mut [f32]) {
        out.copy_from_slice(self.replica.row(LAYER_SYN0, row));
    }

    #[inline]
    fn load_out(&self, row: u32, out: &mut [f32]) {
        out.copy_from_slice(self.replica.row(LAYER_SYN1NEG, row));
    }

    #[inline]
    fn add_in_delta(&mut self, row: u32, delta: &[f32]) {
        // Tracked write: `row_mut` snapshots the base on first touch so
        // the synchronization phase ships the delta.
        fvec::add_assign(self.replica.row_mut(LAYER_SYN0, row), delta);
    }

    #[inline]
    fn add_out_delta(&mut self, row: u32, delta: &[f32]) {
        fvec::add_assign(self.replica.row_mut(LAYER_SYN1NEG, row), delta);
    }
}

impl BatchRows for RecordingStore {
    const COMPUTE: bool = false;

    #[inline]
    fn batch_dim(&self) -> usize {
        SgnsStore::dim(self)
    }

    #[inline]
    fn load_in(&self, _row: u32, _out: &mut [f32]) {}

    #[inline]
    fn load_out(&self, _row: u32, _out: &mut [f32]) {}

    #[inline]
    fn add_in_delta(&mut self, row: u32, _delta: &[f32]) {
        self.syn0_access.set(row as usize);
    }

    #[inline]
    fn add_out_delta(&mut self, row: u32, _delta: &[f32]) {
        self.syn1_access.set(row as usize);
    }
}

/// Per-thread [`BatchRows`] view of a shared [`AtomicModel`].
///
/// Gathers copy each cell with one relaxed load, delta scatters are a
/// read-modify-write per cell (load, SIMD `add_assign`, store) — the
/// same deliberately racy Hogwild discipline as
/// [`crate::trainer_hogwild::HogwildStore`], but amortized: a row is
/// copied once per *window*, not once per (pair × negative) step.
pub struct HogBatchStore<'a> {
    model: &'a AtomicModel,
    buf: Vec<f32>,
}

impl<'a> HogBatchStore<'a> {
    /// Creates a worker view with dimension-sized scratch.
    pub fn new(model: &'a AtomicModel) -> Self {
        Self {
            buf: vec![0.0; model.dim()],
            model,
        }
    }
}

impl BatchRows for HogBatchStore<'_> {
    #[inline]
    fn batch_dim(&self) -> usize {
        self.model.dim()
    }

    #[inline]
    fn load_in(&self, row: u32, out: &mut [f32]) {
        self.model.read_row0(row as usize, out);
    }

    #[inline]
    fn load_out(&self, row: u32, out: &mut [f32]) {
        self.model.read_row1(row as usize, out);
    }

    #[inline]
    fn add_in_delta(&mut self, row: u32, delta: &[f32]) {
        self.model.read_row0(row as usize, &mut self.buf);
        fvec::add_assign(&mut self.buf, delta);
        self.model.write_row0(row as usize, &self.buf);
    }

    #[inline]
    fn add_out_delta(&mut self, row: u32, delta: &[f32]) {
        self.model.read_row1(row as usize, &mut self.buf);
        fvec::add_assign(&mut self.buf, delta);
        self.model.write_row1(row as usize, &self.buf);
    }
}

/// Pooled per-worker scratch for both SGNS loops.
///
/// Owns the per-pair [`TrainScratch`] plus every buffer the minibatch
/// path gathers into, so a worker allocates nothing per sentence after
/// the first window of the hot shape (same discipline as
/// `gw2v_gluon::SyncScratch`): buffers grow to the high-water mark on
/// first use and are reused verbatim afterwards. Create one per worker
/// and keep it across epochs.
#[derive(Clone, Debug, Default)]
pub struct MinibatchScratch {
    /// Per-pair scratch (`kept` doubles as the subsample buffer for the
    /// minibatch loop; `neu1e` is the batched trainer's accumulator).
    pub(crate) pair: TrainScratch,
    /// Deferred (context, target) pairs for the batched trainer.
    pub(crate) pairs: Vec<(u32, u32)>,
    /// Context word ids of the current window (minibatch rows).
    inputs: Vec<u32>,
    /// Center + shared negative ids of the current window.
    targets: Vec<u32>,
    /// Gathered `syn0[inputs]`, `mb×d` row-major.
    x: Vec<f32>,
    /// Gathered `syn1neg[targets]`, `nt×d` row-major.
    o: Vec<f32>,
    /// `X·Oᵀ` scores, `mb×nt`.
    scores: Vec<f32>,
    /// Elementwise gradient, `mb×nt`.
    grads: Vec<f32>,
    /// Transposed gradient, `nt×mb` (tiny; feeds the `syn0` update).
    grads_t: Vec<f32>,
    /// `G·O` deltas for `syn0[inputs]`, `mb×d`.
    in_delta: Vec<f32>,
    /// `Gᵀ·X` deltas for `syn1neg[targets]`, `nt×d`.
    out_delta: Vec<f32>,
    minibatches: u64,
    shared_negatives: u64,
}

impl MinibatchScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the `(minibatches, shared_negatives)` counters accumulated
    /// since the last call — flush them into `gw2v-obs` once per worker
    /// per epoch, not per sentence.
    pub fn take_stats(&mut self) -> (u64, u64) {
        let stats = (self.minibatches, self.shared_negatives);
        self.minibatches = 0;
        self.shared_negatives = 0;
        stats
    }
}

/// Trains one sentence with shared-negative minibatches; returns the
/// number of (positive) pairs stepped, like [`train_sentence`].
///
/// Subsampling and window shrinking consume `rng` exactly as the
/// per-pair loop does; the negative draws differ by construction (one
/// set per window instead of one per pair), so the two modes are
/// trajectory-different but accuracy-equivalent.
pub fn train_sentence_hogbatch<M, S, R>(
    rows: &mut M,
    sentence: &[u32],
    alpha: f32,
    ctx: &TrainContext<'_, S>,
    rng: &mut R,
    scratch: &mut MinibatchScratch,
) -> u64
where
    M: BatchRows,
    S: NegativeSampler,
    R: Rng64,
{
    debug_assert!(ctx.window >= 1);
    let d = rows.batch_dim();
    scratch.pair.kept.clear();
    scratch.pair.kept.extend(
        sentence
            .iter()
            .copied()
            .filter(|&w| ctx.subsample.keep(w, rng)),
    );
    let mut pairs = 0u64;
    for i in 0..scratch.pair.kept.len() {
        let kept = &scratch.pair.kept;
        let center = kept[i];
        // Random window shrink, same draw as the per-pair loop.
        let b = rng.index(ctx.window);
        let span = 2 * ctx.window + 1 - b;
        scratch.inputs.clear();
        for a in b..span {
            if a == ctx.window {
                continue;
            }
            let c = i as isize + a as isize - ctx.window as isize;
            if c < 0 || c as usize >= kept.len() {
                continue;
            }
            scratch.inputs.push(kept[c as usize]);
        }
        if scratch.inputs.is_empty() {
            // The per-pair loop draws no negatives for an empty window
            // either; keeping that invariant keeps inspection replays in
            // lock-step with execution.
            continue;
        }
        // One shared negative set for the whole window. Accidental hits
        // on the center are skipped (not redrawn), as in the C code.
        scratch.targets.clear();
        scratch.targets.push(center);
        for _ in 0..ctx.negative {
            let t = ctx.sampler.sample(rng);
            if t != center {
                scratch.targets.push(t);
            }
        }
        let mb = scratch.inputs.len();
        let nt = scratch.targets.len();
        scratch.minibatches += 1;
        scratch.shared_negatives += (nt - 1) as u64;
        pairs += mb as u64;
        if !M::COMPUTE {
            // Inspection: mark the rows the real run will read & write.
            for &t in &scratch.targets {
                rows.add_out_delta(t, &[]);
            }
            for &w in &scratch.inputs {
                rows.add_in_delta(w, &[]);
            }
            continue;
        }
        // Gather. Each row is copied once per window, no matter how many
        // products it participates in.
        scratch.x.resize(mb * d, 0.0);
        for (r, &w) in scratch.inputs.iter().enumerate() {
            rows.load_in(w, &mut scratch.x[r * d..(r + 1) * d]);
        }
        scratch.o.resize(nt * d, 0.0);
        for (j, &t) in scratch.targets.iter().enumerate() {
            rows.load_out(t, &mut scratch.o[j * d..(j + 1) * d]);
        }
        // Scores: S[mb×nt] = X·Oᵀ in one GEMM.
        scratch.scores.resize(mb * nt, 0.0);
        scratch.scores.fill(0.0);
        fvec::gemm_nt(mb, nt, d, &scratch.x, &scratch.o, &mut scratch.scores);
        // Elementwise gradient; column 0 is the positive (the center).
        scratch.grads.resize(mb * nt, 0.0);
        for r in 0..mb {
            for j in 0..nt {
                let label = if j == 0 { 1.0f32 } else { 0.0 };
                let f = scratch.scores[r * nt + j];
                scratch.grads[r * nt + j] = (label - ctx.sigmoid.value(f)) * alpha;
            }
        }
        // Gᵀ for the syn0 update (tiny: mb·nt floats).
        scratch.grads_t.resize(nt * mb, 0.0);
        for r in 0..mb {
            for j in 0..nt {
                scratch.grads_t[j * mb + r] = scratch.grads[r * nt + j];
            }
        }
        // Rank-mb update of the targets: ΔO[nt×d] = Gᵀ·X. `gemm_tn`
        // reads A as [k×m] and applies the transpose itself, so G
        // ([mb×nt] = [k×m]) goes in untransposed.
        scratch.out_delta.resize(nt * d, 0.0);
        scratch.out_delta.fill(0.0);
        fvec::gemm_tn(
            nt,
            d,
            mb,
            &scratch.grads,
            &scratch.x,
            &mut scratch.out_delta,
        );
        // Rank-nt update of the inputs: ΔX[mb×d] = G·O, via Gᵀᵀ.
        scratch.in_delta.resize(mb * d, 0.0);
        scratch.in_delta.fill(0.0);
        fvec::gemm_tn(
            mb,
            d,
            nt,
            &scratch.grads_t,
            &scratch.o,
            &mut scratch.in_delta,
        );
        // Scatter. Sequential `+=` per row: duplicate ids (repeated
        // negatives, a word appearing twice in a window) accumulate both
        // deltas, each computed against the start-of-window gather —
        // the HogBatch staleness contract.
        for (j, &t) in scratch.targets.iter().enumerate() {
            rows.add_out_delta(t, &scratch.out_delta[j * d..(j + 1) * d]);
        }
        for (r, &w) in scratch.inputs.iter().enumerate() {
            rows.add_in_delta(w, &scratch.in_delta[r * d..(r + 1) * d]);
        }
    }
    pairs
}

/// Dispatches one sentence to the configured SGNS inner loop.
///
/// The distributed and threaded engines call this at every training and
/// inspection site so a single `SgnsMode` value switches the whole
/// engine between loops.
#[inline]
pub fn train_sentence_mode<M, S, R>(
    mode: SgnsMode,
    store: &mut M,
    sentence: &[u32],
    alpha: f32,
    ctx: &TrainContext<'_, S>,
    rng: &mut R,
    scratch: &mut MinibatchScratch,
) -> u64
where
    M: SgnsStore + BatchRows,
    S: NegativeSampler,
    R: Rng64,
{
    match mode {
        SgnsMode::PerPair => train_sentence(store, sentence, alpha, ctx, rng, &mut scratch.pair),
        SgnsMode::HogBatch => train_sentence_hogbatch(store, sentence, alpha, ctx, rng, scratch),
    }
}

/// Multi-threaded shared-memory HogBatch trainer.
///
/// Threading structure is identical to
/// [`crate::trainer_hogwild::HogwildTrainer`] — racing threads over an
/// [`AtomicModel`], contiguous token-balanced shards, a shared progress
/// counter for the learning-rate schedule, exact epoch boundaries — only
/// the inner loop differs. That makes `hogwild` vs `hogbatch` benches an
/// apples-to-apples measurement of the minibatch restructuring.
pub struct HogBatchTrainer {
    /// Hyperparameters.
    pub params: Hyperparams,
    /// Number of racing worker threads.
    pub n_threads: usize,
}

impl HogBatchTrainer {
    /// Creates a trainer with `n_threads` workers.
    pub fn new(params: Hyperparams, n_threads: usize) -> Self {
        assert!(n_threads > 0);
        Self { params, n_threads }
    }

    /// Trains and returns the model.
    pub fn train(&self, corpus: &Corpus, vocab: &Vocabulary) -> Word2VecModel {
        self.train_with_callback(corpus, vocab, |_, _| {})
    }

    /// Trains with a per-epoch callback (observes a settled model).
    /// Per-thread RNGs, stores and scratches persist across epochs, so
    /// steady-state epochs allocate nothing.
    pub fn train_with_callback(
        &self,
        corpus: &Corpus,
        vocab: &Vocabulary,
        mut on_epoch: impl FnMut(usize, &Word2VecModel),
    ) -> Word2VecModel {
        let p = &self.params;
        let setup = TrainSetup::new(vocab, p);
        let init = Word2VecModel::init(vocab.len(), p.dim, p.seed);
        let atomic = AtomicModel::from_model(&init);
        let schedule = LrSchedule::new(
            p.alpha,
            p.min_alpha_frac,
            corpus.total_tokens() as u64,
            p.epochs,
        );
        let progress = AtomicU64::new(0);
        let root = SplitMix64::new(p.seed);
        // Same per-thread RNG derivation as Hogwild: thread t on the
        // same seed sees the same stream regardless of the inner loop.
        let mut workers: Vec<(Xoshiro256, HogBatchStore<'_>, MinibatchScratch)> = (0..self
            .n_threads)
            .map(|t| {
                (
                    Xoshiro256::new(root.derive(HOST_RNG_BASE + t as u64)),
                    HogBatchStore::new(&atomic),
                    MinibatchScratch::new(),
                )
            })
            .collect();

        for epoch in 0..p.epochs {
            let mut epoch_span = gw2v_obs::span("core.hogbatch.epoch").epoch(epoch);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (t, (rng, store, scratch)) in workers.iter_mut().enumerate() {
                    let shard = corpus.partition(t, self.n_threads);
                    let setup = &setup;
                    let progress = &progress;
                    let schedule = &schedule;
                    handles.push(scope.spawn(move || {
                        let ctx = setup.ctx(p);
                        let mut pairs: u64 = 0;
                        for sentence in shard.sentences() {
                            let done = progress.load(Relaxed);
                            let alpha = schedule.alpha_at(done);
                            pairs +=
                                train_sentence_hogbatch(store, sentence, alpha, &ctx, rng, scratch);
                            progress.fetch_add(sentence.len() as u64, Relaxed);
                        }
                        // One registry touch per counter per thread per
                        // epoch.
                        let (minibatches, shared_negatives) = scratch.take_stats();
                        gw2v_obs::add("core.hogbatch.pairs", pairs);
                        gw2v_obs::add("sgns.minibatches", minibatches);
                        gw2v_obs::add("sgns.shared_negatives", shared_negatives);
                    }));
                }
                for h in handles {
                    h.join().expect("hogbatch worker panicked");
                }
            });
            if gw2v_obs::enabled() {
                epoch_span.field("threads", self.n_threads as f64);
            }
            drop(epoch_span);
            let snapshot = atomic.snapshot();
            on_epoch(epoch, &snapshot);
        }
        drop(workers);
        atomic.into_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigmoid::SigmoidTable;
    use gw2v_corpus::subsample::SubsampleTable;
    use gw2v_corpus::tokenizer::TokenizerConfig;
    use gw2v_corpus::unigram::AliasSampler;
    use gw2v_corpus::vocab::VocabBuilder;
    use gw2v_gluon::ModelReplica;

    struct Fixture {
        sampler: AliasSampler,
        sigmoid: SigmoidTable,
        subsample: SubsampleTable,
    }

    impl Fixture {
        fn new(n: usize) -> Self {
            let mut b = VocabBuilder::new();
            for i in 0..n {
                for _ in 0..(2 * (n - i)) {
                    b.add_token(&format!("w{i:03}"));
                }
            }
            let vocab = b.build(1);
            let sampler = AliasSampler::from_vocab(&vocab);
            Self {
                subsample: SubsampleTable::new(&vocab, 0.0), // keep all
                sigmoid: SigmoidTable::new(),
                sampler,
            }
        }

        fn ctx(&self, window: usize, negative: usize) -> TrainContext<'_, AliasSampler> {
            TrainContext {
                window,
                negative,
                sigmoid: &self.sigmoid,
                sampler: &self.sampler,
                subsample: &self.subsample,
            }
        }
    }

    fn corpus() -> (Corpus, Vocabulary) {
        let mut text = String::new();
        for i in 0..300 {
            if i % 2 == 0 {
                text.push_str("x0 x1 x2 x1 x0\n");
            } else {
                text.push_str("y0 y1 y2 y1 y0\n");
            }
        }
        let mut b = VocabBuilder::new();
        for tok in text.split_whitespace() {
            b.add_token(tok);
        }
        let vocab = b.build(1);
        let cfg = TokenizerConfig {
            lowercase: false,
            max_sentence_len: 5,
        };
        (Corpus::from_text(&text, &vocab, cfg), vocab)
    }

    #[test]
    fn hogbatch_sentence_is_deterministic() {
        let fx = Fixture::new(12);
        let sentence: Vec<u32> = vec![0, 3, 5, 7, 2, 1];
        let ctx = fx.ctx(3, 5);
        let run = || {
            let mut model = Word2VecModel::init(12, 8, 11);
            let mut rng = Xoshiro256::new(42);
            let mut scratch = MinibatchScratch::new();
            let mut store = PlainStore {
                syn0: &mut model.syn0,
                syn1neg: &mut model.syn1neg,
            };
            let pairs =
                train_sentence_hogbatch(&mut store, &sentence, 0.025, &ctx, &mut rng, &mut scratch);
            (model, pairs, scratch.take_stats())
        };
        let (m1, p1, s1) = run();
        let (m2, p2, s2) = run();
        assert_eq!(p1, p2);
        assert_eq!(s1, s2);
        assert_eq!(m1, m2);
        assert!(p1 > 0);
        assert!(s1.0 > 0, "no minibatches counted");
        assert!(s1.1 > 0, "no shared negatives counted");
    }

    #[test]
    fn hogbatch_counts_same_pairs_as_per_pair() {
        // With window=1 and a two-token sentence every window holds
        // exactly one context, so both loops draw the same number of
        // negatives and their RNG streams stay in lock-step — the pair
        // counts must then match exactly. (Longer windows interleave
        // draws differently, so counts legitimately diverge there.)
        let fx = Fixture::new(15);
        let sentence: Vec<u32> = vec![4, 9];
        let ctx = fx.ctx(1, 4);
        let mut model_a = Word2VecModel::init(15, 12, 77);
        let mut rng_a = Xoshiro256::new(9);
        let mut scratch_a = TrainScratch::default();
        let mut store_a = PlainStore {
            syn0: &mut model_a.syn0,
            syn1neg: &mut model_a.syn1neg,
        };
        let per_pair = train_sentence(
            &mut store_a,
            &sentence,
            0.03,
            &ctx,
            &mut rng_a,
            &mut scratch_a,
        );
        let mut model_b = Word2VecModel::init(15, 12, 77);
        let mut rng_b = Xoshiro256::new(9);
        let mut scratch_b = MinibatchScratch::new();
        let mut store_b = PlainStore {
            syn0: &mut model_b.syn0,
            syn1neg: &mut model_b.syn1neg,
        };
        let hogbatch = train_sentence_hogbatch(
            &mut store_b,
            &sentence,
            0.03,
            &ctx,
            &mut rng_b,
            &mut scratch_b,
        );
        assert_eq!(per_pair, hogbatch);
        assert!(per_pair > 0);
    }

    #[test]
    fn hogbatch_positive_pair_similarity_increases() {
        let fx = Fixture::new(10);
        let mut model = Word2VecModel::init(10, 16, 3);
        let sentence = vec![1u32, 2];
        let ctx = fx.ctx(2, 3);
        let before = fvec::dot(model.syn0.row(2), model.syn1neg.row(1));
        let mut rng = Xoshiro256::new(5);
        let mut scratch = MinibatchScratch::new();
        for _ in 0..200 {
            let mut store = PlainStore {
                syn0: &mut model.syn0,
                syn1neg: &mut model.syn1neg,
            };
            train_sentence_hogbatch(&mut store, &sentence, 0.05, &ctx, &mut rng, &mut scratch);
        }
        let after = fvec::dot(model.syn0.row(2), model.syn1neg.row(1));
        assert!(after > before + 0.5, "dot went {before} -> {after}");
    }

    #[test]
    fn recording_store_predicts_hogbatch_touch_sets_exactly() {
        let fx = Fixture::new(20);
        let sentence: Vec<u32> = vec![3, 8, 15, 1, 0, 19, 4, 4, 7];
        let ctx = fx.ctx(3, 6);
        // Inspection replay with a cloned RNG...
        let mut rng_inspect = Xoshiro256::new(123);
        let mut recorder = RecordingStore::new(20, 10);
        let mut scratch = MinibatchScratch::new();
        train_sentence_hogbatch(
            &mut recorder,
            &sentence,
            0.025,
            &ctx,
            &mut rng_inspect,
            &mut scratch,
        );
        // ...then the real execution with the same starting RNG state.
        let init = Word2VecModel::init(20, 10, 5);
        let mut replica = ModelReplica::new(vec![init.syn0, init.syn1neg]);
        let mut rng_real = Xoshiro256::new(123);
        {
            let mut store = ReplicaStore {
                replica: &mut replica,
            };
            train_sentence_hogbatch(
                &mut store,
                &sentence,
                0.025,
                &ctx,
                &mut rng_real,
                &mut scratch,
            );
        }
        assert_eq!(
            &recorder.syn0_access,
            replica.tracker(LAYER_SYN0).touched_bits(),
            "inspection must predict syn0 touches exactly"
        );
        assert_eq!(
            &recorder.syn1_access,
            replica.tracker(LAYER_SYN1NEG).touched_bits(),
            "inspection must predict syn1neg touches exactly"
        );
        // And the RNGs advanced identically.
        assert_eq!(rng_inspect.next_u64(), rng_real.next_u64());
    }

    #[test]
    fn replica_store_matches_plain_store_under_hogbatch() {
        let fx = Fixture::new(15);
        let sentence: Vec<u32> = vec![4, 9, 1, 0, 13, 2, 6];
        let ctx = fx.ctx(2, 4);
        let mut model = Word2VecModel::init(15, 12, 77);
        let mut rng_a = Xoshiro256::new(9);
        let mut scratch = MinibatchScratch::new();
        {
            let mut store = PlainStore {
                syn0: &mut model.syn0,
                syn1neg: &mut model.syn1neg,
            };
            train_sentence_hogbatch(&mut store, &sentence, 0.03, &ctx, &mut rng_a, &mut scratch);
        }
        let init = Word2VecModel::init(15, 12, 77);
        let mut replica = ModelReplica::new(vec![init.syn0, init.syn1neg]);
        let mut rng_b = Xoshiro256::new(9);
        {
            let mut store = ReplicaStore {
                replica: &mut replica,
            };
            train_sentence_hogbatch(&mut store, &sentence, 0.03, &ctx, &mut rng_b, &mut scratch);
        }
        assert_eq!(model.syn0, replica.layers[LAYER_SYN0]);
        assert_eq!(model.syn1neg, replica.layers[LAYER_SYN1NEG]);
    }

    #[test]
    fn hogbatch_single_thread_is_deterministic() {
        let (corpus, vocab) = corpus();
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let a = HogBatchTrainer::new(params.clone(), 1).train(&corpus, &vocab);
        let b = HogBatchTrainer::new(params, 1).train(&corpus, &vocab);
        assert_eq!(a, b, "1-thread HogBatch must be run-to-run deterministic");
    }

    #[test]
    fn hogbatch_multi_thread_still_learns() {
        let (corpus, vocab) = corpus();
        let params = Hyperparams {
            dim: 24,
            epochs: 6,
            negative: 5,
            subsample: 0.0,
            ..Hyperparams::test_scale()
        };
        let model = HogBatchTrainer::new(params, 4).train(&corpus, &vocab);
        let emb = |w: &str| model.embedding(vocab.id_of(w).unwrap());
        let same = fvec::cosine(emb("x0"), emb("x1"));
        let cross = fvec::cosine(emb("x0"), emb("y1"));
        assert!(same > cross, "same {same} vs cross {cross}");
        assert!(model.syn0.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mode_dispatch_routes_both_loops() {
        let fx = Fixture::new(10);
        let sentence: Vec<u32> = vec![1, 2, 3, 4, 5];
        let ctx = fx.ctx(2, 3);
        let run = |mode: SgnsMode| {
            let mut model = Word2VecModel::init(10, 8, 4);
            let mut rng = Xoshiro256::new(17);
            let mut scratch = MinibatchScratch::new();
            let mut store = PlainStore {
                syn0: &mut model.syn0,
                syn1neg: &mut model.syn1neg,
            };
            let pairs = train_sentence_mode(
                mode,
                &mut store,
                &sentence,
                0.025,
                &ctx,
                &mut rng,
                &mut scratch,
            );
            (model, pairs, scratch.take_stats().0)
        };
        let (m_pp, p_pp, mb_pp) = run(SgnsMode::PerPair);
        let (m_hb, p_hb, mb_hb) = run(SgnsMode::HogBatch);
        // Both loops train; only HogBatch counts minibatches.
        assert!(p_pp > 0);
        assert!(p_hb > 0);
        assert_eq!(mb_pp, 0);
        assert!(mb_hb > 0);
        // The trajectories legitimately differ (different negative-draw
        // discipline) — but both trained.
        let init = Word2VecModel::init(10, 8, 4);
        assert_ne!(m_pp, init);
        assert_ne!(m_hb, init);
    }
}
