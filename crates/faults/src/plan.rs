//! The seeded, deterministic fault plan.

use gw2v_util::rng::SplitMix64;
use std::fmt;

/// Domain-separation tags for the per-fault-kind decision streams.
const TAG_DROP: u64 = 0xD80F;
const TAG_FLIP: u64 = 0xF117;
const TAG_FLIP_POS: u64 = 0xF119;

/// Crash `host` at the start of global sync round `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Host to kill.
    pub host: usize,
    /// Global round index (`epoch · sync_rounds + s`) at whose start the
    /// host dies, before computing or sending anything.
    pub round: usize,
}

/// Delay `host`'s compute phase in global sync round `round`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerSpec {
    /// Host to slow down.
    pub host: usize,
    /// Global round index the delay applies to.
    pub round: usize,
    /// Added compute time in seconds (a real sleep on the threaded
    /// engine, virtual seconds on the BSP simulator).
    pub delay_secs: f64,
}

/// Re-admit crashed `host` at the start of epoch `epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejoinSpec {
    /// Host to bring back.
    pub host: usize,
    /// Epoch at whose start the host rejoins. The rejoin is ignored if
    /// the host is still alive then (it never crashed, or crashed later).
    pub epoch: usize,
}

/// A deterministic, seeded schedule of faults to inject into a
/// distributed training run.
///
/// All stochastic decisions (drops, flips) are pure functions of
/// `(seed, message coordinates, attempt)` — hashed, not drawn from a
/// stateful stream — so they are independent of query order, thread
/// interleaving and wall-clock time. Two runs with the same plan inject
/// byte-identical faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the drop/flip decision hashes.
    pub seed: u64,
    /// Per-message, per-attempt drop probability in `[0, 1]`.
    pub drop_p: f64,
    /// Per-message, per-attempt bit-flip probability in `[0, 1]`.
    pub flip_p: f64,
    /// Scheduled host crashes.
    pub crashes: Vec<CrashSpec>,
    /// Scheduled straggler delays.
    pub stragglers: Vec<StragglerSpec>,
    /// Scheduled crashed-host re-admissions.
    pub rejoins: Vec<RejoinSpec>,
    /// Stop the whole training process after this epoch completes (and
    /// checkpoints) — the injector's stand-in for SIGKILL in
    /// checkpoint/resume tests.
    pub kill_after_epoch: Option<usize>,
}

/// A fault-plan spec string that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError(pub String);

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The inert plan: injects nothing, costs nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_p: 0.0,
            flip_p: 0.0,
            crashes: Vec::new(),
            stragglers: Vec::new(),
            rejoins: Vec::new(),
            kill_after_epoch: None,
        }
    }

    /// True when the plan injects no fault of any kind. Engines use this
    /// to skip the fault paths entirely, keeping faultless runs
    /// bit-identical to a build without the fault subsystem.
    pub fn is_inert(&self) -> bool {
        self.drop_p == 0.0
            && self.flip_p == 0.0
            && self.crashes.is_empty()
            && self.stragglers.is_empty()
            && self.rejoins.is_empty()
            && self.kill_after_epoch.is_none()
    }

    /// Order-independent decision hash over the given coordinates.
    fn hash(&self, tag: u64, words: [u64; 5]) -> u64 {
        let mut h = SplitMix64::new(self.seed).derive(tag);
        for w in words {
            h = SplitMix64::new(h).derive(w);
        }
        h
    }

    /// Uniform `[0, 1)` coin for the given coordinates.
    fn coin(&self, tag: u64, words: [u64; 5]) -> f64 {
        (self.hash(tag, words) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Should delivery attempt `attempt` of the `(from → to, layer)`
    /// message of phase `seq` be dropped?
    ///
    /// `seq` is the global phase sequence number (two phases — reduce and
    /// broadcast — per sync round), and `attempt` counts retransmissions,
    /// so a dropped message's resend gets an independent coin and
    /// bounded-retry recovery terminates with probability 1.
    pub fn should_drop(
        &self,
        from: usize,
        to: usize,
        layer: usize,
        seq: u64,
        attempt: u32,
    ) -> bool {
        self.drop_p > 0.0
            && self.coin(
                TAG_DROP,
                [from as u64, to as u64, layer as u64, seq, attempt as u64],
            ) < self.drop_p
    }

    /// If this delivery attempt is to be corrupted, the bit index (within
    /// `len_bytes · 8`) to flip; `None` for clean delivery.
    pub fn flip_bit(
        &self,
        from: usize,
        to: usize,
        layer: usize,
        seq: u64,
        attempt: u32,
        len_bytes: usize,
    ) -> Option<usize> {
        if self.flip_p == 0.0 || len_bytes == 0 {
            return None;
        }
        let words = [from as u64, to as u64, layer as u64, seq, attempt as u64];
        if self.coin(TAG_FLIP, words) >= self.flip_p {
            return None;
        }
        Some((self.hash(TAG_FLIP_POS, words) % (len_bytes as u64 * 8)) as usize)
    }

    /// The global round at whose start `host` crashes, if scheduled.
    pub fn crash_round(&self, host: usize) -> Option<usize> {
        self.crashes
            .iter()
            .filter(|c| c.host == host)
            .map(|c| c.round)
            .min()
    }

    /// The epoch at whose start crashed `host` rejoins, if scheduled.
    pub fn rejoin_epoch(&self, host: usize) -> Option<usize> {
        self.rejoins
            .iter()
            .filter(|r| r.host == host)
            .map(|r| r.epoch)
            .min()
    }

    /// The straggler delay (seconds) for `host` in global round `round`.
    pub fn straggler_delay(&self, host: usize, round: usize) -> Option<f64> {
        let total: f64 = self
            .stragglers
            .iter()
            .filter(|s| s.host == host && s.round == round)
            .map(|s| s.delay_secs)
            .sum();
        (total > 0.0).then_some(total)
    }

    /// Parses a compact spec string:
    ///
    /// ```text
    /// seed=42,drop=0.02,flip=0.001,crash=1@3,straggle=2@1x50ms,kill=2
    /// ```
    ///
    /// `crash`, `straggle` and `rejoin` (`rejoin=H@E`, epoch granularity)
    /// entries may repeat; `straggle` delays take a `ms` or `s` suffix.
    /// An empty string is the inert plan.
    pub fn parse(spec: &str) -> Result<Self, PlanParseError> {
        let mut plan = Self::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| PlanParseError(format!("{part:?} is not key=value")))?;
            match key {
                "seed" => plan.seed = parse_num(key, value)?,
                "drop" => plan.drop_p = parse_prob(key, value)?,
                "flip" => plan.flip_p = parse_prob(key, value)?,
                "kill" => plan.kill_after_epoch = Some(parse_num(key, value)?),
                "crash" => {
                    let (host, round) = value
                        .split_once('@')
                        .ok_or_else(|| PlanParseError(format!("crash={value:?}: want H@R")))?;
                    plan.crashes.push(CrashSpec {
                        host: parse_num("crash host", host)?,
                        round: parse_num("crash round", round)?,
                    });
                }
                "straggle" => {
                    let (host, rest) = value.split_once('@').ok_or_else(|| {
                        PlanParseError(format!("straggle={value:?}: want H@RxDELAY"))
                    })?;
                    let (round, delay) = rest.split_once('x').ok_or_else(|| {
                        PlanParseError(format!("straggle={value:?}: want H@RxDELAY"))
                    })?;
                    plan.stragglers.push(StragglerSpec {
                        host: parse_num("straggle host", host)?,
                        round: parse_num("straggle round", round)?,
                        delay_secs: parse_delay(delay)?,
                    });
                }
                "rejoin" => {
                    let (host, epoch) = value
                        .split_once('@')
                        .ok_or_else(|| PlanParseError(format!("rejoin={value:?}: want H@E")))?;
                    plan.rejoins.push(RejoinSpec {
                        host: parse_num("rejoin host", host)?,
                        epoch: parse_num("rejoin epoch", epoch)?,
                    });
                }
                other => return Err(PlanParseError(format!("unknown key {other:?}"))),
            }
        }
        Ok(plan)
    }

    /// Reads the plan from the `GW2V_FAULT_PLAN` environment variable;
    /// unset or empty means the inert plan.
    pub fn from_env() -> Result<Self, PlanParseError> {
        match std::env::var("GW2V_FAULT_PLAN") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(Self::none()),
        }
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = PlanParseError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        Self::parse(spec)
    }
}

impl fmt::Display for FaultPlan {
    /// Formats the plan back into its [`FaultPlan::parse`] spec form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = vec![format!("seed={}", self.seed)];
        if self.drop_p > 0.0 {
            parts.push(format!("drop={}", self.drop_p));
        }
        if self.flip_p > 0.0 {
            parts.push(format!("flip={}", self.flip_p));
        }
        for c in &self.crashes {
            parts.push(format!("crash={}@{}", c.host, c.round));
        }
        for s in &self.stragglers {
            parts.push(format!(
                "straggle={}@{}x{}ms",
                s.host,
                s.round,
                s.delay_secs * 1e3
            ));
        }
        for r in &self.rejoins {
            parts.push(format!("rejoin={}@{}", r.host, r.epoch));
        }
        if let Some(e) = self.kill_after_epoch {
            parts.push(format!("kill={e}"));
        }
        f.write_str(&parts.join(","))
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, PlanParseError> {
    value
        .parse()
        .map_err(|_| PlanParseError(format!("{key}: cannot parse {value:?}")))
}

fn parse_prob(key: &str, value: &str) -> Result<f64, PlanParseError> {
    let p: f64 = parse_num(key, value)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(PlanParseError(format!("{key}={p} outside [0, 1]")));
    }
    Ok(p)
}

fn parse_delay(value: &str) -> Result<f64, PlanParseError> {
    if let Some(ms) = value.strip_suffix("ms") {
        Ok(parse_num::<f64>("straggle delay", ms)? / 1e3)
    } else if let Some(s) = value.strip_suffix('s') {
        parse_num("straggle delay", s)
    } else {
        Err(PlanParseError(format!(
            "straggle delay {value:?}: want e.g. 50ms or 0.05s"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos() -> FaultPlan {
        FaultPlan::parse(
            "seed=42,drop=0.02,flip=0.001,crash=1@3,straggle=2@1x50ms,rejoin=1@2,kill=2",
        )
        .unwrap()
    }

    #[test]
    fn parse_full_spec() {
        let p = chaos();
        assert_eq!(p.seed, 42);
        assert_eq!(p.drop_p, 0.02);
        assert_eq!(p.flip_p, 0.001);
        assert_eq!(p.crashes, vec![CrashSpec { host: 1, round: 3 }]);
        assert_eq!(p.stragglers.len(), 1);
        assert_eq!(p.stragglers[0].host, 2);
        assert_eq!(p.stragglers[0].round, 1);
        assert!((p.stragglers[0].delay_secs - 0.05).abs() < 1e-12);
        assert_eq!(p.rejoins, vec![RejoinSpec { host: 1, epoch: 2 }]);
        assert_eq!(p.kill_after_epoch, Some(2));
        assert!(!p.is_inert());
    }

    #[test]
    fn rejoin_lookup_and_inertness() {
        let p = chaos();
        assert_eq!(p.rejoin_epoch(1), Some(2));
        assert_eq!(p.rejoin_epoch(0), None);
        let only_rejoin = FaultPlan::parse("rejoin=2@1").unwrap();
        assert!(!only_rejoin.is_inert());
        // Repeats resolve to the earliest epoch.
        let multi = FaultPlan::parse("rejoin=2@4,rejoin=2@1").unwrap();
        assert_eq!(multi.rejoin_epoch(2), Some(1));
    }

    #[test]
    fn display_roundtrips() {
        let p = chaos();
        assert_eq!(FaultPlan::parse(&p.to_string()).unwrap(), p);
        let inert = FaultPlan::none();
        assert_eq!(FaultPlan::parse(&inert.to_string()).unwrap(), inert);
    }

    #[test]
    fn empty_spec_is_inert() {
        assert!(FaultPlan::parse("").unwrap().is_inert());
        assert!(FaultPlan::none().is_inert());
    }

    #[test]
    fn bad_specs_rejected() {
        for bad in [
            "nonsense",
            "drop=2.0",
            "drop=-0.1",
            "crash=1",
            "straggle=1@2",
            "straggle=1@2x50",
            "rejoin=1",
            "rejoin=x@2",
            "frobnicate=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn decisions_are_pure_functions() {
        let p = chaos();
        for seq in 0..64u64 {
            for attempt in 0..3 {
                assert_eq!(
                    p.should_drop(0, 1, 0, seq, attempt),
                    p.should_drop(0, 1, 0, seq, attempt)
                );
                assert_eq!(
                    p.flip_bit(0, 1, 0, seq, attempt, 100),
                    p.flip_bit(0, 1, 0, seq, attempt, 100)
                );
            }
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let p = FaultPlan {
            drop_p: 0.1,
            seed: 7,
            ..FaultPlan::none()
        };
        let n = 100_000u64;
        let hits = (0..n).filter(|&seq| p.should_drop(0, 1, 0, seq, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn attempts_get_independent_coins() {
        // A message dropped at attempt 0 must not be doomed forever:
        // across many dropped messages, attempt 1 must usually survive.
        let p = FaultPlan {
            drop_p: 0.5,
            seed: 3,
            ..FaultPlan::none()
        };
        let dropped: Vec<u64> = (0..10_000)
            .filter(|&s| p.should_drop(0, 1, 0, s, 0))
            .collect();
        assert!(!dropped.is_empty());
        let still = dropped
            .iter()
            .filter(|&&s| p.should_drop(0, 1, 0, s, 1))
            .count();
        let rate = still as f64 / dropped.len() as f64;
        assert!((rate - 0.5).abs() < 0.05, "attempt-1 drop rate {rate}");
    }

    #[test]
    fn flip_bit_in_range_and_inert_without_prob() {
        let p = FaultPlan {
            flip_p: 1.0,
            seed: 9,
            ..FaultPlan::none()
        };
        for seq in 0..100 {
            let bit = p.flip_bit(1, 0, 1, seq, 0, 16).expect("flip_p=1");
            assert!(bit < 16 * 8);
        }
        assert_eq!(FaultPlan::none().flip_bit(1, 0, 1, 0, 0, 16), None);
        assert_eq!(p.flip_bit(1, 0, 1, 0, 0, 0), None, "empty payload");
    }

    #[test]
    fn crash_and_straggle_lookup() {
        let p = chaos();
        assert_eq!(p.crash_round(1), Some(3));
        assert_eq!(p.crash_round(0), None);
        assert_eq!(p.straggler_delay(2, 1), Some(0.05));
        assert_eq!(p.straggler_delay(2, 2), None);
        assert_eq!(p.straggler_delay(1, 1), None);
    }
}
