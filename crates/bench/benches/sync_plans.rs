//! Microbenchmarks for the synchronization substrate: one Gluon round
//! under each communication plan, and the wire codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gw2v_combiner::CombinerKind;
use gw2v_gluon::plan::{AccessSets, SyncConfig, SyncPlan};
use gw2v_gluon::sync::sync_round;
use gw2v_gluon::volume::CommStats;
use gw2v_gluon::wire::{
    mask_bytes, Channel, DeltaShadow, QuantDecoder, RowDecoder, RowEncoder, ValueDecoder,
};
use gw2v_gluon::ModelReplica;
use gw2v_util::fvec::FlatMatrix;
use gw2v_util::rng::{Rng64, Xoshiro256};
use std::hint::black_box;

const N_NODES: usize = 2_000;
const DIM: usize = 64;

fn make_replicas(n_hosts: usize) -> Vec<ModelReplica> {
    (0..n_hosts)
        .map(|_| {
            ModelReplica::new(vec![
                FlatMatrix::zeros(N_NODES, DIM),
                FlatMatrix::zeros(N_NODES, DIM),
            ])
        })
        .collect()
}

/// Touch ~10% of the nodes on each host.
fn touch_workload(replicas: &mut [ModelReplica], seed: u64) {
    let mut rng = Xoshiro256::new(seed);
    for r in replicas.iter_mut() {
        for _ in 0..N_NODES / 10 {
            let layer = rng.index(2);
            let node = rng.index(N_NODES) as u32;
            r.row_mut(layer, node)[0] += rng.next_f32() - 0.5;
        }
    }
}

fn bench_sync_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_round");
    group.sample_size(20);
    for hosts in [4usize, 16] {
        for plan in [
            SyncPlan::RepModelNaive,
            SyncPlan::RepModelOpt,
            SyncPlan::PullModel,
        ] {
            group.bench_function(BenchmarkId::new(plan.label(), hosts), |b| {
                let cfg = SyncConfig {
                    plan,
                    combiner: CombinerKind::ModelCombiner,
                };
                let mut access = AccessSets::new(hosts, 2, N_NODES);
                for h in 0..hosts {
                    for l in 0..2 {
                        access.get_mut(h, l).set_all();
                    }
                }
                b.iter_with_setup(
                    || {
                        let mut reps = make_replicas(hosts);
                        touch_workload(&mut reps, 11);
                        reps
                    },
                    |mut reps| {
                        let mut stats = CommStats::default();
                        black_box(sync_round(&mut reps, &cfg, Some(&access), &mut stats));
                    },
                );
            });
        }
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let rows: Vec<(u32, Vec<f32>)> = (0..500u32)
        .map(|i| (i, (0..DIM).map(|d| (i + d as u32) as f32).collect()))
        .collect();
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("encode_500x64", |b| {
        b.iter(|| {
            let mut enc = RowEncoder::new(DIM);
            for (n, r) in &rows {
                enc.push(*n, r);
            }
            black_box(enc.finish())
        });
    });
    let mut enc = RowEncoder::new(DIM);
    for (n, r) in &rows {
        enc.push(*n, r);
    }
    let buf = enc.finish();
    group.bench_function("decode_500x64", |b| {
        b.iter(|| {
            let mut dec = RowDecoder::new(buf.clone(), DIM);
            let mut sum = 0.0f32;
            while let Some((_, row)) = dec.next_entry() {
                sum += row[0];
            }
            black_box(sum)
        });
    });
    // Memoized value-only format: the cache-hit fast path of wire=memo.
    group.bench_function("encode_values_500x64", |b| {
        let mut enc = RowEncoder::new(DIM);
        for (n, r) in &rows {
            enc.push(*n, r);
        }
        b.iter(|| black_box(enc.finish_values()));
    });
    let ids: Vec<u32> = enc.ids().to_vec();
    let vbuf = enc.finish_values();
    group.bench_function("decode_values_500x64", |b| {
        b.iter(|| {
            let mut dec = ValueDecoder::new(vbuf.clone(), DIM, &ids).expect("cache matches");
            let mut sum = 0.0f32;
            while let Some((_, row)) = dec.next_entry() {
                sum += row[0];
            }
            black_box(sum)
        });
    });
    // Delta format: steady-state payload with ~1-in-8 rows changed
    // (mask + changed rows only), and its shadow-side reconstruction.
    let mut mask = vec![0u8; mask_bytes(rows.len())];
    for r in (0..rows.len()).step_by(8) {
        mask[r / 8] |= 1 << (r % 8);
    }
    group.bench_function("delta_encode_500x64", |b| {
        b.iter(|| black_box(enc.finish_delta(&mask)));
    });
    let dbuf = enc.finish_delta(&mask);
    let mut shadow = DeltaShadow::new();
    shadow.store(
        0,
        1,
        0,
        Channel::Reduce,
        ids.clone(),
        rows.iter().flat_map(|(_, r)| r.iter().copied()).collect(),
    );
    group.bench_function("delta_decode_500x64", |b| {
        b.iter(|| {
            let (_, vals) = shadow
                .apply_delta(0, 1, 0, Channel::Reduce, &dbuf, DIM)
                .expect("payload matches shadow");
            black_box(vals[0])
        });
    });
    // Quantized format: u8 codes with per-row scale/offset, SoA layout.
    group.bench_function("quant_encode_500x64", |b| {
        b.iter(|| black_box(enc.finish_quant()));
    });
    let qbuf = enc.finish_quant();
    group.bench_function("quant_decode_500x64", |b| {
        b.iter(|| {
            let mut dec = QuantDecoder::new(qbuf.clone(), DIM).expect("well-formed payload");
            let mut sum = 0.0f32;
            while let Some((_, row)) = dec.next_entry() {
                sum += row[0];
            }
            black_box(sum)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sync_round, bench_wire_codec);
criterion_main!(benches);
