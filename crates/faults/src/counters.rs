//! Canonical gw2v-obs counter names for fault events.
//!
//! Three families mirror the lifecycle the fault-tolerance subsystem
//! guarantees: every fault is *injected* deliberately, *detected* by a
//! checksum/timeout/liveness mechanism, and *recovered* from by
//! retransmission, adoption or resume. Chaos tests assert the families
//! against each other (e.g. every injected drop must be recovered by a
//! resend), so all engines must count through these exact names.

/// A message was deliberately withheld by the injector.
pub const INJECTED_DROP: &str = "faults.injected.drop";
/// A payload bit was deliberately flipped by the injector.
pub const INJECTED_FLIP: &str = "faults.injected.flip";
/// A host was crashed at a round boundary.
pub const INJECTED_CRASH: &str = "faults.injected.crash";
/// A host's compute phase was artificially delayed.
pub const INJECTED_STRAGGLE: &str = "faults.injected.straggle";
/// The whole training process was stopped after an epoch boundary.
pub const INJECTED_KILL: &str = "faults.injected.kill";
/// A frame was withheld by an active network partition (stall mode:
/// per withheld attempt; degrade mode: once per converted spec).
pub const INJECTED_PARTITION: &str = "faults.injected.partition";
/// A cleanly delivered frame was delivered a second time.
pub const INJECTED_DUP: &str = "faults.injected.dup";
/// A frame's send was deferred to the end of its phase's send sequence.
pub const INJECTED_REORDER: &str = "faults.injected.reorder";

/// A frame failed its CRC-32 check at the receiver.
pub const DETECTED_CORRUPT: &str = "faults.detected.corrupt";
/// An expected message did not arrive within the receive timeout.
pub const DETECTED_TIMEOUT: &str = "faults.detected.timeout";
/// A dead host was noticed through the liveness registry.
pub const DETECTED_CRASH: &str = "faults.detected.crash";
/// A peer was declared dormant-unreachable under degrade mode (one per
/// converted partition spec; stall-mode partitions surface as
/// [`DETECTED_TIMEOUT`] instead).
pub const DETECTED_PARTITION: &str = "faults.detected.partition";

/// A missing or corrupt message was recovered via NAK/resend.
pub const RECOVERED_RESEND: &str = "faults.recovered.resend";
/// A surviving host adopted a crashed host's partition.
pub const RECOVERED_ADOPT: &str = "faults.recovered.adopt";
/// A training run resumed from an on-disk checkpoint.
pub const RECOVERED_RESUME: &str = "faults.recovered.resume";
/// A crashed host was re-admitted at an epoch boundary and took its
/// partition back from the adopter.
pub const RECOVERED_REJOIN: &str = "faults.recovered.rejoin";
/// A duplicate delivery was discarded by the receiver's
/// `(sender, layer)` dedup.
pub const RECOVERED_DEDUP: &str = "faults.recovered.dedup";
/// A partitioned channel healed: its first unblocked delivery attempt
/// went through (stall mode), or a dormant side's scheduled rejoin fits
/// inside the run (degrade mode).
pub const RECOVERED_HEAL: &str = "faults.recovered.heal";

/// Increments `name` by 1 in the global registry (no-op when metrics are
/// disabled, like all of gw2v-obs).
#[inline]
pub fn bump(name: &str) {
    gw2v_obs::add(name, 1);
}
