//! Hierarchical-softmax Skip-Gram training (extension).
//!
//! The alternative output layer of Mikolov et al. (2013): instead of
//! `1 + negative` sampled word vectors, each positive pair updates the
//! `O(log V)` inner-node vectors along the center word's Huffman path.
//! Per path node `p` with code bit `b`:
//!
//! ```text
//! f = σ(syn0[context] · syn1[p])
//! g = (1 − b − f) · α
//! neu1e      += g · syn1[p]
//! syn1[p]    += g · syn0[context]
//! ```
//!
//! This is the paper's "other models" extensibility claim made concrete:
//! the operator still reads/writes two node-label matrices, so the same
//! graph formulation applies (inner nodes become additional graph nodes).

use crate::huffman::HuffmanTree;
use crate::model::Word2VecModel;
use crate::params::Hyperparams;
use crate::schedule::LrSchedule;
use crate::sigmoid::SigmoidTable;
use gw2v_corpus::shard::Corpus;
use gw2v_corpus::subsample::SubsampleTable;
use gw2v_corpus::vocab::Vocabulary;
use gw2v_util::fvec::{self, FlatMatrix};
use gw2v_util::rng::{Rng64, SplitMix64, Xoshiro256};

/// A hierarchical-softmax Skip-Gram model: word embeddings plus
/// inner-node vectors.
#[derive(Clone, Debug)]
pub struct HsModel {
    /// Word embedding layer (`syn0`).
    pub syn0: FlatMatrix,
    /// Inner-node layer (`syn1`), one row per Huffman inner node.
    pub syn1: FlatMatrix,
    /// The Huffman tree.
    pub tree: HuffmanTree,
}

/// Sequential hierarchical-softmax trainer.
pub struct HsTrainer {
    /// Hyperparameters (`negative` is ignored).
    pub params: Hyperparams,
}

impl HsTrainer {
    /// Creates a trainer.
    pub fn new(params: Hyperparams) -> Self {
        Self { params }
    }

    /// Trains and returns the model.
    pub fn train(&self, corpus: &Corpus, vocab: &Vocabulary) -> HsModel {
        let p = &self.params;
        let tree = HuffmanTree::new(vocab);
        let init = Word2VecModel::init(vocab.len(), p.dim, p.seed);
        let mut model = HsModel {
            syn0: init.syn0,
            syn1: FlatMatrix::zeros(tree.n_inner(), p.dim),
            tree,
        };
        let sigmoid = SigmoidTable::new();
        let subsample = SubsampleTable::new(vocab, p.subsample);
        let schedule = LrSchedule::new(
            p.alpha,
            p.min_alpha_frac,
            corpus.total_tokens() as u64,
            p.epochs,
        );
        let mut rng = Xoshiro256::new(SplitMix64::new(p.seed).derive(0x45));
        let mut processed = 0u64;
        let mut kept: Vec<u32> = Vec::new();
        let mut neu1e = vec![0.0f32; p.dim];
        for _epoch in 0..p.epochs {
            for sentence in corpus.sentences() {
                let alpha = schedule.alpha_at(processed);
                kept.clear();
                kept.extend(
                    sentence
                        .iter()
                        .copied()
                        .filter(|&w| subsample.keep(w, &mut rng)),
                );
                for i in 0..kept.len() {
                    let center = kept[i];
                    let b = rng.index(p.window);
                    let span = 2 * p.window + 1 - b;
                    for a in b..span {
                        if a == p.window {
                            continue;
                        }
                        let c = i as isize + a as isize - p.window as isize;
                        if c < 0 || c as usize >= kept.len() {
                            continue;
                        }
                        let context = kept[c as usize];
                        train_pair_hs(&mut model, context, center, alpha, &sigmoid, &mut neu1e);
                    }
                }
                processed += sentence.len() as u64;
            }
        }
        model
    }
}

/// One hierarchical-softmax step for the pair (context → center).
pub fn train_pair_hs(
    model: &mut HsModel,
    context: u32,
    center: u32,
    alpha: f32,
    sigmoid: &SigmoidTable,
    neu1e: &mut [f32],
) {
    neu1e.fill(0.0);
    let path = model.tree.code_of(center).clone();
    for (&bit, &node) in path.code.iter().zip(&path.point) {
        let f = fvec::dot(
            model.syn0.row(context as usize),
            model.syn1.row(node as usize),
        );
        let g = (1.0 - bit as f32 - sigmoid.value(f)) * alpha;
        fvec::axpy(g, model.syn1.row(node as usize), neu1e);
        let (syn0, syn1) = (&model.syn0, &mut model.syn1);
        fvec::axpy(g, syn0.row(context as usize), syn1.row_mut(node as usize));
    }
    fvec::add_assign(model.syn0.row_mut(context as usize), neu1e);
}

/// The exact hierarchical-softmax probability `P(center | context)` —
/// the product of the path's sigmoid factors. Used by tests to verify
/// training raises the probability of observed pairs; sums to 1 over
/// the vocabulary by construction.
pub fn hs_probability(model: &HsModel, context: u32, center: u32) -> f64 {
    let path = model.tree.code_of(center);
    let mut p = 1.0f64;
    for (&bit, &node) in path.code.iter().zip(&path.point) {
        let f = fvec::dot(
            model.syn0.row(context as usize),
            model.syn1.row(node as usize),
        ) as f64;
        let sigma = 1.0 / (1.0 + (-f).exp());
        p *= if bit == 0 { sigma } else { 1.0 - sigma };
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw2v_corpus::tokenizer::TokenizerConfig;
    use gw2v_corpus::vocab::VocabBuilder;

    fn fixture() -> (Corpus, Vocabulary) {
        let mut text = String::new();
        for i in 0..300 {
            if i % 2 == 0 {
                text.push_str("h0 h1 h2 h1 h0\n");
            } else {
                text.push_str("k0 k1 k2 k1 k0\n");
            }
        }
        let mut b = VocabBuilder::new();
        for tok in text.split_whitespace() {
            b.add_token(tok);
        }
        let vocab = b.build(1);
        (
            Corpus::from_text(
                &text,
                &vocab,
                TokenizerConfig {
                    lowercase: false,
                    max_sentence_len: 5,
                },
            ),
            vocab,
        )
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (_, vocab) = fixture();
        let tree = HuffmanTree::new(&vocab);
        let init = Word2VecModel::init(vocab.len(), 8, 3);
        let model = HsModel {
            syn0: init.syn0,
            syn1: FlatMatrix::zeros(tree.n_inner(), 8),
            tree,
        };
        let total: f64 = (0..vocab.len() as u32)
            .map(|w| hs_probability(&model, 0, w))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn training_raises_observed_pair_probability() {
        let (corpus, vocab) = fixture();
        let params = Hyperparams {
            dim: 16,
            window: 2,
            epochs: 5,
            alpha: 0.05,
            subsample: 0.0,
            ..Hyperparams::test_scale()
        };
        let tree = HuffmanTree::new(&vocab);
        let init = Word2VecModel::init(vocab.len(), params.dim, params.seed);
        let untrained = HsModel {
            syn0: init.syn0.clone(),
            syn1: FlatMatrix::zeros(tree.n_inner(), params.dim),
            tree,
        };
        let h0 = vocab.id_of("h0").unwrap();
        let h1 = vocab.id_of("h1").unwrap();
        let k1 = vocab.id_of("k1").unwrap();
        let before = hs_probability(&untrained, h0, h1);
        let model = HsTrainer::new(params).train(&corpus, &vocab);
        let after = hs_probability(&model, h0, h1);
        assert!(after > before * 1.5, "P(h1|h0): {before} -> {after}");
        // And an unobserved pair should not gain as much.
        let cross = hs_probability(&model, h0, k1);
        assert!(after > cross, "observed {after} vs unobserved {cross}");
    }

    #[test]
    fn learns_cluster_similarity() {
        let (corpus, vocab) = fixture();
        let params = Hyperparams {
            dim: 16,
            window: 2,
            epochs: 6,
            alpha: 0.05,
            subsample: 0.0,
            ..Hyperparams::test_scale()
        };
        let model = HsTrainer::new(params).train(&corpus, &vocab);
        let emb = |w: &str| model.syn0.row(vocab.id_of(w).unwrap() as usize);
        let same = fvec::cosine(emb("h0"), emb("h1"));
        let cross = fvec::cosine(emb("h0"), emb("k1"));
        assert!(same > cross, "same {same} vs cross {cross}");
    }

    #[test]
    fn probabilities_stay_normalized_after_training() {
        let (corpus, vocab) = fixture();
        let params = Hyperparams {
            epochs: 2,
            ..Hyperparams::test_scale()
        };
        let model = HsTrainer::new(params).train(&corpus, &vocab);
        for ctx in 0..3u32 {
            let total: f64 = (0..vocab.len() as u32)
                .map(|w| hs_probability(&model, ctx, w))
                .sum();
            assert!((total - 1.0).abs() < 1e-6, "ctx {ctx}: {total}");
        }
    }
}
