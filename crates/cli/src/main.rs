//! `gw2v` — the GraphWord2Vec command-line tool.
//!
//! ```text
//! gw2v generate  --out corpus.txt [--dataset 1-billion] [--scale tiny]
//!                [--seed 42] [--questions questions.txt]
//! gw2v phrases   --input corpus.txt --out phrased.txt [--threshold 100]
//! gw2v train     --input corpus.txt --out model.txt
//!                [--trainer seq|hogwild|hogbatch|batched|dist|threaded] [--hosts 8]
//!                [--dim 200] [--epochs 16] [--negative 15] [--window 5]
//!                [--alpha 0.025] [--combiner mc|avg|sum] [--plan opt|naive|pull]
//!                [--wire id-value|memo|delta|quant] [--threads 4] [--seed 1] [--min-count 1]
//! gw2v corpus    graph --out graph.edges [--kind sbm|scale-free] [--nodes 240] [--seed 42]
//!                walks --edges graph.edges --out walks.txt [--walks 10] [--length 40]
//!                [--p 1.0] [--q 1.0] [--seed 1] [--holdout 0.2] [--holdout-seed 7]
//! gw2v eval      --model model.txt --questions questions.txt [--method cosadd|cosmul]
//! gw2v eval      linkpred --model model.txt --edges graph.edges --holdout 0.2
//!                [--negatives-per-edge 1] [--score dot|cosine] [--out report.json]
//! gw2v neighbors --model model.txt --word WORD [--k 10]
//! gw2v serve     (--model model.txt | --checkpoint DIR --vocab corpus.txt)
//!                [--queries FILE] [--out FILE] [--k 10] [--shards 8] [--batch 32]
//! ```

mod args;
mod commands;

use args::ArgError;

fn main() {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_owned());
    let rest: Vec<String> = argv.collect();
    let result = match command.as_str() {
        "generate" => commands::generate(&rest),
        "phrases" => commands::phrases(&rest),
        "corpus" => commands::corpus(&rest),
        "train" => commands::train(&rest),
        "eval" => commands::eval(&rest),
        "neighbors" => commands::neighbors(&rest),
        "serve" => commands::serve(&rest),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(ArgError(format!("unknown command {other:?}; run `gw2v help`")).into()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
