//! Figure 7 — "Effect of synchronization frequency for GraphWord2Vec
//! using Model Combiner (MC) and averaging (AVG) on 32 hosts for
//! 1-billion (dotted line is the accuracy achieved on 1 host)."
//!
//! Expected shape: MC's accuracies (semantic/syntactic/total) improve as
//! sync frequency goes 12 → 24 → 48, approaching the 1-host line; AVG
//! barely moves.

use gw2v_bench::{
    bench_params, epochs_from_env, obs_init, prepare, scale_from_env, write_json_run,
};
use gw2v_combiner::CombinerKind;
use gw2v_core::distributed::{DistConfig, DistributedTrainer};
use gw2v_core::trainer_seq::SequentialTrainer;
use gw2v_corpus::datasets::{DatasetPreset, Scale};
use gw2v_eval::analogy::evaluate;
use gw2v_util::table::{Align, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    reduction: String,
    sync_frequency: usize,
    semantic: f64,
    syntactic: f64,
    total: f64,
}

#[derive(Serialize)]
struct Output {
    one_host_semantic: f64,
    one_host_syntactic: f64,
    one_host_total: f64,
    points: Vec<Point>,
}

fn main() {
    obs_init();
    let scale = scale_from_env(Scale::Small);
    let epochs = epochs_from_env(16);
    let hosts = 32;
    let preset = DatasetPreset::by_name("1-billion").expect("preset");
    println!(
        "Figure 7: accuracy vs synchronization frequency on {} at {hosts} hosts \
         (scale {scale:?}, {epochs} epochs)\n",
        preset.paper_name
    );
    let d = prepare(preset, scale, 42);
    let params = bench_params(scale, epochs, 1);

    eprintln!("[fig7] 1-host reference ...");
    let reference = SequentialTrainer::new(params.clone()).train(&d.corpus, &d.vocab);
    let ref_report = evaluate(&reference, &d.vocab, &d.synth.analogies);

    let mut points = Vec::new();
    for combiner in [CombinerKind::Avg, CombinerKind::ModelCombiner] {
        for freq in [12usize, 24, 48] {
            eprintln!("[fig7] {} S={freq} ...", combiner.label());
            let mut config = DistConfig::paper_default(hosts);
            config.sync_rounds = freq;
            config.combiner = combiner;
            let result = DistributedTrainer::new(params.clone(), config).train(&d.corpus, &d.vocab);
            let report = evaluate(&result.model, &d.vocab, &d.synth.analogies);
            points.push(Point {
                reduction: combiner.label().into(),
                sync_frequency: freq,
                semantic: report.semantic(),
                syntactic: report.syntactic(),
                total: report.total(),
            });
        }
    }

    let mut table = Table::new(vec![
        "Reduction",
        "Sync freq",
        "Semantic",
        "Syntactic",
        "Total",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for p in &points {
        table.add_row(vec![
            p.reduction.clone(),
            format!("{}", p.sync_frequency),
            format!("{:.2}", p.semantic),
            format!("{:.2}", p.syntactic),
            format!("{:.2}", p.total),
        ]);
    }
    print!("{table}");
    println!(
        "\n1-host reference (dotted line): semantic {:.2}  syntactic {:.2}  total {:.2}",
        ref_report.semantic(),
        ref_report.syntactic(),
        ref_report.total()
    );
    println!("Shape check: MC improves with frequency toward the 1-host line; AVG barely moves.");
    write_json_run(
        "fig7",
        scale,
        1,
        &Output {
            one_host_semantic: ref_report.semantic(),
            one_host_syntactic: ref_report.syntactic(),
            one_host_total: ref_report.total(),
            points,
        },
    );
}
