//! End-to-end pipeline through the *library* APIs the CLI composes:
//! generate → save corpus + questions → streaming vocab from disk →
//! distributed train → save model text → reload → evaluate. This is the
//! full "downstream user" path with every disk format exercised.

use graph_word2vec::core::distributed::{DistConfig, DistributedTrainer};
use graph_word2vec::core::model::Word2VecModel;
use graph_word2vec::core::params::Hyperparams;
use graph_word2vec::corpus::datasets::{DatasetPreset, Scale};
use graph_word2vec::corpus::file::{build_vocab_from_path, read_partition, write_corpus};
use graph_word2vec::corpus::questions::{read_questions, write_questions};
use graph_word2vec::corpus::shard::Corpus;
use graph_word2vec::corpus::tokenizer::TokenizerConfig;
use graph_word2vec::corpus::vocab::Vocabulary;
use graph_word2vec::eval::analogy::evaluate;
use std::io::BufReader;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gw2v_pipeline_{}_{name}", std::process::id()))
}

#[test]
fn full_disk_pipeline() {
    let corpus_path = tmp("corpus.txt");
    let questions_path = tmp("questions.txt");
    let model_path = tmp("model.txt");

    // 1. Generate and persist corpus + analogy suite.
    let preset = DatasetPreset::by_name("news").expect("preset");
    let synth = preset.generate(Scale::Tiny, 17);
    write_corpus(&corpus_path, &synth.text).expect("write corpus");
    {
        let mut f = std::fs::File::create(&questions_path).expect("create questions");
        write_questions(&synth.analogies, &mut f).expect("write questions");
    }

    // 2. Stream the vocabulary from disk (paper §4.1).
    let cfg = TokenizerConfig::default();
    let vocab = build_vocab_from_path(&corpus_path, cfg.clone(), 1).expect("vocab");
    assert!(vocab.len() > 100);

    // 3. Every host reads its own byte-range partition of the file
    //    (paper §4.2) — reassemble and check coverage.
    let n_hosts = 3;
    let mut all_tokens = 0usize;
    let mut host_sentences = Vec::new();
    for h in 0..n_hosts {
        let sents = read_partition(&corpus_path, h, n_hosts, &vocab, cfg.clone()).expect("shard");
        all_tokens += sents.iter().map(Vec::len).sum::<usize>();
        host_sentences.push(sents);
    }
    assert_eq!(all_tokens as u64, vocab.total_words());

    // 4. Train distributed on the in-memory corpus.
    let text = std::fs::read_to_string(&corpus_path).expect("read");
    let corpus = Corpus::from_text(&text, &vocab, cfg);
    let params = Hyperparams {
        dim: 24,
        negative: 5,
        epochs: 3,
        ..Hyperparams::default()
    };
    let result =
        DistributedTrainer::new(params, DistConfig::paper_default(4)).train(&corpus, &vocab);

    // 5. Save as word2vec text, reload, and verify the roundtrip.
    {
        let mut f = std::fs::File::create(&model_path).expect("create model");
        result.model.save_text(&vocab, &mut f).expect("save model");
    }
    let (words, reloaded) =
        Word2VecModel::load_text(BufReader::new(std::fs::File::open(&model_path).unwrap()))
            .expect("load model");
    assert_eq!(words.len(), vocab.len());
    assert_eq!(reloaded.dim(), 24);

    // 6. Evaluate the reloaded model against the persisted questions.
    let questions = read_questions(BufReader::new(
        std::fs::File::open(&questions_path).unwrap(),
    ))
    .expect("questions");
    let n = words.len() as u64;
    let reload_vocab = Vocabulary::from_counts(
        words
            .into_iter()
            .enumerate()
            .map(|(i, w)| (w, n - i as u64)),
        1,
    );
    let report = evaluate(&reloaded, &reload_vocab, &questions);
    // Same model, same questions: accuracy must match the in-memory eval
    // (vectors roundtrip through decimal text with enough precision).
    let direct = evaluate(&result.model, &vocab, &synth.analogies);
    assert_eq!(report.skipped(), direct.skipped());
    assert!(
        (report.total() - direct.total()).abs() < 2.0,
        "reloaded {:.1}% vs direct {:.1}%",
        report.total(),
        direct.total()
    );

    for p in [&corpus_path, &questions_path, &model_path] {
        std::fs::remove_file(p).ok();
    }
}
