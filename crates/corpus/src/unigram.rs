//! Negative-sampling distributions.
//!
//! SGNS draws "negative" words from the unigram distribution raised to the
//! 3/4 power (Mikolov et al. 2013). Two exact-or-close implementations:
//!
//! * [`UnigramTable`] — the classic big-array lookup the C code uses:
//!   an array of `table_size` word ids filled proportionally to
//!   `count^0.75`; sampling is one random index. Memory `O(table_size)`,
//!   distribution quantized to `1/table_size`.
//! * [`AliasSampler`] — Walker's alias method: `O(vocab)` memory, exact
//!   probabilities, one random draw + one comparison per sample.
//!
//! Both implement [`NegativeSampler`]; the ablation bench compares them.

use crate::vocab::Vocabulary;
use gw2v_util::rng::Rng64;

/// Power applied to unigram counts (0.75 from the paper).
pub const UNIGRAM_POWER: f64 = 0.75;

/// A source of negative samples: word ids drawn from the smoothed unigram
/// distribution.
pub trait NegativeSampler: Send + Sync {
    /// Draws one word id.
    fn sample<R: Rng64>(&self, rng: &mut R) -> u32;
}

/// Classic lookup-table sampler (the C implementation's `InitUnigramTable`).
#[derive(Clone, Debug)]
pub struct UnigramTable {
    table: Vec<u32>,
}

impl UnigramTable {
    /// Default table size; the C tool uses 1e8, we default to 1e6 — at our
    /// scaled-down vocabulary sizes the quantization error is comparable.
    pub const DEFAULT_SIZE: usize = 1 << 20;

    /// Builds a table of `size` entries from the vocabulary.
    pub fn new(vocab: &Vocabulary, size: usize) -> Self {
        assert!(
            !vocab.is_empty(),
            "cannot build unigram table for empty vocabulary"
        );
        assert!(size > 0);
        let pow_sum: f64 = vocab
            .entries()
            .iter()
            .map(|w| (w.count as f64).powf(UNIGRAM_POWER))
            .sum();
        let mut table = Vec::with_capacity(size);
        let mut word: usize = 0;
        let mut cum = (vocab.count_of(0) as f64).powf(UNIGRAM_POWER) / pow_sum;
        for i in 0..size {
            table.push(word as u32);
            if (i + 1) as f64 / size as f64 > cum && word + 1 < vocab.len() {
                word += 1;
                cum += (vocab.count_of(word as u32) as f64).powf(UNIGRAM_POWER) / pow_sum;
            }
        }
        Self { table }
    }

    /// Number of table entries.
    pub fn size(&self) -> usize {
        self.table.len()
    }
}

impl NegativeSampler for UnigramTable {
    #[inline]
    fn sample<R: Rng64>(&self, rng: &mut R) -> u32 {
        self.table[rng.index(self.table.len())]
    }
}

/// Walker alias sampler: exact sampling from an arbitrary discrete
/// distribution in O(1) per draw.
#[derive(Clone, Debug)]
pub struct AliasSampler {
    prob: Vec<f32>,
    alias: Vec<u32>,
}

impl AliasSampler {
    /// Builds an alias table over `count^0.75` for the whole vocabulary.
    pub fn from_vocab(vocab: &Vocabulary) -> Self {
        let weights: Vec<f64> = vocab
            .entries()
            .iter()
            .map(|w| (w.count as f64).powf(UNIGRAM_POWER))
            .collect();
        Self::from_weights(&weights)
    }

    /// Builds an alias table from arbitrary non-negative weights (at least
    /// one must be positive).
    pub fn from_weights(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "empty weight vector");
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "weights must not all be zero");
        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / sum).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut prob = vec![1.0f32; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize] as f32;
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (numerical residue) get probability 1 (already set).
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the sampler has no outcomes (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

impl NegativeSampler for AliasSampler {
    #[inline]
    fn sample<R: Rng64>(&self, rng: &mut R) -> u32 {
        let i = rng.index(self.prob.len());
        if rng.next_f32() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::VocabBuilder;
    use gw2v_util::rng::Xoshiro256;

    fn vocab_with_counts(counts: &[u64]) -> Vocabulary {
        let mut b = VocabBuilder::new();
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                b.add_token(&format!("w{i:04}"));
            }
        }
        b.build(1)
    }

    fn expected_dist(counts: &[u64]) -> Vec<f64> {
        let pows: Vec<f64> = counts
            .iter()
            .map(|&c| (c as f64).powf(UNIGRAM_POWER))
            .collect();
        let sum: f64 = pows.iter().sum();
        pows.iter().map(|p| p / sum).collect()
    }

    fn empirical<S: NegativeSampler>(s: &S, n_outcomes: usize, draws: usize) -> Vec<f64> {
        let mut rng = Xoshiro256::new(99);
        let mut counts = vec![0usize; n_outcomes];
        for _ in 0..draws {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn unigram_table_distribution() {
        // Descending counts so vocab ids align with the counts order.
        let counts = [1000u64, 400, 150, 60, 20];
        let vocab = vocab_with_counts(&counts);
        let table = UnigramTable::new(&vocab, 100_000);
        let expected = expected_dist(&counts);
        let got = empirical(&table, counts.len(), 300_000);
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 0.01, "got {g}, expected {e}");
        }
    }

    #[test]
    fn alias_distribution_exact() {
        let counts = [1000u64, 400, 150, 60, 20];
        let vocab = vocab_with_counts(&counts);
        let alias = AliasSampler::from_vocab(&vocab);
        let expected = expected_dist(&counts);
        let got = empirical(&alias, counts.len(), 300_000);
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 0.01, "got {g}, expected {e}");
        }
    }

    #[test]
    fn alias_handles_degenerate_weights() {
        let alias = AliasSampler::from_weights(&[0.0, 1.0, 0.0]);
        let mut rng = Xoshiro256::new(1);
        for _ in 0..1000 {
            assert_eq!(alias.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_single_outcome() {
        let alias = AliasSampler::from_weights(&[5.0]);
        let mut rng = Xoshiro256::new(1);
        assert_eq!(alias.sample(&mut rng), 0);
    }

    #[test]
    fn alias_uniform_weights() {
        let alias = AliasSampler::from_weights(&[1.0; 7]);
        let got = empirical(&alias, 7, 140_000);
        for g in got {
            assert!((g - 1.0 / 7.0).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn alias_all_zero_panics() {
        let _ = AliasSampler::from_weights(&[0.0, 0.0]);
    }

    #[test]
    fn table_covers_all_words() {
        let counts = [100u64, 50, 25, 12, 6, 3];
        let vocab = vocab_with_counts(&counts);
        let table = UnigramTable::new(&vocab, 10_000);
        let mut seen = vec![false; counts.len()];
        for &w in &table.table {
            seen[w as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every word appears in the table");
    }

    #[test]
    fn samplers_agree_with_each_other() {
        let counts = [5000u64, 2000, 800, 300, 100, 40, 15];
        let vocab = vocab_with_counts(&counts);
        let table = UnigramTable::new(&vocab, 1 << 18);
        let alias = AliasSampler::from_vocab(&vocab);
        let a = empirical(&table, counts.len(), 200_000);
        let b = empirical(&alias, counts.len(), 200_000);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.015, "table {x} vs alias {y}");
        }
    }
}
